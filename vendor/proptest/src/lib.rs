//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! [`BoxedStrategy`], range / tuple / `&str`-pattern strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop::bool::ANY`,
//! `prop::num::usize::ANY`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: cases are drawn
//! from a deterministic per-test RNG (same inputs every run, so failures
//! are reproducible without a persistence file), and there is **no
//! shrinking** — a failing case reports its case number and message only.

use std::rc::Rc;

#[doc(hidden)]
pub mod __rt {
    //! Runtime pieces the `proptest!` macro expansion references.
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};

    /// Stable 64-bit FNV-1a hash of the test name, used as the RNG seed so
    /// every test gets a distinct but reproducible stream.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

use __rt::{Rng, StdRng};

/// Test-runner configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (upstream `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: `f` receives the strategy for the next level
    /// down and returns the strategy for the level above. `self` is the
    /// leaf level. Depth is bounded by construction (no probabilistic
    /// stopping), so generation always terminates; `_desired_size` and
    /// `_expected_branch` are accepted for signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = f(level).boxed();
        }
        level
    }

    /// Type-erase into a clonable, heap-allocated strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
    }
}

/// A type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0u64..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `&str` regex-subset patterns are strategies producing matching strings.
///
/// Supported syntax: literal characters, escapes (`\n`, `\r`, `\t`, `\\`),
/// character classes `[...]` with ranges and `^` negation (complement drawn
/// from printable ASCII plus newline), and quantifiers `{m,n}`, `{m}`, `*`,
/// `+`, `?`. Anything else panics — extend the shim if a test needs more.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut StdRng) -> String {
        pattern::sample(self, rng)
    }
}

mod pattern {
    use super::{Rng, StdRng};

    enum Atom {
        /// Candidate characters, pre-expanded.
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    pub fn sample(pattern: &str, rng: &mut StdRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for p in &pieces {
            let n = if p.min == p.max {
                p.min
            } else {
                rng.gen_range(p.min..p.max + 1)
            };
            let Atom::Class(chars) = &p.atom;
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    Atom::Class(set)
                }
                '\\' => {
                    let c = escape(chars.get(i + 1).copied(), pattern);
                    i += 2;
                    Atom::Class(vec![c])
                }
                '(' | ')' | '|' | '.' | '*' | '+' | '?' | '{' => panic!(
                    "vendored proptest shim: unsupported pattern syntax at \
                     char {i} in {pattern:?}"
                ),
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let negated = chars.get(i) == Some(&'^');
        if negated {
            i += 1;
        }
        let mut set: Vec<char> = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let lo = if chars[i] == '\\' {
                let c = escape(chars.get(i + 1).copied(), pattern);
                i += 2;
                c
            } else {
                let c = chars[i];
                i += 1;
                c
            };
            if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
                let hi = if chars[i + 1] == '\\' {
                    let c = escape(chars.get(i + 2).copied(), pattern);
                    i += 3;
                    c
                } else {
                    let c = chars[i + 1];
                    i += 2;
                    c
                };
                assert!(lo <= hi, "bad range in pattern {pattern:?}");
                set.extend(lo..=hi);
            } else {
                set.push(lo);
            }
        }
        assert!(chars.get(i) == Some(&']'), "unterminated class in {pattern:?}");
        if negated {
            let full: Vec<char> = (' '..='~').chain(['\n', '\t', '\r']).collect();
            let set: Vec<char> = full.into_iter().filter(|c| !set.contains(c)).collect();
            assert!(!set.is_empty(), "negated class matches nothing: {pattern:?}");
            (set, i + 1)
        } else {
            assert!(!set.is_empty(), "empty class in {pattern:?}");
            (set, i + 1)
        }
    }

    /// Quantifier following position `i`: `{m,n}`, `{m}`, `*`, `+`, `?`, or
    /// none (exactly one). Unbounded quantifiers cap at 8 repetitions.
    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{}} in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("bad {m}");
                        (m, m)
                    }
                };
                (min, max, close + 1)
            }
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }

    fn escape(c: Option<char>, pattern: &str) -> char {
        match c {
            Some('n') => '\n',
            Some('t') => '\t',
            Some('r') => '\r',
            Some(c @ ('\\' | ']' | '[' | '-' | '^' | '.' | '*' | '+' | '?' | '(' | ')' | '{' | '}' | '|' | '$')) => c,
            other => panic!("unsupported escape {other:?} in {pattern:?}"),
        }
    }
}

pub mod strategy {
    //! Names the `prop_oneof!` macro expansion references.
    pub use super::{BoxedStrategy, Map, Strategy, Union};
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`, `bool`, `num`).

    pub mod collection {
        use crate::{Rng, StdRng, Strategy};
        use std::ops::Range;

        /// Strategy for `Vec`s of `elem` with length drawn from `len`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `vec(elem, m..n)` — upstream's `prop::collection::vec`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.elem.gen_value(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::{Rng, StdRng, Strategy};

        /// Uniform choice from a fixed list.
        #[derive(Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// `select(items)` — upstream's `prop::sample::select`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select over empty list");
            Select(items)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn gen_value(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }

    pub mod bool {
        use crate::{Rng, StdRng, Strategy};

        /// Fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Upstream's `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn gen_value(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    pub mod num {
        pub mod usize {
            use crate::{StdRng, Strategy};
            use rand::RngCore;

            /// Uniform over all of `usize`.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// Upstream's `prop::num::usize::ANY`.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = usize;
                fn gen_value(&self, rng: &mut StdRng) -> usize {
                    rng.next_u64() as usize
                }
            }
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude` for the used surface.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Run named property functions over random cases.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// doc comments allowed
///     #[test]
///     fn prop(x in strategy_a(), y in strategy_b()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            use $crate::__rt::SeedableRng as _;
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__rt::StdRng::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                $(let $arg = ($strat).gen_value(&mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__message) = __outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __message
                    );
                }
            }
        }
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fail the current case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::__rt::{SeedableRng, StdRng};
    use crate::Strategy;

    #[test]
    fn select_and_map_compose() {
        let s = prop::sample::select(vec!["a", "b"]).prop_map(str::to_string);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = s.gen_value(&mut rng);
            assert!(v == "a" || v == "b");
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let s = prop::collection::vec(0usize..5, 2..6);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = s.gen_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_weights_zero_excluded_arm() {
        let s = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut rng), 1);
        }
    }

    #[test]
    fn string_pattern_strategy_matches_class() {
        let s: &'static str = "[a-c]{2,4}";
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let v = Strategy::gen_value(&s, &mut rng);
            assert!((2..=4).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn negated_class_and_escapes() {
        let s: &'static str = "[^a]{1,3}\\n";
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let v = Strategy::gen_value(&s, &mut rng);
            assert!(v.ends_with('\n'));
            assert!(!v[..v.len() - 1].contains('a'), "{v:?}");
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let leaf = Just(Tree::Leaf);
        let s = leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..3).prop_map(Tree::Node),
                inner.prop_map(|t| t),
            ]
        });
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let _ = s.gen_value(&mut rng); // must not hang or overflow
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, config, and prop_assert plumbing.
        #[test]
        fn macro_smoke(x in 0usize..10, v in prop::collection::vec(0u32..3, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4, "vec too long: {v:?}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the surface the workspace uses: [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`], and [`Rng`] with `gen_range` over
//! half-open integer ranges plus `gen_bool`. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic, fast, and more
//! than adequate for test-data generation (it is *not* the same stream as
//! upstream `rand`, so seeds produce different-but-stable samples).

use std::ops::Range;

/// Core trait: a source of random 64-bit values.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can sample a uniform value from a half-open range.
pub trait SampleRange<T> {
    /// Sample uniformly from `self` using `rng`.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is negligible
                // for the small spans used in sentence generation.
                let v = rng.next_u64() % span;
                self.start + v as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// The user-facing sampling trait (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset of upstream `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 hit {hits}/10000");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! API surface the `sqlweave-bench` bench targets use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with plain wall-clock
//! timing (median of a few timed batches) instead of statistical analysis.
//! Output is one line per benchmark: id, per-iteration time, and, when a
//! throughput was declared, bytes/second.

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` naming, as upstream.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Declared throughput for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level driver (subset of upstream `Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), f);
    }

    /// Run a benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Finish the group (upstream writes reports here; we've already printed).
    pub fn finish(self) {}

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up, and calibrate the per-sample iteration count.
        let warm_deadline = Instant::now() + self.criterion.warm_up_time;
        let mut per_iter = Duration::from_micros(1);
        while Instant::now() < warm_deadline {
            bencher.iters = 1;
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        }
        let budget = self.criterion.measurement_time.as_secs_f64() / samples as f64;
        let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters;
            f(&mut bencher);
            times.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / median)
            }
            None => String::new(),
        };
        println!(
            "{:<40} {:>12}{}",
            format!("{}/{}", self.name, id),
            format_time(median),
            rate
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevent the optimizer from discarding a value (re-export for benches
/// importing `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a bench group: either `criterion_group!(name, fn...)` or the
/// config form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| {
            b.iter(|| x * 2);
            ran += 1;
        });
        group.finish();
        assert!(ran >= 3, "closure ran {ran} times");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}

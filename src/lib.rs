//! # sqlweave — a feature-oriented product line of customizable SQL parsers
//!
//! Facade crate re-exporting the whole `sqlweave` workspace. This is a
//! from-scratch Rust reproduction of *"Generating Highly Customizable SQL
//! Parsers"* (Sunkle, Kuhlemann, Siegmund, Rosenmüller, Saake — EDBT 2008
//! Workshop on Software Engineering for Tailor-made Data Management).
//!
//! The idea: treat the SQL:2003 grammar as a **software product line**.
//! Every SQL construct is a *feature* in a FODA-style feature diagram; every
//! feature carries an LL(k) *sub-grammar* and a token file; selecting a set
//! of features (a *feature instance description*) and composing their
//! sub-grammars yields a grammar — and from it a parser — that accepts
//! *exactly* the selected SQL dialect.
//!
//! ```
//! // Select features for a tiny SELECT dialect (the paper's worked example).
//! let catalog = sqlweave::sql::catalog();
//! let config = catalog
//!     .complete(["query_statement", "select_sublist"])
//!     .expect("valid configuration");
//!
//! // Compose the sub-grammars and build a parser.
//! let parser = catalog.pipeline().parser_for(&config).expect("composable");
//! assert!(parser.parse("SELECT a FROM t").is_ok());
//! assert!(parser.parse("SELECT a FROM t WHERE a = 1").is_err()); // Where not selected
//! ```
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-reproduction index.

pub use sqlweave_baseline as baseline;
pub use sqlweave_core as compose;
pub use sqlweave_dialects as dialects;
pub use sqlweave_feature_model as feature_model;
pub use sqlweave_grammar as grammar;
pub use sqlweave_lexgen as lexgen;
pub use sqlweave_lint as lint;
pub use sqlweave_parser_rt as parser_rt;
pub use sqlweave_sema as sema;
pub use sqlweave_sql_ast as sql_ast;
pub use sqlweave_sql_features as sql;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::dialects::Dialect;
    pub use crate::feature_model::{Configuration, FeatureModel, ModelBuilder};
    pub use crate::parser_rt::engine::{EngineMode, Parser};
    pub use crate::sql_ast::Statement;
}

/// Parse a SQL script with a preset dialect straight to typed ASTs.
///
/// The one-call path through the product line: dialect preset → composed
/// parser (cached per process) → CST → lowered statements.
///
/// ```
/// use sqlweave::dialects::Dialect;
///
/// let stmts = sqlweave::parse_sql(Dialect::Core, "SELECT a FROM t; COMMIT;").unwrap();
/// assert_eq!(stmts.len(), 2);
/// assert!(matches!(stmts[0], sqlweave::sql_ast::Statement::Query(_)));
///
/// // Statements outside the dialect are rejected with a parse error.
/// assert!(sqlweave::parse_sql(Dialect::Pico, "COMMIT").is_err());
/// ```
pub fn parse_sql(
    dialect: dialects::Dialect,
    sql: &str,
) -> Result<Vec<sql_ast::Statement>, ParseSqlError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<&'static str, &'static parser_rt::engine::Parser>>> =
        OnceLock::new();
    let parser: &'static parser_rt::engine::Parser = {
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("cache lock");
        match map.get(dialect.name()) {
            Some(p) => p,
            None => {
                let p = dialect.parser().map_err(ParseSqlError::Compose)?;
                map.insert(dialect.name(), Box::leak(Box::new(p)));
                map[dialect.name()]
            }
        }
    };
    let cst = parser.parse(sql).map_err(ParseSqlError::Parse)?;
    sql_ast::lower::lower_script(&cst).map_err(ParseSqlError::Lower)
}

/// Error from [`parse_sql`].
#[derive(Debug)]
pub enum ParseSqlError {
    /// The dialect failed to compose (catalog bug; should not happen for
    /// the shipped presets).
    Compose(compose::PipelineError),
    /// The statement is not in the dialect.
    Parse(parser_rt::ParseError),
    /// The CST did not lower (catalog/lowering mismatch; should not happen
    /// for the shipped presets).
    Lower(sql_ast::LowerError),
}

impl std::fmt::Display for ParseSqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSqlError::Compose(e) => write!(f, "{e}"),
            ParseSqlError::Parse(e) => write!(f, "{e}"),
            ParseSqlError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseSqlError {}

//! Named SQL dialect presets — the "different prototype parsers" of the
//! paper's Section 5, each a feature configuration over the
//! `sqlweave-sql-features` catalog.
//!
//! | Dialect | Models | Scope |
//! |---|---|---|
//! | [`Dialect::Pico`] | PicoDBMS-style smartcard queries | select-project with simple predicates |
//! | [`Dialect::Tiny`] | TinySQL (TinyDB sensor networks) | single-table SELECT, aggregation, epoch/sample-period/lifetime clauses, no column aliases |
//! | [`Dialect::Scql`] | ISO SCQL (smart cards) | small DDL + DML + simple queries + grants |
//! | [`Dialect::Core`] | a practical SQL core | queries with joins/grouping/ordering, DML, basic DDL, transactions |
//! | [`Dialect::Warehouse`] | analytics/OLAP | core + set operations, WITH, CASE, windows, ROLLUP/CUBE/GROUPING SETS |
//! | [`Dialect::Full`] | everything in the catalog | all features |

use sqlweave_core::pipeline::Composed;
use sqlweave_core::PipelineError;
use sqlweave_feature_model::Configuration;
use sqlweave_parser_rt::engine::{EngineMode, Parser};
use sqlweave_sql_features::catalog;

/// A named dialect preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Select-project queries with simple predicates (embedded/smartcard).
    Pico,
    /// TinySQL for sensor networks.
    Tiny,
    /// Structured Card Query Language subset.
    Scql,
    /// Practical SQL core.
    Core,
    /// Analytics-oriented SQL.
    Warehouse,
    /// Every feature in the catalog.
    Full,
}

impl Dialect {
    /// All presets, smallest to largest.
    pub const ALL: [Dialect; 6] = [
        Dialect::Pico,
        Dialect::Tiny,
        Dialect::Scql,
        Dialect::Core,
        Dialect::Warehouse,
        Dialect::Full,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Pico => "pico",
            Dialect::Tiny => "tiny",
            Dialect::Scql => "scql",
            Dialect::Core => "core",
            Dialect::Warehouse => "warehouse",
            Dialect::Full => "full",
        }
    }

    /// The seed feature selection (before auto-completion).
    pub fn seed_features(self) -> Vec<&'static str> {
        match self {
            Dialect::Pico => vec![
                "query_statement",
                "select_sublist",
                "select_asterisk",
                "where",
                "and_operator",
            ],
            Dialect::Tiny => vec![
                "query_statement",
                "select_sublist",
                "select_asterisk",
                "where",
                "and_operator",
                "group_by",
                "aggregate_functions",
                "count_star",
                "count_agg",
                "sum_agg",
                "avg_agg",
                "min_agg",
                "max_agg",
                "sensor_query",
                "epoch_duration",
                "sample_period",
                "lifetime_clause",
                "string_literal",
            ],
            Dialect::Scql => vec![
                "query_statement",
                "select_sublist",
                "select_asterisk",
                "where",
                "and_operator",
                "or_operator",
                "null_predicate",
                "string_literal",
                "null_literal",
                "table_definition",
                "not_null_constraint",
                "character_types",
                "exact_numeric_types",
                "insert_statement",
                "update_statement",
                "update_where",
                "delete_statement",
                "delete_where",
                "grant_revoke",
                "revoke_statement",
            ],
            Dialect::Core => vec![
                // queries
                "query_statement",
                "set_quantifier",
                "all",
                "distinct",
                "select_sublist",
                "select_asterisk",
                "as_clause",
                "correlation_name",
                "from_list",
                "joined_table",
                "outer_join",
                "left_join",
                "right_join",
                "where",
                "group_by",
                "having",
                "order_by",
                "asc_desc",
                "subquery",
                "derived_table",
                // expressions
                "arithmetic",
                "multiplicative_ops",
                "unary_sign",
                "parenthesized_expression",
                "string_literal",
                "boolean_literal",
                "null_literal",
                "aggregate_functions",
                "count_star",
                "count_agg",
                "sum_agg",
                "avg_agg",
                "min_agg",
                "max_agg",
                // predicates
                "boolean_logic",
                "or_operator",
                "and_operator",
                "not_operator",
                "boolean_parentheses",
                "between_predicate",
                "in_predicate",
                "like_predicate",
                "null_predicate",
                // DML
                "insert_statement",
                "insert_columns",
                "update_statement",
                "update_where",
                "delete_statement",
                "delete_where",
                // DDL
                "table_definition",
                "column_constraints",
                "not_null_constraint",
                "column_unique",
                "column_primary_key",
                "default_clause",
                "table_constraint",
                "primary_key_constraint",
                "unique_constraint",
                "foreign_key_constraint",
                "character_types",
                "exact_numeric_types",
                "approximate_numeric_types",
                "boolean_type",
                "datetime_types",
                "drop_statement",
                "drop_table",
                // transactions
                "transaction_statement",
                "savepoints",
                "isolation_levels",
                "set_transaction",
            ],
            Dialect::Warehouse => {
                let mut v = Dialect::Core.seed_features();
                v.extend([
                    "set_operations",
                    "union_op",
                    "except_op",
                    "intersect_op",
                    "with_clause",
                    "recursive_with",
                    "row_limit",
                    "nulls_ordering",
                    "grouping_sets",
                    "rollup",
                    "cube",
                    "window_clause",
                    "partition_by",
                    "window_order",
                    "window_frame",
                    "case_expression",
                    "simple_case",
                    "window_functions",
                    "rank_fn",
                    "dense_rank_fn",
                    "row_number_fn",
                    "stddev_pop_agg",
                    "stddev_samp_agg",
                    "var_pop_agg",
                    "var_samp_agg",
                    "truth_value_test",
                    "nullif_function",
                    "coalesce_function",
                    "cast_expression",
                    "exists_predicate",
                    "in_subquery",
                    "quantified_comparison",
                    "scalar_subquery",
                    "qualified_asterisk",
                    "full_join",
                    "cross_join",
                    "natural_join",
                    "join_using",
                    "view_definition",
                    "with_check_option",
                    "datetime_literal",
                    "extract_fn",
                    "current_datetime_fn",
                    "datetime_functions",
                ]);
                v
            }
            Dialect::Full => Vec::new(), // special-cased: all features
        }
    }

    /// The completed, validated configuration for this dialect.
    pub fn configuration(self) -> Configuration {
        let cat = catalog();
        let config = if self == Dialect::Full {
            Configuration::of(cat.model().iter().map(|(_, f)| f.name.clone()))
        } else {
            cat.complete(self.seed_features())
                .unwrap_or_else(|e| panic!("{} preset does not complete: {e}", self.name()))
        };
        if let Err(e) = cat.model().validate(&config) {
            panic!("{} preset invalid: {e}", self.name());
        }
        config
    }

    /// Whether this preset's completed configuration selects `feature`.
    /// This is the anchor for feature→capability mappings outside the
    /// grammar pipeline (e.g. the semantic resolver keys its subsystems
    /// off the same names). Completes the configuration on each call —
    /// hold a [`Dialect::configuration`] when querying many features.
    pub fn has_feature(self, feature: &str) -> bool {
        self.configuration().contains(feature)
    }

    /// Compose this dialect's grammar and tokens.
    pub fn composed(self) -> Result<Composed, PipelineError> {
        catalog()
            .pipeline()
            .with_name(self.name())
            .compose(&self.configuration())
    }

    /// Build the dialect parser (backtracking engine).
    pub fn parser(self) -> Result<Parser, PipelineError> {
        self.composed()?.into_parser()
    }

    /// Build the dialect parser with an explicit engine mode.
    pub fn parser_with_mode(self, mode: EngineMode) -> Result<Parser, PipelineError> {
        self.composed()?.into_parser_with_mode(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_compose() {
        for d in Dialect::ALL {
            let composed = d.composed().unwrap_or_else(|e| panic!("{}: {e}", d.name()));
            assert!(
                composed.grammar.undefined_nonterminals().is_empty(),
                "{}: undefined {:?}",
                d.name(),
                composed.grammar.undefined_nonterminals()
            );
            let parser = composed.into_parser();
            assert!(parser.is_ok(), "{}: {:?}", d.name(), parser.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn dialect_sizes_are_ordered() {
        let sizes: Vec<usize> = Dialect::ALL
            .iter()
            .map(|d| d.configuration().len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1] || w[0] < sizes[5]),
            "sizes not broadly increasing: {sizes:?}");
        assert!(sizes[0] < sizes[3] && sizes[3] < sizes[5]);
    }

    #[test]
    fn pico_accepts_and_rejects() {
        let p = Dialect::Pico.parser().unwrap();
        assert!(p.parse("SELECT a, b FROM t WHERE a = 1 AND b < 2").is_ok());
        assert!(p.parse("SELECT * FROM t").is_ok());
        assert!(p.parse("SELECT a FROM t ORDER BY a").is_err());
        assert!(p.parse("INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn tiny_accepts_sensor_queries() {
        let p = Dialect::Tiny.parser().unwrap();
        assert!(p
            .parse("SELECT nodeid, avg ( temp ) FROM sensors GROUP BY nodeid EPOCH DURATION 1024")
            .is_ok());
        assert!(p.parse("SELECT COUNT(*) FROM sensors SAMPLE PERIOD 2048").is_ok());
        // no aliases in TinySQL
        assert!(p.parse("SELECT temp AS t FROM sensors").is_err());
        // no joins
        assert!(p.parse("SELECT a FROM s JOIN t ON x = y").is_err());
    }

    #[test]
    fn scql_subset() {
        let p = Dialect::Scql.parser().unwrap();
        assert!(p.parse("CREATE TABLE t (a INT NOT NULL, b CHAR(8))").is_ok());
        assert!(p.parse("INSERT INTO t VALUES (1, 'x')").is_ok());
        assert!(p.parse("UPDATE t SET a = 2 WHERE b = 'x'").is_ok());
        assert!(p.parse("DELETE FROM t WHERE a = 1").is_ok());
        assert!(p.parse("GRANT SELECT ON t TO PUBLIC").is_ok());
        // no transactions in SCQL preset
        assert!(p.parse("COMMIT").is_err());
    }

    #[test]
    fn core_statements() {
        let p = Dialect::Core.parser().unwrap();
        for stmt in [
            "SELECT DISTINCT a, b AS bee FROM t1, t2 WHERE a = b AND NOT (b < 3 OR a > 5)",
            "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y WHERE u.z IS NOT NULL",
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
            "SELECT a FROM (SELECT b FROM u) AS v",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
            "UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3)",
            "DELETE FROM t WHERE a BETWEEN 1 AND 10",
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, PRIMARY KEY (id))",
            "DROP TABLE t CASCADE",
            "START TRANSACTION ISOLATION LEVEL SERIALIZABLE",
            "COMMIT WORK",
            "ROLLBACK TO SAVEPOINT sp1",
        ] {
            if let Err(e) = p.parse(stmt) {
                panic!("core rejected {stmt:?}: {e}");
            }
        }
        // not in core: windows, set operations
        assert!(p.parse("SELECT a FROM t UNION SELECT b FROM u").is_err());
    }

    #[test]
    fn warehouse_statements() {
        let p = Dialect::Warehouse.parser().unwrap();
        for stmt in [
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 OFFSET 10 ROWS FETCH FIRST 5 ROWS ONLY",
            "WITH r AS (SELECT a FROM t) SELECT * FROM r",
            "SELECT region, SUM(sales) FROM facts GROUP BY ROLLUP (region, yr)",
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
            "SELECT CAST(a AS DECIMAL(10, 2)) FROM t",
            "SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE u.x = t.x)",
            "SELECT t.* FROM t",
        ] {
            if let Err(e) = p.parse(stmt) {
                panic!("warehouse rejected {stmt:?}: {e}");
            }
        }
    }

    #[test]
    fn full_dialect_accepts_everything_above() {
        let p = Dialect::Full.parser().unwrap();
        for stmt in [
            "SELECT a FROM t",
            "SELECT nodeid FROM sensors EPOCH DURATION 10",
            "MERGE INTO t USING u ON t.a = u.a WHEN MATCHED THEN UPDATE SET b = 1",
            "CREATE VIEW v AS SELECT a FROM t WITH CHECK OPTION",
            "CREATE SCHEMA s AUTHORIZATION admin",
            "ALTER TABLE t ADD COLUMN c INT",
            "GRANT SELECT, UPDATE ON TABLE t TO u1, u2 WITH GRANT OPTION",
            "SET TIME ZONE LOCAL",
            "DECLARE c1 INSENSITIVE SCROLL CURSOR WITH HOLD FOR SELECT a FROM t",
            "FETCH NEXT FROM c1",
            "SELECT SUBSTRING(name FROM 1 FOR 3) FROM t WHERE name LIKE 'A%' ESCAPE '!'",
            "SELECT EXTRACT(YEAR FROM d) FROM t",
            "SELECT a FROM t; DELETE FROM t; COMMIT;",
        ] {
            if let Err(e) = p.parse(stmt) {
                panic!("full rejected {stmt:?}: {e}");
            }
        }
    }

    /// The feature names semantic capabilities key off stay present (or
    /// absent) exactly where each preset's grammar says they are.
    #[test]
    fn capability_features_track_presets() {
        assert!(Dialect::Pico.has_feature("select_asterisk"));
        assert!(!Dialect::Pico.has_feature("subquery"));
        assert!(Dialect::Core.has_feature("derived_table"));
        assert!(!Dialect::Core.has_feature("with_clause"));
        assert!(Dialect::Warehouse.has_feature("with_clause"));
        assert!(Dialect::Warehouse.has_feature("qualified_asterisk"));
        assert!(Dialect::Full.has_feature("view_definition"));
        assert!(!Dialect::Full.has_feature("no_such_feature"));
    }
}

//! End-to-end tests of the `sqlweave` CLI binary.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sqlweave"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn no_args_prints_usage() {
    let o = run(&[]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("usage"));
}

#[test]
fn features_lists_diagrams() {
    let o = run(&["features"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("query_specification"));
    assert!(out.contains("table_expression"));
    assert!(out.contains("45 feature diagrams"));
}

#[test]
fn features_renders_figure2() {
    let o = run(&["features", "table_expression"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("[m] From"), "{out}");
    assert!(out.contains("[o] Where"), "{out}");
    assert!(out.contains("having requires group_by"), "{out}");
}

#[test]
fn features_unknown_diagram_fails() {
    let o = run(&["features", "nonsense"]);
    assert_eq!(o.status.code(), Some(1));
}

#[test]
fn census_reports_totals() {
    let o = run(&["census"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("45 diagrams"));
}

#[test]
fn dialects_prints_size_table() {
    let o = run(&["dialects"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for d in ["pico", "tiny", "scql", "core", "warehouse", "full"] {
        assert!(out.contains(d), "{out}");
    }
}

#[test]
fn compose_prints_grammar() {
    let o = run(&["compose", "query_statement", "select_sublist", "where"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("grammar sql_2003;"), "{out}");
    assert!(out.contains("where_clause : WHERE search_condition"), "{out}");
}

#[test]
fn compose_rejects_unknown_feature() {
    let o = run(&["compose", "warp_drive"]);
    assert_eq!(o.status.code(), Some(1));
    assert!(stderr(&o).contains("invalid selection"));
}

#[test]
fn check_accepts_and_rejects() {
    let ok = run(&["check", "--dialect", "tiny", "SELECT nodeid FROM sensors SAMPLE PERIOD 10"]);
    assert!(ok.status.success(), "{}", stderr(&ok));

    let bad = run(&["check", "--dialect", "tiny", "SELECT a AS b FROM t"]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(stderr(&bad).contains("rejected"));
}

#[test]
fn parse_prints_cst_and_ast() {
    let o = run(&["parse", "--dialect", "core", "SELECT a FROM t WHERE a = 1"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("concrete syntax tree"), "{out}");
    assert!(out.contains("query_specification"), "{out}");
    assert!(out.contains("SELECT a FROM t WHERE a = 1"), "{out}");
}

#[test]
fn parse_recover_reports_every_error_with_carets() {
    let o = run(&[
        "parse",
        "--recover",
        "--dialect",
        "core",
        "SELECT a FROM t; SELECT FROM u; DELETE FROM v",
    ]);
    // Diagnostics were reported, so the exit code is 1 — but the tree and
    // every error still print.
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("concrete syntax tree"), "{out}");
    assert!(out.contains("error"), "{out}");
    assert!(out.contains("1 diagnostic(s)"), "{out}");
    assert!(out.contains("--> line 1, column"), "{out}");
    assert!(out.contains("^"), "{out}");
    // The good statements still parsed around the bad one.
    assert!(out.contains("query_specification"), "{out}");
    assert!(out.contains("delete_statement"), "{out}");
}

#[test]
fn parse_recover_clean_input_exits_zero() {
    let o = run(&["parse", "--recover", "--dialect", "core", "SELECT a FROM t"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("concrete syntax tree"), "{out}");
    assert!(!out.contains("diagnostic"), "{out}");
}

#[test]
fn parse_recover_json_emits_diagnostics_document() {
    let o = run(&[
        "parse",
        "--recover",
        "--format",
        "json",
        "--dialect",
        "core",
        "SELECT FROM t; SELECT FROM u",
    ]);
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("{\"schema\":\"sqlweave-diagnostics/v1\""), "{out}");
    assert!(out.contains("\"dialect\":\"core\""), "{out}");
    assert!(out.contains("\"count\":2"), "{out}");
    assert!(out.contains("\"kind\":\"syntax\""), "{out}");
    assert!(out.contains("\"expected\":["), "{out}");
}

#[test]
fn parse_recover_flags_rejected_elsewhere() {
    // `check` keeps its strict contract; `--format` without `--recover`
    // has nothing to format.
    assert_eq!(run(&["check", "--recover", "--dialect", "core", "SELECT a FROM t"]).status.code(), Some(2));
    assert_eq!(
        run(&["parse", "--format", "json", "--dialect", "core", "SELECT a FROM t"]).status.code(),
        Some(2)
    );
    assert_eq!(
        run(&["parse", "--recover", "--format", "yaml", "--dialect", "core", "x"]).status.code(),
        Some(2)
    );
}

#[test]
fn bench_recover_prints_recovery_rows() {
    let o = run(&["bench", "--recover", "--dialect", "pico", "--iters", "1"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("recover"), "{out}");
    assert!(out.contains("errors"), "{out}");
}

#[test]
fn bench_edits_prints_apply_edit_row() {
    let o = run(&[
        "bench", "--dialect", "pico", "--iters", "1", "--corpus-mb", "1", "--edits", "4",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    // One row per engine: apply p50/p99, lazy-materialize p50, speedup.
    assert!(out.contains("edit-1mb"), "{out}");
    assert!(out.contains("us p50"), "{out}");
    assert!(out.contains("us mat"), "{out}");
    for engine in ["backtracking", "ll1_table"] {
        let row = out
            .lines()
            .find(|l| l.contains("edit-1mb") && l.contains(engine));
        assert!(row.is_some(), "missing edit-1mb row for {engine}: {out}");
    }
}

#[test]
fn bench_baseline_requires_gated_sections() {
    // `--baseline` gates corpus-lex and incremental rows; without
    // `--json` plus at least one of `--corpus-mb`/`--edits` there is
    // nothing to compare, and the runner must say so instead of silently
    // skipping the gate.
    let o = run(&["bench", "--dialect", "pico", "--iters", "1", "--baseline", "BENCH_parser.json"]);
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    assert!(stderr(&o).contains("--baseline"), "{}", stderr(&o));
}

fn run_with_stdin(args: &[&str], input: &str) -> Output {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_sqlweave"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // Ignore EPIPE: a child that rejects its flags exits (closing stdin)
    // before reading it, racing this write.
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes());
    child.wait_with_output().expect("binary exits")
}

#[test]
fn parse_stdin_batches_through_one_session() {
    let o = run_with_stdin(
        &["parse", "--stdin", "--dialect", "core"],
        "SELECT a FROM t\n\nSELECT b FROM u WHERE b = 1\n",
    );
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("line 1: ok"), "{out}");
    assert!(out.contains("line 3: ok"), "{out}");
    assert!(stderr(&o).contains("2 statement(s) through one session, 0 rejected"));
}

#[test]
fn parse_stdin_strict_rejects_and_fails() {
    let o = run_with_stdin(
        &["parse", "--stdin", "--dialect", "core"],
        "SELECT a FROM t\nSELECT FROM\n",
    );
    assert_eq!(o.status.code(), Some(1));
    let out = stdout(&o);
    assert!(out.contains("line 1: ok"), "{out}");
    assert!(out.contains("line 2: rejected:"), "{out}");
    assert!(stderr(&o).contains("2 statement(s) through one session, 1 rejected"));
}

#[test]
fn parse_stdin_recover_renders_diagnostics() {
    let o = run_with_stdin(
        &["parse", "--stdin", "--recover", "--dialect", "core"],
        "SELECT FROM t\n",
    );
    assert_eq!(o.status.code(), Some(1));
    let out = stdout(&o);
    assert!(out.contains("line 1: 1 diagnostic(s)"), "{out}");
    assert!(out.contains('^'), "{out}");
}

#[test]
fn parse_stdin_recover_json_emits_document_per_line() {
    let o = run_with_stdin(
        &["parse", "--stdin", "--recover", "--format", "json", "--dialect", "core"],
        "SELECT a FROM t\nSELECT FROM\n",
    );
    assert_eq!(o.status.code(), Some(1));
    let out = stdout(&o);
    assert_eq!(out.matches("sqlweave-diagnostics/v1").count(), 2, "{out}");
}

#[test]
fn parse_stdin_rejects_json_without_recover() {
    let o = run_with_stdin(&["parse", "--stdin", "--format", "json"], "SELECT 1\n");
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("usage"));
}

#[test]
fn format_normalizes_scripts() {
    let o = run(&[
        "format",
        "--dialect",
        "core",
        "select   A , b   from T where a=1 ; commit ;",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("SELECT A, b FROM T WHERE a = 1;"), "{out}");
    assert!(out.contains("COMMIT;"), "{out}");
}

#[test]
fn generate_emits_rust_source() {
    let o = run(&["generate", "query_statement", "select_sublist"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("pub enum TokenKind"), "{out}");
    assert!(out.contains("fn parse_sql_script"), "{out}");
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn lint_all_dialects_is_error_free() {
    let o = run(&["lint", "--all-dialects"]);
    assert!(o.status.success(), "{}\n{}", stdout(&o), stderr(&o));
    let out = stdout(&o);
    // one report per dialect plus the catalog
    for subject in ["feature-model catalog", "pico", "tiny", "scql", "core", "warehouse", "full"] {
        assert!(out.contains(&format!("lint: {subject}")), "{out}");
    }
    assert!(out.contains("0 error(s)"), "{out}");
}

#[test]
fn lint_broken_fixture_fails_with_codes() {
    let o = run(&[
        "lint",
        "--grammar",
        &fixture("broken.grammar"),
        "--tokens",
        &fixture("broken.tokens"),
    ]);
    assert_eq!(o.status.code(), Some(1), "{}", stdout(&o));
    let out = stdout(&o);
    assert!(out.contains("error[SW002]"), "{out}"); // expr : expr PLUS term
    assert!(out.contains("error[SW101]"), "{out}"); // ABC shadowed by IDENT
    assert!(out.contains("error[SW302]"), "{out}"); // MISSING not in token set
    assert!(out.contains("warning[SW004]"), "{out}"); // orphan unreachable
    assert!(stderr(&o).contains("lint failed"), "{}", stderr(&o));
}

#[test]
fn lint_clean_fixture_succeeds() {
    let o = run(&[
        "lint",
        "--grammar",
        &fixture("clean.grammar"),
        "--tokens",
        &fixture("clean.tokens"),
    ]);
    assert!(o.status.success(), "{}", stdout(&o));
    assert!(stdout(&o).contains("0 error(s)"), "{}", stdout(&o));
}

#[test]
fn lint_json_output_is_structured() {
    let o = run(&["lint", "--format", "json", "--dialect", "pico"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("{\"schema\":\"sqlweave-lint/v2\""), "{out}");
    assert!(out.contains("\"subject\":\"pico\""), "{out}");
    assert!(out.contains("\"code\":\"SW001\""), "{out}");
    assert!(out.contains("\"errors\":0"), "{out}");
    // v2 carries a span member on every diagnostic (null for structural
    // diagnostics, which have no source text to anchor to).
    assert!(out.contains("\"span\":null"), "{out}");
}

#[test]
fn lint_json_exit_code_still_reflects_errors() {
    let o = run(&[
        "lint",
        "--format",
        "json",
        "--grammar",
        &fixture("broken.grammar"),
        "--tokens",
        &fixture("broken.tokens"),
    ]);
    assert_eq!(o.status.code(), Some(1));
    assert!(stdout(&o).contains("\"code\":\"SW002\""), "{}", stdout(&o));
}

#[test]
fn lint_feature_selection() {
    let o = run(&["lint", "query_statement", "select_sublist", "where"]);
    assert!(o.status.success(), "{}\n{}", stdout(&o), stderr(&o));
    assert!(stdout(&o).contains("0 error(s)"), "{}", stdout(&o));
}

#[test]
fn lint_unknown_dialect_fails() {
    let o = run(&["lint", "--dialect", "nonsense"]);
    assert_eq!(o.status.code(), Some(1));
    assert!(stderr(&o).contains("unknown dialect"));
}

#[test]
fn lint_codes_prints_catalog() {
    let o = run(&["lint", "--codes"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for code in ["SW001", "SW101", "SW201", "SW301"] {
        assert!(out.contains(code), "{out}");
    }
    assert!(out.contains("LL(1) prediction conflict"), "{out}");
}

#[test]
fn lint_without_target_prints_usage() {
    let o = run(&["lint"]);
    assert_eq!(o.status.code(), Some(2));
}

#[test]
fn lint_codes_filter_keeps_only_requested() {
    // Pico's report carries SW001 plus notes; filtering to SW001 drops
    // everything else but keeps the report wrapper.
    let o = run(&["lint", "--codes", "SW001", "--format", "json", "--dialect", "pico"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("\"code\":\"SW001\""), "{out}");
    assert!(!out.contains("\"severity\":\"note\""), "{out}");
}

#[test]
fn lint_codes_unknown_code_is_rejected() {
    let o = run(&["lint", "--codes", "SW999", "--dialect", "pico"]);
    assert_eq!(o.status.code(), Some(2), "{}", stderr(&o));
    let err = stderr(&o);
    assert!(err.contains("unknown diagnostic code `SW999`"), "{err}");
    // The diagnostic lists the valid catalog, semantic codes included.
    assert!(err.contains("SW001") && err.contains("SW405"), "{err}");
}

#[test]
fn lint_sql_fires_semantic_rules() {
    // SW404 (unused CTE) is a warning: reported, but exit stays 0.
    let o = run(&["lint", "--sql", "WITH w AS (SELECT a FROM t) SELECT b FROM t"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("warning[SW404]"), "{out}");
    assert!(out.contains("cte `w`"), "{out}");
}

#[test]
fn lint_sql_with_schema_reports_unknown_column() {
    let o = run(&[
        "lint",
        "--format",
        "json",
        "--schema",
        &fixture("schema.json"),
        "--sql",
        "SELECT nope FROM t",
    ]);
    // SW402 is an error, so the exit code flips.
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("\"code\":\"SW402\""), "{out}");
    // Semantic diagnostics carry byte spans into the script.
    assert!(out.contains("\"span\":{\"start\":7,\"end\":11}"), "{out}");
}

#[test]
fn lex_dumps_token_stream() {
    let o = run(&["lex", "--dialect", "core", "SELECT a FROM t"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("SELECT               0     6  SELECT"), "{out}");
    assert!(out.contains("IDENT               14    15  t"), "{out}");
    // skip tokens are consumed, not listed
    assert!(!out.contains("WS"), "{out}");
    assert!(out.contains("4 token(s) via"), "{out}");
    assert!(out.contains("byte classes"), "{out}");
}

#[test]
fn lex_json_matches_fixture() {
    // The fixture pins kinds, byte spans, and UTF-8 slicing (the literal
    // holds a two-byte scalar, so `end` jumps by 8 over 7 chars).
    let o = run(&[
        "lex",
        "--format",
        "json",
        "--dialect",
        "core",
        "SELECT a, b FROM t WHERE a = 'héllo'",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let expected = std::fs::read_to_string(fixture("lex_core.json")).unwrap();
    assert_eq!(stdout(&o).trim_end(), expected.trim_end());
}

#[test]
fn lex_rejects_bad_input_and_flags() {
    let o = run(&["lex", "--dialect", "pico", "SELECT ?"]);
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    assert!(stderr(&o).contains("rejected by `pico`"), "{}", stderr(&o));
    assert!(stderr(&o).contains("line 1, column 8"), "{}", stderr(&o));
    assert_eq!(run(&["lex", "--dialect", "core"]).status.code(), Some(2));
    assert_eq!(run(&["lex", "--format", "yaml", "--dialect", "core", "SELECT 1"]).status.code(), Some(2));
}

fn golden(name: &str) -> String {
    format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn analyze_classifies_all_dialect_conflicts() {
    let o = run(&["analyze", "--all-dialects"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("lookahead analysis (k=3)"), "{out}");
    for d in ["pico", "tiny", "scql", "core", "warehouse", "full"] {
        assert!(out.contains(&format!("dialect `{d}`")), "{out}");
    }
    assert!(out.contains("resolvable with k=2 lookahead"), "{out}");
    assert!(out.contains("residual ambiguity"), "{out}");
    // every decision is classified: nothing saturates at the default depth
    assert!(out.contains(", 0 saturated\n"), "{out}");
    assert!(out.lines().last().unwrap().starts_with("TOTAL:"), "{out}");
}

#[test]
fn analyze_single_dialect_report() {
    let o = run(&["analyze", "--dialect", "tiny"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("dialect `tiny`"), "{out}");
    assert!(out.contains("`aggregate_function`"), "{out}");
    assert!(!out.contains("dialect `full`"), "{out}");
}

#[test]
fn analyze_json_document_has_schema() {
    let o = run(&["analyze", "--dialect", "pico", "--format", "json"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("{\"schema\":\"sqlweave-lookahead/v1\""), "{out}");
    assert!(out.contains("\"production\":\"sql_script__star1\""), "{out}");
    assert!(out.contains("\"status\":\"resolved\""), "{out}");
}

#[test]
fn analyze_matches_checked_in_inventory() {
    let o = run(&["analyze", "--all-dialects", "--check", &golden("lookahead_conflicts.json")]);
    assert!(o.status.success(), "{}\n{}", stdout(&o), stderr(&o));
    assert!(stderr(&o).contains("inventory matches"), "{}", stderr(&o));
}

#[test]
fn analyze_check_detects_drift() {
    // A depth-1 analysis classifies every conflict as residual, so the
    // inventory cannot match the checked-in k=3 document.
    let o = run(&[
        "analyze",
        "--all-dialects",
        "--lookahead",
        "1",
        "--check",
        &golden("lookahead_conflicts.json"),
    ]);
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    assert!(stderr(&o).contains("drifted"), "{}", stderr(&o));
    assert!(stdout(&o).contains("0 resolved"), "{}", stdout(&o));
}

#[test]
fn analyze_rejects_bad_flags() {
    assert_eq!(run(&["analyze", "--lookahead", "zero"]).status.code(), Some(2));
    assert_eq!(run(&["analyze", "--bogus"]).status.code(), Some(2));
    assert_eq!(
        run(&["analyze", "--dialect", "pico", "--all-dialects"]).status.code(),
        Some(2)
    );
}

#[test]
fn lineage_json_traces_insert_select() {
    // The acceptance-criteria shape: CTE + correlated subquery +
    // INSERT ... SELECT in one script, column lineage back to base tables.
    let o = run(&[
        "lineage",
        "--dialect",
        "full",
        "--format",
        "json",
        "CREATE TABLE orders (id INT, region VARCHAR(10), total INT); \
         WITH regional AS (SELECT region, SUM(total) AS total FROM orders GROUP BY region) \
         SELECT r.region FROM regional AS r \
         WHERE EXISTS (SELECT o.id FROM orders AS o WHERE o.region = r.region); \
         INSERT INTO orders (id) SELECT id FROM orders",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("{\"schema\":\"sqlweave-lineage/v1\""), "{out}");
    assert!(out.contains("\"dialect\":\"full\""), "{out}");
    // The CTE's aggregate column traces to the base table.
    assert!(out.contains("\"to\":\"regional.total\""), "{out}");
    assert!(out.contains("\"from\":[\"orders.total\"]"), "{out}");
    // The INSERT target receives lineage edges too.
    assert!(out.contains("\"kind\":\"insert\""), "{out}");
    assert!(out.contains("\"to\":\"orders.id\""), "{out}");
    // Every edge carries a span object.
    assert!(out.contains("\"span\":{\"start\":"), "{out}");
}

#[test]
fn lineage_text_mode_summarizes_statements() {
    let o = run(&["lineage", "--dialect", "core", "SELECT a, b FROM t"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("lineage: dialect core"), "{out}");
    assert!(out.contains("1 statement(s)"), "{out}");
    assert!(out.contains("reads t"), "{out}");
}

#[test]
fn lineage_matches_checked_in_inventory() {
    let o = run(&["lineage", "--check", &golden("lineage_inventory.json")]);
    assert!(o.status.success(), "{}\n{}", stdout(&o), stderr(&o));
    assert!(stderr(&o).contains("inventory matches"), "{}", stderr(&o));
}

#[test]
fn lineage_check_detects_drift() {
    // Any well-formed JSON file that is not the lineage inventory drifts.
    let o = run(&["lineage", "--check", &golden("lookahead_conflicts.json")]);
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
    assert!(stderr(&o).contains("drifted"), "{}", stderr(&o));
}

#[test]
fn lineage_rejects_bad_flags() {
    // Inventory mode needs --check or --write; SQL mode forbids them.
    assert_eq!(run(&["lineage"]).status.code(), Some(2));
    assert_eq!(run(&["lineage", "--check", "x.json", "SELECT a FROM t"]).status.code(), Some(2));
    // Per-dialect knobs only make sense with an explicit script.
    assert_eq!(run(&["lineage", "--dialect", "core", "--check", "x.json"]).status.code(), Some(2));
    assert_eq!(run(&["lineage", "--format", "yaml", "SELECT a FROM t"]).status.code(), Some(2));
}

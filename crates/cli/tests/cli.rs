//! End-to-end tests of the `sqlweave` CLI binary.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sqlweave"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn no_args_prints_usage() {
    let o = run(&[]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("usage"));
}

#[test]
fn features_lists_diagrams() {
    let o = run(&["features"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("query_specification"));
    assert!(out.contains("table_expression"));
    assert!(out.contains("45 feature diagrams"));
}

#[test]
fn features_renders_figure2() {
    let o = run(&["features", "table_expression"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("[m] From"), "{out}");
    assert!(out.contains("[o] Where"), "{out}");
    assert!(out.contains("having requires group_by"), "{out}");
}

#[test]
fn features_unknown_diagram_fails() {
    let o = run(&["features", "nonsense"]);
    assert_eq!(o.status.code(), Some(1));
}

#[test]
fn census_reports_totals() {
    let o = run(&["census"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("45 diagrams"));
}

#[test]
fn dialects_prints_size_table() {
    let o = run(&["dialects"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for d in ["pico", "tiny", "scql", "core", "warehouse", "full"] {
        assert!(out.contains(d), "{out}");
    }
}

#[test]
fn compose_prints_grammar() {
    let o = run(&["compose", "query_statement", "select_sublist", "where"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("grammar sql_2003;"), "{out}");
    assert!(out.contains("where_clause : WHERE search_condition"), "{out}");
}

#[test]
fn compose_rejects_unknown_feature() {
    let o = run(&["compose", "warp_drive"]);
    assert_eq!(o.status.code(), Some(1));
    assert!(stderr(&o).contains("invalid selection"));
}

#[test]
fn check_accepts_and_rejects() {
    let ok = run(&["check", "--dialect", "tiny", "SELECT nodeid FROM sensors SAMPLE PERIOD 10"]);
    assert!(ok.status.success(), "{}", stderr(&ok));

    let bad = run(&["check", "--dialect", "tiny", "SELECT a AS b FROM t"]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(stderr(&bad).contains("rejected"));
}

#[test]
fn parse_prints_cst_and_ast() {
    let o = run(&["parse", "--dialect", "core", "SELECT a FROM t WHERE a = 1"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("concrete syntax tree"), "{out}");
    assert!(out.contains("query_specification"), "{out}");
    assert!(out.contains("SELECT a FROM t WHERE a = 1"), "{out}");
}

#[test]
fn format_normalizes_scripts() {
    let o = run(&[
        "format",
        "--dialect",
        "core",
        "select   A , b   from T where a=1 ; commit ;",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("SELECT A, b FROM T WHERE a = 1;"), "{out}");
    assert!(out.contains("COMMIT;"), "{out}");
}

#[test]
fn generate_emits_rust_source() {
    let o = run(&["generate", "query_statement", "select_sublist"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("pub enum TokenKind"), "{out}");
    assert!(out.contains("fn parse_sql_script"), "{out}");
}

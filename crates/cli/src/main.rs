//! `sqlweave` — command-line interface to the SQL parser product line.
//!
//! This is the interactive tooling the paper leaves as future work ("we are
//! creating an implementation model and a user interface presenting various
//! SQL statements and their features"): list and render feature diagrams,
//! compose dialects from feature selections, parse statements against a
//! dialect, and emit generated parser source.
//!
//! ```text
//! sqlweave features [DIAGRAM]          list diagrams / render one as ASCII
//! sqlweave census                      per-diagram feature census
//! sqlweave compose FEATURE...          compose features, print the grammar
//! sqlweave parse --dialect NAME SQL    parse a statement (CST + AST)
//! sqlweave parse --recover ... SQL     parse with error recovery (multi-error)
//! sqlweave check --dialect NAME SQL    accept/reject only (exit code)
//! sqlweave lex --dialect NAME SQL      dump the token stream (kind, span, text)
//! sqlweave format --dialect NAME SQL   reformat a script via the AST
//! sqlweave generate FEATURE...         emit standalone Rust parser source
//! sqlweave dialects                    list preset dialects with sizes
//! sqlweave lint [TARGET...]            static analysis with diagnostic codes
//! sqlweave lint --sql 'SQL'            semantic lint (name resolution rules)
//! sqlweave lineage --dialect NAME SQL  table/column lineage for a script
//! sqlweave analyze [--all-dialects]    LL(k) conflict classification report
//! sqlweave certify [--dialect-model N] family-based product-line certification
//! sqlweave bench [--json]              corpus throughput per dialect × engine
//! ```

use sqlweave_dialects::Dialect;
use sqlweave_grammar::lookahead::{analyze_lookahead, LookaheadAnalysis, Outcome, K_MAX};
use sqlweave_feature_model::analysis::census;
use sqlweave_feature_model::render;
use sqlweave_sql_features::{catalog, DIAGRAMS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         sqlweave features [DIAGRAM] [--format text|json]\n  \
         sqlweave census\n  \
         sqlweave dialects [--format text|json]\n  \
         sqlweave compose FEATURE...\n  \
         sqlweave parse [--recover] [--format text|json] --dialect NAME 'SQL'\n  \
         sqlweave parse --stdin [--recover] [--format text|json] [--dialect NAME]\n  \
         sqlweave check --dialect NAME 'SQL'\n  \
         sqlweave lex [--format text|json] --dialect NAME 'SQL'\n  \
         sqlweave format --dialect NAME 'SQL'\n  \
         sqlweave generate FEATURE...\n  \
         sqlweave lint [--format text|json] --all-dialects\n  \
         sqlweave lint [--format text|json] --dialect NAME\n  \
         sqlweave lint [--format text|json] --grammar FILE [--tokens FILE]\n  \
         sqlweave lint [--format text|json] FEATURE...\n  \
         sqlweave lint [--dialect NAME] [--schema FILE] --sql 'SQL'\n  \
         sqlweave lint --codes [CODE,...]\n  \
         sqlweave lineage [--dialect NAME] [--schema FILE] [--format text|json] 'SQL'\n  \
         sqlweave lineage [--format text|json] [--check FILE] [--write FILE]\n  \
         sqlweave analyze [--dialect NAME | --all-dialects] [--lookahead K]\n  \
         sqlweave analyze ... [--format text|json] [--check FILE] [--write FILE]\n  \
         sqlweave certify [--dialect-model NAME] [--limit N] [--sample pairwise]\n  \
         sqlweave certify ... [--format text|json] [--check FILE] [--write FILE]\n  \
         sqlweave bench [--json] [--recover] [--dialect NAME] [--iters N] [--lookahead K]\n  \
         sqlweave bench ... [--corpus-mb N] [--edits N] [--out FILE]\n  \
         sqlweave bench ... [--baseline FILE] [--tolerance-pct N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "features" => cmd_features(&args[1..]),
        "census" => cmd_census(),
        "dialects" => cmd_dialects(&args[1..]),
        "compose" => cmd_compose(&args[1..]),
        "parse" => cmd_parse(&args[1..], true),
        "check" => cmd_parse(&args[1..], false),
        "lex" => cmd_lex(&args[1..]),
        "format" => cmd_format(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "lineage" => cmd_lineage(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "certify" => cmd_certify(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        _ => usage(),
    }
}

/// Parsed `lint` arguments.
struct LintArgs {
    format_json: bool,
    all_dialects: bool,
    /// `--codes` with no value: print the catalog.
    codes: bool,
    /// `--codes SW001,SW4xx`: restrict output to these codes.
    code_filter: Option<String>,
    dialect: Option<String>,
    grammar_file: Option<String>,
    tokens_file: Option<String>,
    schema_file: Option<String>,
    sql: Option<String>,
    features: Vec<String>,
}

fn parse_lint_args(args: &[String]) -> Option<LintArgs> {
    let mut parsed = LintArgs {
        format_json: false,
        all_dialects: false,
        codes: false,
        code_filter: None,
        dialect: None,
        grammar_file: None,
        tokens_file: None,
        schema_file: None,
        sql: None,
        features: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => parsed.format_json = true,
                    Some("text") => parsed.format_json = false,
                    _ => return None,
                }
                i += 2;
            }
            "--all-dialects" => {
                parsed.all_dialects = true;
                i += 1;
            }
            "--codes" => {
                // Value form filters; bare form prints the catalog. A
                // following flag (or nothing) means the bare form.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        parsed.code_filter = Some(v.clone());
                        i += 2;
                    }
                    _ => {
                        parsed.codes = true;
                        i += 1;
                    }
                }
            }
            "--dialect" => {
                parsed.dialect = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--grammar" => {
                parsed.grammar_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--tokens" => {
                parsed.tokens_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--schema" => {
                parsed.schema_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--sql" => {
                parsed.sql = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => return None,
            _ => {
                parsed.features.push(args[i].clone());
                i += 1;
            }
        }
    }
    Some(parsed)
}

/// Resolve a `--codes` filter list against the catalog. Unknown or
/// misspelled codes are a usage error (exit 2) with the valid codes
/// listed — silently filtering everything away hides typos.
fn parse_code_filter(list: &str) -> Result<Vec<sqlweave_lint::Code>, String> {
    let mut out = Vec::new();
    for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match sqlweave_lint::Code::ALL
            .iter()
            .find(|c| c.id().eq_ignore_ascii_case(item))
        {
            Some(&c) => out.push(c),
            None => {
                let valid: Vec<&str> =
                    sqlweave_lint::Code::ALL.iter().map(|c| c.id()).collect();
                return Err(format!(
                    "unknown diagnostic code `{item}`; valid codes: {}",
                    valid.join(", ")
                ));
            }
        }
    }
    if out.is_empty() {
        return Err("`--codes` filter selects no codes".to_string());
    }
    Ok(out)
}

/// Apply a `--codes` filter to each report, keeping only the named codes.
fn filter_reports(
    reports: Vec<sqlweave_lint::LintReport>,
    keep: &[sqlweave_lint::Code],
) -> Vec<sqlweave_lint::LintReport> {
    reports
        .into_iter()
        .map(|r| {
            let mut out = sqlweave_lint::LintReport::new(&r.subject);
            out.extend(
                r.diagnostics
                    .into_iter()
                    .filter(|d| keep.contains(&d.code)),
            );
            out
        })
        .collect()
}

/// Render reports in the selected format and turn findings into an exit
/// code: 0 clean (notes/warnings allowed), 1 if any error-level diagnostic.
fn emit_lint_reports(reports: &[sqlweave_lint::LintReport], json: bool) -> ExitCode {
    if json {
        println!("{}", sqlweave_lint::json::reports(reports));
    } else {
        for r in reports {
            print!("{r}");
        }
    }
    let errors: usize = reports
        .iter()
        .map(|r| r.count(sqlweave_lint::Severity::Error))
        .sum();
    if errors > 0 {
        if !json {
            eprintln!("lint failed: {errors} error(s)");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Load a `sqlweave-schema/v1` catalog file for the semantic passes.
fn load_schema(path: &str) -> Result<sqlweave_sema::SchemaCatalog, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    sqlweave_sema::SchemaCatalog::from_json(&src)
        .map_err(|e| format!("cannot parse schema `{path}`: {e}"))
}

/// Semantic lint over a SQL script: parse with the dialect's composed
/// parser, run the resolver, and report the SW4xx findings.
fn lint_sql(
    dialect: Dialect,
    sql: &str,
    schema: Option<&sqlweave_sema::SchemaCatalog>,
) -> Result<sqlweave_lint::LintReport, String> {
    let caps = sqlweave_sema::ResolverCaps::for_dialect(dialect);
    let analysis = sqlweave_sema::analyze(sql, dialect, &caps, schema)
        .map_err(|e| format!("rejected by `{}`: {e}", dialect.name()))?;
    let mut report = sqlweave_lint::LintReport::new(format!("{}:script", dialect.name()));
    report.extend(analysis.diagnostics);
    Ok(report)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let Some(parsed) = parse_lint_args(args) else {
        return usage();
    };

    if parsed.codes {
        println!("{:<6} {:<8} {:<14} description", "code", "severity", "layer");
        for c in sqlweave_lint::Code::ALL {
            println!(
                "{:<6} {:<8} {:<14} {}",
                c.id(),
                c.severity().as_str(),
                c.layer().as_str(),
                c.title()
            );
        }
        return ExitCode::SUCCESS;
    }

    let filter = match &parsed.code_filter {
        Some(list) => match parse_code_filter(list) {
            Ok(codes) => Some(codes),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let emit = |reports: Vec<sqlweave_lint::LintReport>| {
        let reports = match &filter {
            Some(keep) => filter_reports(reports, keep),
            None => reports,
        };
        emit_lint_reports(&reports, parsed.format_json)
    };

    if let Some(sql) = &parsed.sql {
        let dialect = match &parsed.dialect {
            Some(name) => match Dialect::ALL.iter().find(|d| d.name() == *name) {
                Some(&d) => d,
                None => {
                    eprintln!("unknown dialect `{name}`; run `sqlweave dialects` for the list");
                    return ExitCode::FAILURE;
                }
            },
            None => Dialect::Full,
        };
        let schema = match &parsed.schema_file {
            Some(path) => match load_schema(path) {
                Ok(cat) => Some(cat),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        return match lint_sql(dialect, sql, schema.as_ref()) {
            Ok(report) => emit(vec![report]),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    if parsed.all_dialects {
        return match sqlweave_lint::lint_all_dialects() {
            Ok(reports) => emit(reports),
            Err(e) => {
                eprintln!("composition failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(gfile) = &parsed.grammar_file {
        let grammar_src = match std::fs::read_to_string(gfile) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{gfile}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let grammar = match sqlweave_grammar::dsl::parse_grammar(&grammar_src) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("cannot parse grammar `{gfile}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match &parsed.tokens_file {
            Some(tfile) => {
                let tokens_src = match std::fs::read_to_string(tfile) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot read `{tfile}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match sqlweave_grammar::dsl::parse_tokens(&tokens_src) {
                    Ok(tokens) => sqlweave_lint::lint_pair(gfile, &grammar, &tokens),
                    Err(e) => {
                        eprintln!("cannot parse tokens `{tfile}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => sqlweave_lint::lint_grammar(gfile, &grammar),
        };
        return emit(vec![report]);
    }

    if let Some(name) = &parsed.dialect {
        let Some(&dialect) = Dialect::ALL.iter().find(|d| d.name() == *name) else {
            eprintln!("unknown dialect `{name}`; run `sqlweave dialects` for the list");
            return ExitCode::FAILURE;
        };
        return match sqlweave_lint::lint_dialect(dialect) {
            Ok(report) => emit(vec![report]),
            Err(e) => {
                eprintln!("composition failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if parsed.features.is_empty() {
        return usage();
    }
    let cat = catalog();
    let config = match cat.complete(parsed.features.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid selection: {e}");
            return ExitCode::FAILURE;
        }
    };
    let composed = match cat.pipeline().compose(&config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit(vec![sqlweave_lint::lint_composed(&composed)])
}

/// Parsed `lineage` arguments.
struct LineageArgs {
    format_json: bool,
    dialect: Option<String>,
    schema_file: Option<String>,
    check: Option<String>,
    write: Option<String>,
    sql: Option<String>,
}

fn parse_lineage_args(args: &[String]) -> Option<LineageArgs> {
    let mut parsed = LineageArgs {
        format_json: false,
        dialect: None,
        schema_file: None,
        check: None,
        write: None,
        sql: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => parsed.format_json = true,
                    Some("text") => parsed.format_json = false,
                    _ => return None,
                }
                i += 2;
            }
            "--dialect" => {
                parsed.dialect = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--schema" => {
                parsed.schema_file = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--write" => {
                parsed.write = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => return None,
            _ => {
                if parsed.sql.is_some() {
                    return None;
                }
                parsed.sql = Some(args[i].clone());
                i += 1;
            }
        }
    }
    Some(parsed)
}

/// Name resolution + lineage over a script (`sqlweave lineage`). With a
/// SQL argument: analyze it under one dialect and print the
/// `sqlweave-lineage/v1` document (or the text rendering). Without one:
/// sweep the per-dialect fixture scripts into the golden inventory that
/// `--write` refreshes and `--check` gates CI on — the same workflow as
/// `analyze --check`.
fn cmd_lineage(args: &[String]) -> ExitCode {
    let Some(parsed) = parse_lineage_args(args) else {
        return usage();
    };
    if let Some(sql) = &parsed.sql {
        if parsed.check.is_some() || parsed.write.is_some() {
            return usage();
        }
        let dialect = match &parsed.dialect {
            Some(name) => match Dialect::ALL.iter().find(|d| d.name() == *name) {
                Some(&d) => d,
                None => {
                    eprintln!("unknown dialect `{name}`; run `sqlweave dialects` for the list");
                    return ExitCode::FAILURE;
                }
            },
            None => Dialect::Full,
        };
        let schema = match &parsed.schema_file {
            Some(path) => match load_schema(path) {
                Ok(cat) => Some(cat),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let caps = sqlweave_sema::ResolverCaps::for_dialect(dialect);
        let analysis = match sqlweave_sema::analyze(sql, dialect, &caps, schema.as_ref()) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("rejected by `{}`: {e}", dialect.name());
                return ExitCode::FAILURE;
            }
        };
        if parsed.format_json {
            println!("{}", sqlweave_sema::lineage_json(dialect.name(), &analysis));
        } else {
            print!("{}", sqlweave_sema::lineage_text(dialect.name(), &analysis));
            for d in &analysis.diagnostics {
                println!("  {d}");
            }
        }
        return ExitCode::SUCCESS;
    }
    if parsed.check.is_none() && parsed.write.is_none() {
        return usage();
    }
    if parsed.dialect.is_some() || parsed.schema_file.is_some() {
        return usage();
    }
    // Inventory mode: every dialect's fixture script, resolved under that
    // dialect's own capabilities, no external catalog (the fixtures carry
    // their DDL).
    let mut entries: Vec<(String, sqlweave_sema::Analysis)> = Vec::new();
    for (dialect, script) in sqlweave_sema::fixtures::all() {
        let caps = sqlweave_sema::ResolverCaps::for_dialect(dialect);
        match sqlweave_sema::analyze(script, dialect, &caps, None) {
            Ok(a) => entries.push((dialect.name().to_string(), a)),
            Err(e) => {
                eprintln!("{}: fixture rejected: {e}", dialect.name());
                return ExitCode::FAILURE;
            }
        }
    }
    let doc = sqlweave_sema::inventory_json(&entries);
    if let Some(path) = &parsed.write {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if parsed.format_json {
        println!("{doc}");
    }
    if let Some(path) = &parsed.check {
        let golden = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        if golden.trim_end() != doc {
            eprintln!(
                "lineage inventory drifted from `{path}`; \
                 rerun with `--write {path}` and review the diff"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("inventory matches {path}");
    }
    ExitCode::SUCCESS
}

/// Parsed `analyze` arguments.
struct AnalyzeArgs {
    format_json: bool,
    all_dialects: bool,
    dialect: Option<String>,
    lookahead: usize,
    check: Option<String>,
    write: Option<String>,
}

fn parse_analyze_args(args: &[String]) -> Option<AnalyzeArgs> {
    let mut parsed = AnalyzeArgs {
        format_json: false,
        all_dialects: false,
        dialect: None,
        lookahead: K_MAX,
        check: None,
        write: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => parsed.format_json = true,
                    Some("text") => parsed.format_json = false,
                    _ => return None,
                }
                i += 2;
            }
            "--all-dialects" => {
                parsed.all_dialects = true;
                i += 1;
            }
            "--dialect" => {
                parsed.dialect = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--lookahead" => {
                let k: usize = args.get(i + 1).and_then(|s| s.parse().ok())?;
                if k == 0 {
                    return None;
                }
                parsed.lookahead = k;
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--write" => {
                parsed.write = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            _ => return None,
        }
    }
    Some(parsed)
}

/// Run the static LL(k) lookahead pass on one dialect's composed grammar.
fn analyze_one(dialect: Dialect, k: usize) -> Result<LookaheadAnalysis, String> {
    let composed = dialect
        .composed()
        .map_err(|e| format!("composition failed: {e}"))?;
    let analysis = sqlweave_grammar::analysis::analyze(&composed.grammar)
        .map_err(|e| format!("grammar analysis failed: {e:?}"))?;
    Ok(analyze_lookahead(&analysis, k))
}

/// The `sqlweave-lookahead/v1` document: the per-dialect conflict
/// inventory that CI pins as a golden file (`--check`).
fn lookahead_json(k: usize, dialects: &[(String, LookaheadAnalysis)]) -> String {
    use sqlweave_lint::json::escape;
    let mut s = String::new();
    s.push_str("{\"schema\":\"sqlweave-lookahead/v1\",");
    s.push_str(&format!("\"k\":{k},\"dialects\":["));
    for (di, (name, la)) in dialects.iter().enumerate() {
        if di > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"dialect\":\"{}\",\"resolved\":{},\"residual\":{},\"saturated\":{},\"decisions\":[",
            escape(name),
            la.resolved(),
            la.residual(),
            la.saturated()
        ));
        for (i, d) in la.decisions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let toks: Vec<String> = d
                .conflict_tokens
                .iter()
                .map(|t| format!("\"{}\"", escape(t)))
                .collect();
            s.push_str(&format!(
                "{{\"production\":\"{}\",\"synthetic\":{},\"conflict_tokens\":[{}],",
                escape(&d.production),
                d.synthetic,
                toks.join(",")
            ));
            match &d.outcome {
                Outcome::Resolved { k, entries } => {
                    s.push_str(&format!(
                        "\"status\":\"resolved\",\"k\":{k},\"entries\":{}}}",
                        entries.len()
                    ));
                }
                Outcome::Residual {
                    alternatives: (a, b),
                    witness,
                    witness_eof,
                } => {
                    s.push_str(&format!(
                        "\"status\":\"residual\",\"alternatives\":[{a},{b}],\"witness\":\"{}\"}}",
                        escape(&sqlweave_grammar::lookahead::witness_display(
                            witness,
                            *witness_eof
                        ))
                    ));
                }
                Outcome::Saturated => s.push_str("\"status\":\"saturated\"}"),
            }
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

fn lookahead_text(k: usize, dialects: &[(String, LookaheadAnalysis)]) -> String {
    let mut s = format!("lookahead analysis (k={k})\n");
    let (mut resolved, mut residual, mut saturated) = (0, 0, 0);
    for (name, la) in dialects {
        resolved += la.resolved();
        residual += la.residual();
        saturated += la.saturated();
        if la.decisions.is_empty() {
            s.push_str(&format!("dialect `{name}`: no LL(1) conflicts\n"));
            continue;
        }
        s.push_str(&format!(
            "dialect `{name}`: {} decision(s): {} resolved, {} residual, {} saturated\n",
            la.decisions.len(),
            la.resolved(),
            la.residual(),
            la.saturated()
        ));
        for d in &la.decisions {
            s.push_str(&format!("  `{}`: {}\n", d.production, d.summary()));
        }
    }
    s.push_str(&format!(
        "TOTAL: {resolved} resolved, {residual} residual, {saturated} saturated\n"
    ));
    s
}

/// Static LL(k) conflict classification over dialect grammars: a human
/// report, the `sqlweave-lookahead/v1` JSON document, and the golden-file
/// workflow (`--write` refreshes the inventory, `--check` gates CI on it).
fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(parsed) = parse_analyze_args(args) else {
        return usage();
    };
    if parsed.all_dialects && parsed.dialect.is_some() {
        return usage();
    }
    let targets: Vec<Dialect> = match &parsed.dialect {
        Some(name) => {
            let Some(&d) = Dialect::ALL.iter().find(|d| d.name() == *name) else {
                eprintln!("unknown dialect `{name}`; run `sqlweave dialects` for the list");
                return ExitCode::FAILURE;
            };
            vec![d]
        }
        None => Dialect::ALL.to_vec(),
    };
    let mut results: Vec<(String, LookaheadAnalysis)> = Vec::new();
    for d in targets {
        match analyze_one(d, parsed.lookahead) {
            Ok(la) => results.push((d.name().to_string(), la)),
            Err(e) => {
                eprintln!("{}: {e}", d.name());
                return ExitCode::FAILURE;
            }
        }
    }
    let doc = lookahead_json(parsed.lookahead.min(K_MAX), &results);
    if let Some(path) = &parsed.write {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if parsed.format_json {
        println!("{doc}");
    } else {
        print!("{}", lookahead_text(parsed.lookahead.min(K_MAX), &results));
    }
    if let Some(path) = &parsed.check {
        let golden = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        if golden.trim_end() != doc {
            eprintln!(
                "conflict inventory drifted from `{path}`; \
                 rerun with `--write {path}` and review the diff"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("inventory matches {path}");
    }
    ExitCode::SUCCESS
}

/// Build the diagram listing, or report the first name in `names` that
/// the catalog cannot resolve. `DIAGRAMS` and the catalog are maintained
/// separately, so a missing entry is a registration bug — the caller
/// turns it into a diagnostic instead of a mid-listing panic.
fn features_listing(
    cat: &sqlweave_sql_features::Catalog,
    names: &[&str],
) -> Result<String, String> {
    let mut out = format!("{} feature diagrams:\n", names.len());
    for d in names {
        let model = cat.diagram(d).ok_or_else(|| (*d).to_string())?;
        out.push_str(&format!("  {:<28} {:>4} features\n", d, model.len()));
    }
    Ok(out)
}

/// Parsed `certify` arguments.
struct CertifyArgs {
    format_json: bool,
    models: Vec<String>,
    limit: usize,
    force_sample: bool,
    check: Option<String>,
    write: Option<String>,
}

fn parse_certify_args(args: &[String]) -> Option<CertifyArgs> {
    let mut parsed = CertifyArgs {
        format_json: false,
        models: Vec::new(),
        limit: sqlweave_lint::certify::DEFAULT_LIMIT,
        force_sample: false,
        check: None,
        write: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => parsed.format_json = true,
                    Some("text") => parsed.format_json = false,
                    _ => return None,
                }
                i += 2;
            }
            "--dialect-model" => {
                parsed.models.push(args.get(i + 1)?.clone());
                i += 2;
            }
            "--limit" => {
                parsed.limit = args.get(i + 1)?.parse().ok().filter(|n| *n > 0)?;
                i += 2;
            }
            "--sample" => {
                if args.get(i + 1).map(String::as_str) != Some("pairwise") {
                    return None;
                }
                parsed.force_sample = true;
                i += 2;
            }
            "--check" => {
                parsed.check = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--write" => {
                parsed.write = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            _ => return None,
        }
    }
    Some(parsed)
}

fn cmd_certify(args: &[String]) -> ExitCode {
    use sqlweave_lint::certify;

    let Some(parsed) = parse_certify_args(args) else {
        return usage();
    };
    let opts = certify::CertifyOptions {
        limit: parsed.limit,
        force_sample: parsed.force_sample,
    };
    let certs = if parsed.models.is_empty() {
        certify::certify_default(&opts)
    } else {
        let mut certs = Vec::new();
        for name in &parsed.models {
            match certify::certify_catalog_model(name, &opts) {
                Some(c) => certs.push(c),
                None => {
                    eprintln!(
                        "unknown diagram `{name}`; run `sqlweave features` for the list"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        certs
    };

    let doc = certify::certification_json(&certs, parsed.limit);
    if parsed.format_json {
        println!("{doc}");
    } else {
        for c in &certs {
            print!("{}", c.render_text());
        }
    }
    if let Some(path) = &parsed.write {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &parsed.check {
        let golden = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        if golden.trim_end() != doc {
            eprintln!(
                "certification inventory drifted from `{path}`; \
                 rerun with `--write {path}` and review the diff"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("inventory matches {path}");
        return ExitCode::SUCCESS;
    }
    // Outside golden-gating, error-severity findings fail the run — that is
    // the certification verdict.
    if parsed.write.is_none() && certs.iter().any(|c| c.has_errors()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Schema identifier for `sqlweave features --format json`.
const FEATURES_SCHEMA: &str = "sqlweave-features/v1";
/// Schema identifier for `sqlweave dialects --format json`.
const DIALECTS_SCHEMA: &str = "sqlweave-dialects/v1";

fn json_str(s: &str) -> String {
    format!("\"{}\"", sqlweave_lint::json::escape(s))
}

/// Parse a trailing `[NAME] [--format text|json]` argument list shared by
/// `features` and `dialects`. Returns `(positional, json)`.
fn parse_listing_args(args: &[String]) -> Option<(Option<String>, bool)> {
    let mut positional = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    _ => return None,
                }
                i += 2;
            }
            flag if flag.starts_with("--") => return None,
            name => {
                if positional.replace(name.to_string()).is_some() {
                    return None;
                }
                i += 1;
            }
        }
    }
    Some((positional, json))
}

/// The diagram census as a `sqlweave-features/v1` document. Exact
/// configuration counts are serialized as decimal strings (they are u128);
/// uncountable spaces are null. `Err` carries the name of a registered
/// diagram that is missing from the catalog (a build-time invariant, but
/// surfaced as a diagnostic rather than a panic).
fn features_json(
    cat: &sqlweave_sql_features::Catalog,
    names: &[&str],
) -> Result<String, String> {
    let mut diagrams = Vec::new();
    for d in names {
        let Some(model) = cat.diagram(d) else {
            return Err((*d).to_string());
        };
        let c = census(&model);
        let configurations = c
            .configurations
            .map(|n| json_str(&n.to_string()))
            .unwrap_or_else(|| "null".into());
        diagrams.push(format!(
            "{{\"name\":{},\"features\":{},\"depth\":{},\"constraints\":{},\"configurations\":{}}}",
            json_str(&c.diagram),
            c.features,
            c.depth,
            c.constraints,
            configurations
        ));
    }
    Ok(format!(
        "{{\"schema\":{},\"diagrams\":[{}]}}",
        json_str(FEATURES_SCHEMA),
        diagrams.join(",")
    ))
}

/// One diagram's tree as a `sqlweave-features/v1` document.
fn diagram_json(model: &sqlweave_feature_model::FeatureModel) -> String {
    let features: Vec<String> = model
        .iter()
        .map(|(_, f)| {
            let parent = f
                .parent
                .map(|p| json_str(&model.feature(p).name))
                .unwrap_or_else(|| "null".into());
            let optionality = if f.optionality.is_mandatory() {
                "mandatory"
            } else {
                "optional"
            };
            format!(
                "{{\"name\":{},\"parent\":{},\"optionality\":{},\"grouped\":{}}}",
                json_str(&f.name),
                parent,
                json_str(optionality),
                f.is_grouped()
            )
        })
        .collect();
    format!(
        "{{\"schema\":{},\"diagram\":{},\"features\":[{}]}}",
        json_str(FEATURES_SCHEMA),
        json_str(model.name()),
        features.join(",")
    )
}

fn cmd_features(args: &[String]) -> ExitCode {
    let Some((diagram, json)) = parse_listing_args(args) else {
        return usage();
    };
    let cat = catalog();
    match diagram.as_deref() {
        None if json => match features_json(cat, DIAGRAMS) {
            Ok(doc) => {
                println!("{doc}");
                ExitCode::SUCCESS
            }
            Err(missing) => {
                eprintln!(
                    "internal error: diagram `{missing}` is registered in DIAGRAMS \
                     but missing from the catalog"
                );
                ExitCode::from(2)
            }
        },
        None => match features_listing(cat, DIAGRAMS) {
            Ok(listing) => {
                print!("{listing}");
                ExitCode::SUCCESS
            }
            Err(missing) => {
                eprintln!(
                    "internal error: diagram `{missing}` is registered in DIAGRAMS \
                     but missing from the catalog"
                );
                ExitCode::from(2)
            }
        },
        Some(name) => match cat.diagram(name) {
            Some(model) => {
                if json {
                    println!("{}", diagram_json(&model));
                } else {
                    print!("{}", render::ascii(&model));
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown diagram `{name}`; run `sqlweave features` for the list");
                ExitCode::FAILURE
            }
        },
    }
}

fn cmd_census() -> ExitCode {
    let cat = catalog();
    let mut total = 0usize;
    println!("{:<28} {:>8} {:>6} {:>11} {:>15}", "diagram", "features", "depth", "constraints", "configurations");
    for model in cat.diagrams() {
        let c = census(&model);
        total += c.features;
        println!(
            "{:<28} {:>8} {:>6} {:>11} {:>15}",
            c.diagram,
            c.features,
            c.depth,
            c.constraints,
            c.configurations
                .map(|n| n.to_string())
                .unwrap_or_else(|| "(huge)".into())
        );
    }
    println!("TOTAL: {} diagrams, {total} features", DIAGRAMS.len());
    ExitCode::SUCCESS
}

/// Preset dialect statistics as a `sqlweave-dialects/v1` document.
fn dialects_json() -> Result<String, String> {
    let mut rows = Vec::new();
    for d in Dialect::ALL {
        let p = d.parser().map_err(|e| format!("{}: {e}", d.name()))?;
        let s = p.stats();
        rows.push(format!(
            "{{\"dialect\":{},\"features\":{},\"productions\":{},\"tokens\":{},\"dfa_states\":{},\"byte_classes\":{}}}",
            json_str(d.name()),
            d.configuration().len(),
            s.productions,
            s.token_rules,
            s.dfa_states,
            s.byte_classes
        ));
    }
    Ok(format!(
        "{{\"schema\":{},\"dialects\":[{}]}}",
        json_str(DIALECTS_SCHEMA),
        rows.join(",")
    ))
}

fn cmd_dialects(args: &[String]) -> ExitCode {
    let Some((positional, json)) = parse_listing_args(args) else {
        return usage();
    };
    if positional.is_some() {
        return usage();
    }
    if json {
        return match dialects_json() {
            Ok(doc) => {
                println!("{doc}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    println!(
        "{:<10} {:>9} {:>12} {:>8} {:>11} {:>13}",
        "dialect", "features", "productions", "tokens", "DFA states", "byte classes"
    );
    for d in Dialect::ALL {
        match d.parser() {
            Ok(p) => {
                let s = p.stats();
                println!(
                    "{:<10} {:>9} {:>12} {:>8} {:>11} {:>13}",
                    d.name(),
                    d.configuration().len(),
                    s.productions,
                    s.token_rules,
                    s.dfa_states,
                    s.byte_classes
                );
            }
            Err(e) => {
                eprintln!("{}: {e}", d.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compose(features: &[String]) -> ExitCode {
    if features.is_empty() {
        return usage();
    }
    let cat = catalog();
    let config = match cat.complete(features.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid selection: {e}");
            return ExitCode::FAILURE;
        }
    };
    let composed = match cat.pipeline().compose(&config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "-- {} features composed in sequence; {} productions, {} tokens",
        composed.sequence.len(),
        composed.grammar.productions().len(),
        composed.tokens.len()
    );
    print!("{}", sqlweave_grammar::print::to_dsl(&composed.grammar));
    ExitCode::SUCCESS
}

/// Resolve `--dialect NAME` plus the trailing SQL argument.
fn dialect_and_sql(args: &[String]) -> Option<(Dialect, String)> {
    let mut dialect = Dialect::Full;
    let mut sql = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--dialect" {
            let name = args.get(i + 1)?;
            dialect = *Dialect::ALL.iter().find(|d| d.name() == *name)?;
            i += 2;
        } else {
            sql = Some(args[i].clone());
            i += 1;
        }
    }
    Some((dialect, sql?))
}

/// The `sqlweave-diagnostics/v1` document: every diagnostic from a
/// resilient parse, in source order, with enough structure for editors
/// and CI annotators (byte offset, line/column, kind, expected set).
fn diagnostics_json(
    dialect: &str,
    errors: &[sqlweave_parser_rt::ParseError],
) -> String {
    use sqlweave_lint::json::escape;
    let entries: Vec<String> = errors
        .iter()
        .map(|e| {
            let expected: Vec<String> =
                e.expected.iter().map(|t| format!("\"{}\"", escape(t))).collect();
            let found = match &e.found {
                Some((kind, text)) => {
                    format!("{{\"kind\":\"{}\",\"text\":\"{}\"}}", escape(kind), escape(text))
                }
                None => "null".to_string(),
            };
            let kind = if e.lexical.is_some() { "lexical" } else { "syntax" };
            format!(
                "{{\"message\":\"{}\",\"kind\":\"{kind}\",\"at\":{},\"line\":{},\"column\":{},\
                 \"expected\":[{}],\"found\":{found}}}",
                escape(&e.to_string()),
                e.at,
                e.line,
                e.column,
                expected.join(",")
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"sqlweave-diagnostics/v1\",\"dialect\":\"{}\",\"count\":{},\
         \"diagnostics\":[{}]}}",
        escape(dialect),
        errors.len(),
        entries.join(",")
    )
}

/// `parse --recover`: panic-mode recovery over the whole script. Text
/// mode prints the full-coverage tree then one rustc-style block per
/// diagnostic; `--format json` emits the `sqlweave-diagnostics/v1`
/// document. Exit 0 when clean, 1 when any diagnostic was reported.
fn cmd_parse_recover(dialect: Dialect, sql: &str, format_json: bool) -> ExitCode {
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut session = parser.session();
    let outcome = session.parse_resilient(sql);
    if format_json {
        println!("{}", diagnostics_json(dialect.name(), &outcome.errors));
    } else {
        println!("-- concrete syntax tree --");
        print!("{}", outcome.tree.pretty());
        if !outcome.errors.is_empty() {
            println!("-- {} diagnostic(s) --", outcome.errors.len());
            for e in &outcome.errors {
                print!("{}", e.render(sql));
            }
        }
    }
    if outcome.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Batch mode for `parse --stdin`: every non-empty line of stdin is one
/// statement, and all of them run through ONE recycled [`ParseSession`] —
/// the buffer-reuse path the library documents, exercised end-to-end by
/// the CLI instead of paying a fresh process (and parser build) per
/// statement. `--recover` routes each line through the *incremental*
/// session: the document is opened once and every line replaces it via the
/// fallible [`ParseSession::try_apply_edit`], reading diagnostics straight
/// off the lazy [`sqlweave_parser_rt::EditOutcome`] without ever
/// materializing a tree (`--format json` then emits one
/// `sqlweave-diagnostics/v1` document per line). A structured
/// [`sqlweave_parser_rt::EditError`] — a CLI bug, since the CLI computes
/// the ranges — is reported as a diagnostic with exit code 2 instead of a
/// panic. The default is the strict accept/reject contract.
fn cmd_parse_stdin(dialect: Dialect, recover: bool, format_json: bool) -> ExitCode {
    use std::io::Read as _;
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("cannot read stdin: {e}");
        return ExitCode::FAILURE;
    }
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut session = parser.session();
    if recover {
        session.open_document("");
    }
    let mut doc_len = 0usize;
    let mut total = 0usize;
    let mut rejected = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        total += 1;
        if recover {
            let outcome = match session.try_apply_edit(0..doc_len, sql) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("internal error applying line {} as an edit: {e}", lineno + 1);
                    return ExitCode::from(2);
                }
            };
            doc_len = sql.len();
            if !outcome.errors.is_empty() {
                rejected += 1;
            }
            if format_json {
                println!("{}", diagnostics_json(dialect.name(), &outcome.errors));
            } else if outcome.errors.is_empty() {
                println!("line {}: ok", lineno + 1);
            } else {
                println!("line {}: {} diagnostic(s)", lineno + 1, outcome.errors.len());
                for e in outcome.errors.iter() {
                    print!("{}", e.render(sql));
                }
            }
        } else {
            match session.parse_tree(sql) {
                Ok(tree) => {
                    println!("line {}: ok ({} tokens)", lineno + 1, tree.tokens().len())
                }
                Err(e) => {
                    rejected += 1;
                    println!("line {}: rejected: {e}", lineno + 1);
                }
            }
        }
    }
    eprintln!("{total} statement(s) through one session, {rejected} rejected");
    if rejected == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_parse(args: &[String], verbose: bool) -> ExitCode {
    let mut recover = false;
    let mut format_json = false;
    let mut stdin_batch = false;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--recover" => {
                recover = true;
                i += 1;
            }
            "--stdin" => {
                stdin_batch = true;
                i += 1;
            }
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("text") => format_json = false,
                    _ => return usage(),
                }
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    // `--recover`, `--format`, and `--stdin` belong to `parse`; `check`
    // keeps its strict accept/reject contract.
    if (recover || format_json || stdin_batch) && !verbose {
        return usage();
    }
    if stdin_batch {
        // Batch mode reads statements from stdin; the only positional
        // argument that still makes sense is the dialect selector.
        let mut dialect = Dialect::Full;
        let mut i = 0;
        while i < rest.len() {
            if rest[i] == "--dialect" {
                let Some(name) = rest.get(i + 1) else {
                    return usage();
                };
                let Some(&d) = Dialect::ALL.iter().find(|d| d.name() == *name) else {
                    eprintln!("unknown dialect `{name}`; run `sqlweave dialects` for the list");
                    return ExitCode::FAILURE;
                };
                dialect = d;
                i += 2;
            } else {
                return usage();
            }
        }
        if format_json && !recover {
            return usage();
        }
        return cmd_parse_stdin(dialect, recover, format_json);
    }
    let Some((dialect, sql)) = dialect_and_sql(&rest) else {
        return usage();
    };
    if recover {
        return cmd_parse_recover(dialect, &sql, format_json);
    }
    if format_json {
        return usage();
    }
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut session = parser.session();
    match session.parse_tree(&sql) {
        Ok(tree) => {
            if verbose {
                println!("-- concrete syntax tree --");
                print!("{}", tree.pretty());
                match sqlweave_sql_ast::lower::lower_tree(&tree) {
                    Ok(stmts) => {
                        println!("-- printed from the AST --");
                        for s in &stmts {
                            println!("{}", sqlweave_sql_ast::print::statement(s));
                        }
                    }
                    Err(e) => eprintln!("(lowering failed: {e})"),
                }
            } else {
                println!("accepted by `{}`", dialect.name());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rejected by `{}`: {e}", dialect.name());
            ExitCode::FAILURE
        }
    }
}

/// Dump a statement's token stream exactly as the dialect's compiled
/// scanner produces it — the lexical ground truth the differential suites
/// assert against, exposed for debugging token-rule composition. Skip
/// tokens (whitespace, comments) are consumed, not shown, matching what
/// the parser sees. `--format json` emits the `sqlweave-lex/v1` document.
fn cmd_lex(args: &[String]) -> ExitCode {
    let mut format_json = false;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--format" {
            match args.get(i + 1).map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => return usage(),
            }
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    let Some((dialect, sql)) = dialect_and_sql(&rest) else {
        return usage();
    };
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scanner = parser.scanner();
    let toks = match scanner.scan(&sql) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rejected by `{}`: {e}", dialect.name());
            return ExitCode::FAILURE;
        }
    };
    if format_json {
        use sqlweave_lint::json::escape;
        let entries: Vec<String> = toks
            .iter()
            .map(|t| {
                format!(
                    "{{\"kind\":\"{}\",\"start\":{},\"end\":{},\"text\":\"{}\"}}",
                    escape(scanner.name(t.kind)),
                    t.start,
                    t.end,
                    escape(t.text(&sql))
                )
            })
            .collect();
        println!(
            "{{\"schema\":\"sqlweave-lex/v1\",\"dialect\":\"{}\",\"tokens\":[{}]}}",
            escape(dialect.name()),
            entries.join(",")
        );
    } else {
        println!("{:<16} {:>5} {:>5}  text", "kind", "start", "end");
        for t in &toks {
            println!(
                "{:<16} {:>5} {:>5}  {}",
                scanner.name(t.kind),
                t.start,
                t.end,
                t.text(&sql)
            );
        }
        println!(
            "{} token(s) via {} byte classes ({} DFA states)",
            toks.len(),
            scanner.byte_classes(),
            scanner.dfa_states()
        );
    }
    ExitCode::SUCCESS
}

/// The "SQL:2003 preprocessor" use of the product line: parse a script with
/// a dialect and print it back normalized from the AST.
fn cmd_format(args: &[String]) -> ExitCode {
    let Some((dialect, sql)) = dialect_and_sql(args) else {
        return usage();
    };
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut session = parser.session();
    let tree = match session.parse_tree(&sql) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rejected by `{}`: {e}", dialect.name());
            return ExitCode::FAILURE;
        }
    };
    match sqlweave_sql_ast::lower::lower_tree(&tree) {
        Ok(stmts) => {
            for s in &stmts {
                println!("{};", sqlweave_sql_ast::print::statement(s));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lowering failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Corpus throughput sweep over dialect × engine × parse API. `--json`
/// emits the `sqlweave-bench-parser/v7` document (already validated by the
/// runner); the default is a human-readable table with the backtrack-rate
/// column plus one lex-stage block per dialect (the B6/B9 scanner
/// ablation) and one `sema` row per pair (the B8 parse + name-resolution
/// pipeline). `--lookahead K` caps the runtime dispatch depth (the B5
/// ablation knob; `1` reproduces the seed backtracking engine).
/// `--recover` adds the B7 recovery rows (faulty-script throughput,
/// diagnostic counts, clean-input overhead) to the text table; the JSON
/// document always carries them. `--corpus-mb N` additionally lexes an
/// N-MiB script generated from each dialect's own grammar weights with
/// the vector/compiled/interval substrates — the steady-state throughput
/// sweep of Experiment B9 (`corpus_lex` in the JSON document).
/// `--edits N` runs the B11 keystroke-latency ablation: N single-token
/// edits applied through one incremental `ParseSession` on a generated
/// script (`--corpus-mb` sizes it, default 4 MiB), reporting p50/p99
/// apply latency — plus the median cost of materializing the tree after
/// an edit, which the lazy outcome keeps off the keystroke path —
/// against the from-scratch reparse of the same document
/// (`incremental` in the JSON document).
/// `--baseline FILE` (JSON mode, needs `--corpus-mb` or `--edits`) gates
/// the fresh document against a checked-in one: the CI tripwire fails the
/// run when the compiled or vector scanner loses more than
/// `--tolerance-pct` (default 25) of the baseline's corpus throughput,
/// when the vector-over-compiled speedup flattens by the same margin, or
/// when the incremental `speedup_p50`, tail apply latency, or tree
/// materialization cost collapses toward full-reparse cost.
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut recover = false;
    let mut iters = 200usize;
    let mut dialects: Vec<Dialect> = Dialect::ALL.to_vec();
    let mut out: Option<String> = None;
    let mut lookahead: Option<usize> = None;
    let mut corpus_mb = 0usize;
    let mut edits = 0usize;
    let mut baseline: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--recover" => {
                recover = true;
                i += 1;
            }
            "--lookahead" => {
                let Some(k) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                lookahead = Some(k);
                i += 2;
            }
            "--iters" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                iters = n;
                i += 2;
            }
            "--corpus-mb" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                corpus_mb = n;
                i += 2;
            }
            "--edits" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                edits = n;
                i += 2;
            }
            "--dialect" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                let Some(&d) = Dialect::ALL.iter().find(|d| d.name() == *name) else {
                    eprintln!("unknown dialect `{name}`; run `sqlweave dialects` for the list");
                    return ExitCode::FAILURE;
                };
                dialects = vec![d];
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                out = Some(path.clone());
                i += 2;
            }
            "--baseline" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                baseline = Some(path.clone());
                i += 2;
            }
            "--tolerance-pct" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                tolerance_pct = n;
                i += 2;
            }
            _ => return usage(),
        }
    }
    if iters == 0 {
        eprintln!("--iters must be at least 1");
        return ExitCode::FAILURE;
    }
    if baseline.is_some() && (!json || (corpus_mb == 0 && edits == 0)) {
        eprintln!(
            "--baseline requires --json and --corpus-mb N or --edits N (it compares corpus_lex rates and incremental speedups)"
        );
        return ExitCode::FAILURE;
    }
    if json {
        let doc =
            sqlweave_bench::runner::run_full(&dialects, iters, lookahead, corpus_mb, edits);
        match &out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                    eprintln!("cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            None => println!("{doc}"),
        }
        if let Some(path) = &baseline {
            let base = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read baseline `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match sqlweave_bench::runner::compare_with_baseline(&doc, &base, tolerance_pct) {
                Ok(regressions) if regressions.is_empty() => {
                    eprintln!("baseline check passed (tolerance {tolerance_pct:.0}%)");
                }
                Ok(regressions) => {
                    for r in &regressions {
                        eprintln!("regression: {r}");
                    }
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("baseline check failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<10} {:<13} {:<11} {:>11} {:>13} {:>8} {:>8}",
        "dialect", "engine", "api", "stmts/sec", "tokens/sec", "vs seed", "bt-rate"
    );
    for &d in &dialects {
        for mode in [
            sqlweave_parser_rt::EngineMode::Backtracking,
            sqlweave_parser_rt::EngineMode::Ll1Table,
        ] {
            let r = match lookahead {
                Some(k) => sqlweave_bench::runner::bench_pair_with_lookahead(d, mode, iters, k),
                None => sqlweave_bench::runner::bench_pair(d, mode, iters),
            };
            for a in &r.apis {
                println!(
                    "{:<10} {:<13} {:<11} {:>11.0} {:>13.0} {:>7.2}x {:>8.4}",
                    r.dialect,
                    r.engine,
                    a.api,
                    a.statements_per_sec,
                    a.tokens_per_sec,
                    a.speedup_vs_seed,
                    r.backtrack_rate
                );
            }
            for l in &r.lex {
                println!(
                    "{:<10} {:<13} {:<11} {:>11} {:>13.0} {:>7.2}x {:>8}",
                    r.dialect,
                    "lex",
                    l.scanner,
                    format!("{:.1} MB/s", l.mbytes_per_sec),
                    l.tokens_per_sec,
                    l.speedup_vs_interval,
                    format!("bc={}", r.byte_classes)
                );
            }
            // The B8 row: parse + name-resolution throughput and its cost
            // relative to the bare `event_tree` parse.
            println!(
                "{:<10} {:<13} {:<11} {:>11.0} {:>13} {:>7.2}x {:>8}",
                r.dialect,
                r.engine,
                "sema",
                r.sema.statements_per_sec,
                format!("{} edges", r.sema.column_edges),
                r.sema.overhead_vs_parse,
                "resolve"
            );
            if recover {
                // The B7 row: faulty-script throughput, total diagnostics
                // over the error-density corpus, and the clean-input
                // overhead of the resilient driver vs `event_tree`.
                println!(
                    "{:<10} {:<13} {:<11} {:>11.0} {:>13} {:>7.2}x {:>8}",
                    r.dialect,
                    r.engine,
                    "recover",
                    r.recovery.scripts_per_sec,
                    format!("{} errors", r.recovery.errors),
                    r.recovery.clean_overhead,
                    format!("n={}", r.recovery.scripts)
                );
            }
        }
    }
    // The B9 steady-state rows: scanner throughput over a generated
    // multi-MiB script, per dialect (no engine column — lexing is
    // engine-independent).
    if corpus_mb > 0 {
        for &d in &dialects {
            let c = sqlweave_bench::runner::bench_lex_corpus(d, corpus_mb, 5);
            for l in &c.scanners {
                println!(
                    "{:<10} {:<13} {:<11} {:>11} {:>13.0} {:>7.2}x {:>8}",
                    c.dialect,
                    format!("corpus-{}mb", c.mebibytes),
                    l.scanner,
                    format!("{:.1} MB/s", l.mbytes_per_sec),
                    l.tokens_per_sec,
                    l.speedup_vs_interval,
                    c.simd_level
                );
            }
        }
    }
    // The B11 keystroke-latency rows: single-token edits through one
    // incremental session per dialect × engine pair vs a from-scratch
    // reparse of the same script.
    if edits > 0 {
        let mb = if corpus_mb > 0 { corpus_mb } else { 4 };
        for &d in &dialects {
            for mode in
                [sqlweave_parser_rt::EngineMode::Backtracking, sqlweave_parser_rt::EngineMode::Ll1Table]
            {
                let r = sqlweave_bench::runner::bench_incremental(d, mode, mb, edits);
                println!(
                    "{:<10} {:<13} {:<11} {:>11} {:>13} {:>13} {:>7.0}x {:>8}",
                    r.dialect,
                    r.engine,
                    format!("edit-{mb}mb"),
                    format!("{:.0} us p50", r.apply_edit_us_p50),
                    format!("{:.0} us p99", r.apply_edit_us_p99),
                    format!("{:.0} us mat", r.materialize_us_p50),
                    r.speedup_p50,
                    format!("n={}", r.edits)
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_generate(features: &[String]) -> ExitCode {
    if features.is_empty() {
        return usage();
    }
    let cat = catalog();
    let config = match cat.complete(features.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid selection: {e}");
            return ExitCode::FAILURE;
        }
    };
    let composed = match cat.pipeline().compose(&config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match sqlweave_parser_rt::codegen::generate(&composed.grammar, &composed.tokens) {
        Ok(src) => {
            print!("{src}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("codegen failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_json_round_trips_with_schema_and_counts() {
        let doc = features_json(catalog(), DIAGRAMS).expect("all registered diagrams resolve");
        let v = sqlweave_lint::json::parse(&doc).expect("valid json");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(FEATURES_SCHEMA)
        );
        let diagrams = v.get("diagrams").and_then(|d| d.as_arr()).unwrap();
        assert_eq!(diagrams.len(), DIAGRAMS.len());
        let first = &diagrams[0];
        assert_eq!(first.get("name").and_then(|s| s.as_str()), Some("sql_2003"));
        // The full model's space is uncountable under the split cap: null,
        // while countable diagrams carry the exact count as a string.
        assert!(first.get("configurations").is_some());
        let countable = diagrams.iter().find(|d| {
            d.get("name").and_then(|s| s.as_str()) == Some("order_by")
        });
        assert_eq!(
            countable
                .and_then(|d| d.get("configurations"))
                .and_then(|c| c.as_str()),
            Some("4")
        );
    }

    #[test]
    fn diagram_json_lists_the_tree_with_parents() {
        let model = catalog().diagram("order_by").unwrap();
        let doc = diagram_json(&model);
        let v = sqlweave_lint::json::parse(&doc).expect("valid json");
        assert_eq!(
            v.get("diagram").and_then(|s| s.as_str()),
            Some("order_by")
        );
        let features = v.get("features").and_then(|f| f.as_arr()).unwrap();
        assert_eq!(features.len(), model.len());
        let root = &features[0];
        assert!(root.get("parent").and_then(|p| p.as_str()).is_none());
    }

    #[test]
    fn dialects_json_covers_every_preset() {
        let doc = dialects_json().expect("presets build");
        let v = sqlweave_lint::json::parse(&doc).expect("valid json");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(DIALECTS_SCHEMA)
        );
        let dialects = v.get("dialects").and_then(|d| d.as_arr()).unwrap();
        assert_eq!(dialects.len(), Dialect::ALL.len());
        for (row, d) in dialects.iter().zip(Dialect::ALL) {
            assert_eq!(
                row.get("dialect").and_then(|s| s.as_str()),
                Some(d.name())
            );
            assert!(row.get("productions").and_then(|n| n.as_num()).unwrap() > 0.0);
        }
    }

    #[test]
    fn listing_and_certify_args_parse_and_reject() {
        let ok = |v: &[&str]| parse_listing_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(ok(&[]), Some((None, false)));
        assert_eq!(
            ok(&["order_by", "--format", "json"]),
            Some((Some("order_by".into()), true))
        );
        assert_eq!(ok(&["--format", "yaml"]), None);
        assert_eq!(ok(&["a", "b"]), None);

        let cargs = |v: &[&str]| parse_certify_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let parsed = cargs(&[
            "--dialect-model",
            "group_by",
            "--limit",
            "16",
            "--sample",
            "pairwise",
            "--format",
            "json",
        ])
        .unwrap();
        assert_eq!(parsed.models, vec!["group_by"]);
        assert_eq!(parsed.limit, 16);
        assert!(parsed.force_sample && parsed.format_json);
        assert!(cargs(&["--limit", "0"]).is_none());
        assert!(cargs(&["--sample", "random"]).is_none());
    }

    #[test]
    fn features_listing_covers_every_registered_diagram() {
        let listing = features_listing(catalog(), DIAGRAMS).unwrap();
        assert!(listing.starts_with(&format!("{} feature diagrams:", DIAGRAMS.len())));
        for d in DIAGRAMS {
            assert!(listing.contains(d), "{d} missing from listing");
        }
    }

    #[test]
    fn features_listing_reports_unregistered_diagram_instead_of_panicking() {
        let err = features_listing(catalog(), &["query_specification", "not_a_diagram"])
            .unwrap_err();
        assert_eq!(err, "not_a_diagram");
    }

    #[test]
    fn diagnostics_json_is_well_formed_and_typed() {
        let p = Dialect::Pico.parser().unwrap();
        let mut s = p.session();
        // `~` is unlexable in pico (skipping it leaves statement 1
        // well-formed); statement 2 is a pure syntax error.
        let outcome = s.parse_resilient("SELECT a ~ FROM t; SELECT FROM u");
        let doc = diagnostics_json("pico", &outcome.errors);
        let v = sqlweave_lint::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(sqlweave_lint::json::Value::as_str),
            Some("sqlweave-diagnostics/v1")
        );
        let diags = v.get("diagnostics").and_then(sqlweave_lint::json::Value::as_arr).unwrap();
        assert_eq!(diags.len() as f64, v.get("count").unwrap().as_num().unwrap());
        let kinds: Vec<&str> = diags
            .iter()
            .map(|d| d.get("kind").and_then(sqlweave_lint::json::Value::as_str).unwrap())
            .collect();
        assert_eq!(kinds, ["lexical", "syntax"], "{doc}");
        for d in diags {
            assert!(d.get("message").is_some() && d.get("line").is_some());
            assert!(d.get("at").unwrap().as_num().is_some());
        }
    }

    #[test]
    fn diagnostics_json_empty_on_clean_input() {
        let doc = diagnostics_json("core", &[]);
        assert!(doc.contains("\"count\":0"), "{doc}");
        assert!(doc.contains("\"diagnostics\":[]"), "{doc}");
    }
}

//! `sqlweave` — command-line interface to the SQL parser product line.
//!
//! This is the interactive tooling the paper leaves as future work ("we are
//! creating an implementation model and a user interface presenting various
//! SQL statements and their features"): list and render feature diagrams,
//! compose dialects from feature selections, parse statements against a
//! dialect, and emit generated parser source.
//!
//! ```text
//! sqlweave features [DIAGRAM]          list diagrams / render one as ASCII
//! sqlweave census                      per-diagram feature census
//! sqlweave compose FEATURE...          compose features, print the grammar
//! sqlweave parse --dialect NAME SQL    parse a statement (CST + AST)
//! sqlweave check --dialect NAME SQL    accept/reject only (exit code)
//! sqlweave format --dialect NAME SQL   reformat a script via the AST
//! sqlweave generate FEATURE...         emit standalone Rust parser source
//! sqlweave dialects                    list preset dialects with sizes
//! ```

use sqlweave_dialects::Dialect;
use sqlweave_feature_model::analysis::census;
use sqlweave_feature_model::render;
use sqlweave_sql_features::{catalog, DIAGRAMS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         sqlweave features [DIAGRAM]\n  \
         sqlweave census\n  \
         sqlweave dialects\n  \
         sqlweave compose FEATURE...\n  \
         sqlweave parse --dialect NAME 'SQL'\n  \
         sqlweave check --dialect NAME 'SQL'\n  \
         sqlweave format --dialect NAME 'SQL'\n  \
         sqlweave generate FEATURE..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "features" => cmd_features(args.get(1).map(String::as_str)),
        "census" => cmd_census(),
        "dialects" => cmd_dialects(),
        "compose" => cmd_compose(&args[1..]),
        "parse" => cmd_parse(&args[1..], true),
        "check" => cmd_parse(&args[1..], false),
        "format" => cmd_format(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        _ => usage(),
    }
}

fn cmd_features(diagram: Option<&str>) -> ExitCode {
    let cat = catalog();
    match diagram {
        None => {
            println!("{} feature diagrams:", DIAGRAMS.len());
            for d in DIAGRAMS {
                let model = cat.diagram(d).expect("diagram exists");
                println!("  {:<28} {:>4} features", d, model.len());
            }
            ExitCode::SUCCESS
        }
        Some(name) => match cat.diagram(name) {
            Some(model) => {
                print!("{}", render::ascii(&model));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown diagram `{name}`; run `sqlweave features` for the list");
                ExitCode::FAILURE
            }
        },
    }
}

fn cmd_census() -> ExitCode {
    let cat = catalog();
    let mut total = 0usize;
    println!("{:<28} {:>8} {:>6} {:>11} {:>15}", "diagram", "features", "depth", "constraints", "configurations");
    for model in cat.diagrams() {
        let c = census(&model);
        total += c.features;
        println!(
            "{:<28} {:>8} {:>6} {:>11} {:>15}",
            c.diagram,
            c.features,
            c.depth,
            c.constraints,
            c.configurations
                .map(|n| n.to_string())
                .unwrap_or_else(|| "(huge)".into())
        );
    }
    println!("TOTAL: {} diagrams, {total} features", DIAGRAMS.len());
    ExitCode::SUCCESS
}

fn cmd_dialects() -> ExitCode {
    println!(
        "{:<10} {:>9} {:>12} {:>8} {:>11}",
        "dialect", "features", "productions", "tokens", "DFA states"
    );
    for d in Dialect::ALL {
        match d.parser() {
            Ok(p) => {
                let s = p.stats();
                println!(
                    "{:<10} {:>9} {:>12} {:>8} {:>11}",
                    d.name(),
                    d.configuration().len(),
                    s.productions,
                    s.token_rules,
                    s.dfa_states
                );
            }
            Err(e) => {
                eprintln!("{}: {e}", d.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compose(features: &[String]) -> ExitCode {
    if features.is_empty() {
        return usage();
    }
    let cat = catalog();
    let config = match cat.complete(features.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid selection: {e}");
            return ExitCode::FAILURE;
        }
    };
    let composed = match cat.pipeline().compose(&config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "-- {} features composed in sequence; {} productions, {} tokens",
        composed.sequence.len(),
        composed.grammar.productions().len(),
        composed.tokens.len()
    );
    print!("{}", sqlweave_grammar::print::to_dsl(&composed.grammar));
    ExitCode::SUCCESS
}

/// Resolve `--dialect NAME` plus the trailing SQL argument.
fn dialect_and_sql(args: &[String]) -> Option<(Dialect, String)> {
    let mut dialect = Dialect::Full;
    let mut sql = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--dialect" {
            let name = args.get(i + 1)?;
            dialect = *Dialect::ALL.iter().find(|d| d.name() == *name)?;
            i += 2;
        } else {
            sql = Some(args[i].clone());
            i += 1;
        }
    }
    Some((dialect, sql?))
}

fn cmd_parse(args: &[String], verbose: bool) -> ExitCode {
    let Some((dialect, sql)) = dialect_and_sql(args) else {
        return usage();
    };
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match parser.parse(&sql) {
        Ok(cst) => {
            if verbose {
                println!("-- concrete syntax tree --");
                print!("{}", cst.pretty());
                match sqlweave_sql_ast::lower::lower_script(&cst) {
                    Ok(stmts) => {
                        println!("-- printed from the AST --");
                        for s in &stmts {
                            println!("{}", sqlweave_sql_ast::print::statement(s));
                        }
                    }
                    Err(e) => eprintln!("(lowering failed: {e})"),
                }
            } else {
                println!("accepted by `{}`", dialect.name());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rejected by `{}`: {e}", dialect.name());
            ExitCode::FAILURE
        }
    }
}

/// The "SQL:2003 preprocessor" use of the product line: parse a script with
/// a dialect and print it back normalized from the AST.
fn cmd_format(args: &[String]) -> ExitCode {
    let Some((dialect, sql)) = dialect_and_sql(args) else {
        return usage();
    };
    let parser = match dialect.parser() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cst = match parser.parse(&sql) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rejected by `{}`: {e}", dialect.name());
            return ExitCode::FAILURE;
        }
    };
    match sqlweave_sql_ast::lower::lower_script(&cst) {
        Ok(stmts) => {
            for s in &stmts {
                println!("{};", sqlweave_sql_ast::print::statement(s));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lowering failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(features: &[String]) -> ExitCode {
    if features.is_empty() {
        return usage();
    }
    let cat = catalog();
    let config = match cat.complete(features.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid selection: {e}");
            return ExitCode::FAILURE;
        }
    };
    let composed = match cat.pipeline().compose(&config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match sqlweave_parser_rt::codegen::generate(&composed.grammar, &composed.tokens) {
        Ok(src) => {
            print!("{src}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("codegen failed: {e}");
            ExitCode::FAILURE
        }
    }
}

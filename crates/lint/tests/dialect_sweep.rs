//! The dialect-matrix sweep: every preset dialect and the whole diagram
//! catalog must lint with zero error-level diagnostics. This is the
//! product-line health invariant `sqlweave lint --all-dialects` enforces
//! in CI.

use sqlweave_dialects::Dialect;
use sqlweave_lint::{lint_all_dialects, lint_dialect, Code, Severity};

#[test]
fn every_dialect_lints_error_free() {
    for d in Dialect::ALL {
        let report = lint_dialect(d).expect("dialect composes");
        assert_eq!(
            report.count(Severity::Error),
            0,
            "dialect `{}` has lint errors:\n{report}",
            d.name()
        );
    }
}

#[test]
fn full_sweep_covers_catalog_and_all_dialects() {
    let reports = lint_all_dialects().expect("sweep runs");
    // catalog + one report per dialect
    assert_eq!(reports.len(), 1 + Dialect::ALL.len());
    assert_eq!(reports[0].subject, "feature-model catalog");
    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    assert_eq!(errors, 0, "sweep has errors");
}

/// The sweep is not vacuous: the analyses do find (tolerated) conditions
/// in the real dialects — LL(1) conflicts handled by backtracking and
/// keyword/identifier overlap resolved by scanner priority.
#[test]
fn sweep_findings_are_nonempty_but_tolerated() {
    let report = lint_dialect(Dialect::Full).unwrap();
    assert!(!report.with_code(Code::Ll1Conflict).is_empty());
    assert!(!report.with_code(Code::TokenOverlap).is_empty());
    assert_eq!(report.count(Severity::Error), 0);
}

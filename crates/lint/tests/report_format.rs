//! Golden tests for the report formats: the JSON schema every consumer can
//! rely on, round-tripping through the bundled parser, and the text format.

use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};
use sqlweave_lint::json::{self, Value};
use sqlweave_lint::{lint_pair, Code, Severity};

fn sample_report() -> sqlweave_lint::LintReport {
    let g = parse_grammar("grammar g; s : s ANY | ABC MISSING ;").unwrap();
    let t = parse_tokens("tokens g; ANY = /[a-z]+/; ABC = /abc/;").unwrap();
    lint_pair("fixture", &g, &t)
}

/// Every diagnostic object carries exactly the six documented keys,
/// `code` parses back into the catalog, `severity` / `layer` agree with
/// the code's metadata, and `span` is `null` or `{start, end}`.
#[test]
fn json_schema_is_stable() {
    let report = sample_report();
    let v = json::parse(&json::report(&report)).expect("emitted JSON parses");

    let Value::Obj(top) = &v else { panic!("top level must be an object") };
    assert_eq!(
        top.keys().collect::<Vec<_>>(),
        ["diagnostics", "subject", "summary"],
        "top-level keys changed"
    );
    assert_eq!(v.get("subject").unwrap().as_str(), Some("fixture"));

    let summary = v.get("summary").unwrap();
    for key in ["errors", "warnings", "notes"] {
        assert!(
            summary.get(key).unwrap().as_num().is_some(),
            "summary.{key} must be a number"
        );
    }

    let diags = v.get("diagnostics").unwrap().as_arr().unwrap();
    assert_eq!(diags.len(), report.diagnostics.len());
    for d in diags {
        let Value::Obj(m) = d else { panic!("diagnostic must be an object") };
        assert_eq!(
            m.keys().collect::<Vec<_>>(),
            ["code", "layer", "message", "severity", "site", "span"],
            "diagnostic keys changed"
        );
        let code = Code::from_id(d.get("code").unwrap().as_str().unwrap())
            .expect("code is in the catalog");
        assert_eq!(
            d.get("severity").unwrap().as_str(),
            Some(code.severity().as_str())
        );
        assert_eq!(d.get("layer").unwrap().as_str(), Some(code.layer().as_str()));
        assert!(!d.get("site").unwrap().as_str().unwrap().is_empty());
        assert!(!d.get("message").unwrap().as_str().unwrap().is_empty());
        // Structural lints carry no source span.
        assert_eq!(m["span"], Value::Null);
    }
}

/// A diagnostic with an attached byte span serializes it as an object with
/// numeric `start`/`end`.
#[test]
fn json_span_object_round_trips() {
    let d = sqlweave_lint::Diagnostic::new(
        Code::UnknownColumn,
        "column `x`",
        "no visible relation exports `x`",
    )
    .with_span(7, 8);
    let v = json::parse(&json::diagnostic(&d)).unwrap();
    let span = v.get("span").unwrap();
    assert_eq!(span.get("start").unwrap().as_num(), Some(7.0));
    assert_eq!(span.get("end").unwrap().as_num(), Some(8.0));
    assert_eq!(v.get("layer").unwrap().as_str(), Some("semantic"));
}

/// The summary counts in JSON match the report's own counters.
#[test]
fn json_summary_matches_counts() {
    let report = sample_report();
    let v = json::parse(&json::report(&report)).unwrap();
    let summary = v.get("summary").unwrap();
    assert_eq!(
        summary.get("errors").unwrap().as_num(),
        Some(report.count(Severity::Error) as f64)
    );
    assert_eq!(
        summary.get("warnings").unwrap().as_num(),
        Some(report.count(Severity::Warning) as f64)
    );
    assert_eq!(
        summary.get("notes").unwrap().as_num(),
        Some(report.count(Severity::Note) as f64)
    );
}

/// Text format: one line per diagnostic in `severity[CODE] site: message`
/// shape, plus the trailing summary line.
#[test]
fn text_format_is_line_oriented() {
    let report = sample_report();
    let text = report.render_text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "lint: fixture");
    assert_eq!(lines.len(), report.diagnostics.len() + 2);
    for (line, d) in lines[1..].iter().zip(&report.diagnostics) {
        assert!(
            line.trim_start()
                .starts_with(&format!("{}[{}]", d.severity(), d.code)),
            "line {line:?} does not match {d:?}"
        );
    }
    assert!(lines.last().unwrap().contains("error(s)"));
}

/// The lookahead codes SW015/SW016 flow through the JSON schema like every
/// other catalog code: five keys, severity/layer from the code, and a
/// witness embedded in the SW016 message.
#[test]
fn json_covers_lookahead_codes() {
    let g = parse_grammar("grammar g; s : p q ; p : A B | A C ; q : a D | a E ; a : A | A a ;")
        .unwrap();
    let t = parse_tokens(
        "tokens g; A = kw; B = kw; C = kw; D = kw; E = kw; WS = skip / +/;",
    )
    .unwrap();
    let report = lint_pair("lookahead-fixture", &g, &t);
    let v = json::parse(&json::report(&report)).unwrap();
    let diags = v.get("diagnostics").unwrap().as_arr().unwrap();
    let by_code = |id: &str| {
        diags
            .iter()
            .find(|d| d.get("code").unwrap().as_str() == Some(id))
            .unwrap_or_else(|| panic!("no {id} diagnostic"))
    };
    let sw015 = by_code("SW015");
    assert_eq!(sw015.get("severity").unwrap().as_str(), Some("note"));
    assert_eq!(sw015.get("layer").unwrap().as_str(), Some("grammar"));
    let sw016 = by_code("SW016");
    assert_eq!(sw016.get("severity").unwrap().as_str(), Some("warning"));
    assert!(
        sw016
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("share lookahead"),
        "{sw016:?}"
    );
}

/// The multi-report wrapper used by `--all-dialects` carries the schema
/// identifier.
#[test]
fn json_multi_report_schema() {
    let reports = vec![sample_report(), sample_report()];
    let v = json::parse(&json::reports(&reports)).unwrap();
    assert_eq!(
        v.get("schema").unwrap().as_str(),
        Some(json::LINT_SCHEMA)
    );
    assert_eq!(v.get("reports").unwrap().as_arr().unwrap().len(), 2);
    let errors = v.get("summary").unwrap().get("errors").unwrap().as_num();
    assert_eq!(errors, Some((reports[0].count(Severity::Error) * 2) as f64));
}

//! One fixture per diagnostic code: each input is minimal and triggers the
//! targeted code (plus, where the semantics force it, the documented
//! companion), proving the catalog is fully exercisable.

use sqlweave_feature_model::ModelBuilder;
use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};
use sqlweave_lint::{checks, Code, Diagnostic};
use std::collections::BTreeSet;

fn codes(diags: &[Diagnostic]) -> BTreeSet<Code> {
    diags.iter().map(|d| d.code).collect()
}

fn grammar_codes(src: &str) -> BTreeSet<Code> {
    codes(&checks::grammar::check(&parse_grammar(src).unwrap()))
}

#[test]
fn sw001_ll1_conflict() {
    // A conflict the lookahead analysis can resolve also reports SW015;
    // SW001 remains the primary finding.
    assert_eq!(
        grammar_codes("grammar g; s : A B | A C ;"),
        BTreeSet::from([Code::Ll1Conflict, Code::ConflictResolvableAtK])
    );
}

#[test]
fn sw002_direct_left_recursion() {
    // A left-recursive alternative also leaves the LL(1) table conflicted;
    // SW002 is the actionable finding.
    let c = grammar_codes("grammar g; e : e PLUS T | T ;");
    assert!(c.contains(&Code::DirectLeftRecursion), "{c:?}");
    assert!(!c.contains(&Code::LeftRecursionCycle), "{c:?}");
}

#[test]
fn sw003_indirect_left_recursion() {
    let c = grammar_codes("grammar g; a : b X | Y ; b : a Z ;");
    assert!(c.contains(&Code::LeftRecursionCycle), "{c:?}");
    assert!(!c.contains(&Code::DirectLeftRecursion), "{c:?}");
}

#[test]
fn sw004_unreachable_nonterminal() {
    assert_eq!(
        grammar_codes("grammar g; s : A ; orphan : B ;"),
        BTreeSet::from([Code::UnreachableNonterminal])
    );
}

#[test]
fn sw005_unproductive_nonterminal() {
    // `x` never terminates; it is reachable, so SW005 is the only finding.
    let c = grammar_codes("grammar g; s : A | x ; x : B x ;");
    assert!(c.contains(&Code::UnproductiveNonterminal), "{c:?}");
}

#[test]
fn sw006_undefined_nonterminal() {
    assert_eq!(
        grammar_codes("grammar g; s : missing A ;"),
        BTreeSet::from([Code::UndefinedNonterminal])
    );
}

#[test]
fn sw015_conflict_resolvable_at_k() {
    let d = checks::grammar::check(&parse_grammar("grammar g; s : A B | A C ;").unwrap());
    let note = d
        .iter()
        .find(|d| d.code == Code::ConflictResolvableAtK)
        .expect("SW015 emitted");
    assert!(note.message.contains("k=2"), "{}", note.message);
}

#[test]
fn sw016_residual_lookahead_ambiguity() {
    // Unbounded common prefix: no finite k separates the alternatives, so
    // the conflict stays residual and carries a witness token sequence.
    let src = "grammar g; s : a B | a C ; a : A | A a ;";
    let c = grammar_codes(src);
    assert!(c.contains(&Code::ResidualLookaheadAmbiguity), "{c:?}");
    let d = checks::grammar::check(&parse_grammar(src).unwrap());
    let warn = d
        .iter()
        .find(|d| d.code == Code::ResidualLookaheadAmbiguity)
        .unwrap();
    assert!(warn.message.contains("A A A"), "{}", warn.message);
}

#[test]
fn sw101_shadowed_token_rule() {
    let t = parse_tokens("tokens g; ANY = /[a-z]+/; ABC = /abc/;").unwrap();
    assert_eq!(
        codes(&checks::lexer::check(&t)),
        BTreeSet::from([Code::ShadowedTokenRule])
    );
}

#[test]
fn sw102_token_overlap() {
    let t = parse_tokens("tokens g; FROM = kw; IDENT = /[a-z]+/;").unwrap();
    assert_eq!(
        codes(&checks::lexer::check(&t)),
        BTreeSet::from([Code::TokenOverlap])
    );
}

#[test]
fn sw103_skip_rule_conflict() {
    let t = parse_tokens("tokens g; DASHES = /-+/; COMMENT = skip /--[a-z]*/;").unwrap();
    assert_eq!(
        codes(&checks::lexer::check(&t)),
        BTreeSet::from([Code::SkipRuleConflict])
    );
}

// SW104 (bad token pattern) is intentionally not constructible through the
// public API: `TokenSet::add` validates patterns on insertion. The code
// exists so a future raw construction path still reports instead of
// panicking; `Code::ALL` coverage below keeps it in the catalog.

#[test]
fn sw200_model_analysis_skipped() {
    let mut b = ModelBuilder::new("m");
    let r = b.root();
    for i in 0..22 {
        b.optional(r, &format!("f{i}"));
    }
    for i in 0..11 {
        b.requires(&format!("f{i}"), &format!("f{}", i + 11));
    }
    let m = b.build().unwrap();
    assert_eq!(
        codes(&checks::model::check(&m)),
        BTreeSet::from([Code::ModelAnalysisSkipped])
    );
}

#[test]
fn sw201_dead_feature() {
    let mut b = ModelBuilder::new("m");
    let r = b.root();
    b.mandatory(r, "core");
    b.optional(r, "a");
    b.excludes("core", "a");
    let m = b.build().unwrap();
    assert_eq!(
        codes(&checks::model::check(&m)),
        BTreeSet::from([Code::DeadFeature])
    );
}

#[test]
fn sw202_false_optional_feature() {
    let mut b = ModelBuilder::new("m");
    let r = b.root();
    b.mandatory(r, "a");
    b.optional(r, "b");
    b.requires("a", "b");
    let m = b.build().unwrap();
    assert_eq!(
        codes(&checks::model::check(&m)),
        BTreeSet::from([Code::FalseOptionalFeature])
    );
}

#[test]
fn sw203_contradictory_constraint() {
    // A contradictory constraint by definition kills its source feature,
    // so SW201 accompanies SW203.
    let mut b = ModelBuilder::new("m");
    let r = b.root();
    b.optional(r, "a");
    b.optional(r, "b");
    b.requires("a", "b");
    b.excludes("a", "b");
    let m = b.build().unwrap();
    assert_eq!(
        codes(&checks::model::check(&m)),
        BTreeSet::from([Code::ContradictoryConstraint, Code::DeadFeature])
    );
}

#[test]
fn sw204_redundant_constraint() {
    let mut b = ModelBuilder::new("m");
    let r = b.root();
    b.optional(r, "a");
    b.mandatory(r, "b");
    b.requires("a", "b");
    let m = b.build().unwrap();
    assert_eq!(
        codes(&checks::model::check(&m)),
        BTreeSet::from([Code::RedundantConstraint])
    );
}

#[test]
fn sw205_void_model() {
    let mut b = ModelBuilder::new("m");
    let r = b.root();
    b.mandatory(r, "a");
    b.mandatory(r, "b");
    b.excludes("a", "b");
    let m = b.build().unwrap();
    assert_eq!(
        codes(&checks::model::check(&m)),
        BTreeSet::from([Code::VoidModel])
    );
}

#[test]
fn sw301_unreferenced_token() {
    let g = parse_grammar("grammar g; s : SELECT ;").unwrap();
    let t = parse_tokens("tokens g; SELECT = kw; EXTRA = /[0-9]+/; WS = skip / +/;").unwrap();
    assert_eq!(
        codes(&checks::cross::check(&g, &t)),
        BTreeSet::from([Code::UnreferencedToken])
    );
}

#[test]
fn sw302_unknown_token_reference() {
    let g = parse_grammar("grammar g; s : SELECT MISSING ;").unwrap();
    let t = parse_tokens("tokens g; SELECT = kw;").unwrap();
    assert_eq!(
        codes(&checks::cross::check(&g, &t)),
        BTreeSet::from([Code::UnknownTokenReference])
    );
}

/// Every code in the catalog is either triggered by a fixture above or
/// explicitly documented as unreachable through the public API. The file
/// itself carries one `fn swNNN_` fixture per triggerable code; this test
/// pins the bookkeeping so adding a code without a fixture fails loudly.
#[test]
fn catalog_is_covered() {
    let untriggerable = BTreeSet::from([Code::BadTokenPattern]);
    let this_file = include_str!("diagnostic_fixtures.rs");
    for c in Code::ALL {
        if untriggerable.contains(&c) {
            continue;
        }
        // Semantic (SW4xx) rules need a parsed statement to fire; their
        // fixtures live in `crates/sema/tests/rule_fixtures.rs`, pinned by
        // the same bookkeeping test there.
        if c.layer() == sqlweave_lint::Layer::Semantic {
            continue;
        }
        // Product-line (SW5xx) rules fire from the family certification
        // pass over many configurations; their fixtures live in
        // `crates/lint/src/certify.rs` and `tests/certify.rs`.
        if c.layer() == sqlweave_lint::Layer::ProductLine {
            continue;
        }
        let fixture = format!("fn sw{}_", &c.id()[2..].trim_start_matches('0'));
        let padded = format!("fn sw{}_", &c.id()[2..]);
        assert!(
            this_file.contains(&fixture) || this_file.contains(&padded),
            "code {c} lacks a fixture function"
        );
    }
    assert_eq!(Code::ALL.len(), 31);
}

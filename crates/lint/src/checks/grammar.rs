//! Grammar-layer checks: LL(1) conflicts, left recursion, reachability,
//! productivity, undefined references — all driven by the existing
//! [`sqlweave_grammar::analysis`] pass — plus the static LL(k) lookahead
//! classification of each conflict ([`sqlweave_grammar::lookahead`]).

use crate::diag::{Code, Diagnostic};
use sqlweave_grammar::analysis::{analyze, AnalysisError};
use sqlweave_grammar::ir::Grammar;
use sqlweave_grammar::lookahead::{analyze_lookahead, Outcome, K_MAX};

fn prod_site(name: &str) -> String {
    format!("production `{name}`")
}

/// Lint one (composed) grammar.
pub fn check(grammar: &Grammar) -> Vec<Diagnostic> {
    let analysis = match analyze(grammar) {
        Ok(a) => a,
        Err(AnalysisError::Undefined(names)) => {
            return names
                .into_iter()
                .map(|n| {
                    Diagnostic::new(
                        Code::UndefinedNonterminal,
                        prod_site(&n),
                        format!("nonterminal `{n}` is referenced but has no production"),
                    )
                })
                .collect();
        }
        Err(AnalysisError::UndefinedStart(s)) => {
            return vec![Diagnostic::new(
                Code::UndefinedNonterminal,
                prod_site(&s),
                format!("start symbol `{s}` has no production"),
            )];
        }
    };

    let mut out = Vec::new();
    for conflict in analysis.conflicts() {
        out.push(Diagnostic::new(
            Code::Ll1Conflict,
            prod_site(&conflict.nonterminal),
            conflict.describe(&analysis.flat),
        ));
    }
    // Classify each conflicted decision point with static LL(k) lookahead
    // (skipped on left-recursive grammars, where the sequence-set
    // fixpoints are not meaningful and the build fails anyway).
    if !analysis.conflicts.is_empty() && analysis.left_recursion.is_empty() {
        let la = analyze_lookahead(&analysis, K_MAX);
        for decision in &la.decisions {
            let code = match decision.outcome {
                Outcome::Resolved { .. } => Code::ConflictResolvableAtK,
                Outcome::Residual { .. } | Outcome::Saturated => {
                    Code::ResidualLookaheadAmbiguity
                }
            };
            out.push(Diagnostic::new(
                code,
                prod_site(&decision.production),
                decision.summary(),
            ));
        }
    }
    for cycle in analysis.left_recursion_cycles() {
        let code = if cycle.is_direct() {
            Code::DirectLeftRecursion
        } else {
            Code::LeftRecursionCycle
        };
        out.push(Diagnostic::new(
            code,
            prod_site(&cycle.productions()[0]),
            cycle.to_string(),
        ));
    }
    for n in &analysis.unreachable {
        out.push(Diagnostic::new(
            Code::UnreachableNonterminal,
            prod_site(n),
            format!(
                "`{n}` is never reachable from start symbol `{}`",
                grammar.start()
            ),
        ));
    }
    for n in &analysis.unproductive {
        out.push(Diagnostic::new(
            Code::UnproductiveNonterminal,
            prod_site(n),
            format!("`{n}` cannot derive any finite token string"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::parse_grammar;

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        let mut c: Vec<Code> = diags.iter().map(|d| d.code).collect();
        c.dedup();
        c
    }

    #[test]
    fn clean_grammar_lints_clean() {
        let g = parse_grammar("grammar g; s : A b ; b : B | C ;").unwrap();
        assert!(check(&g).is_empty());
    }

    #[test]
    fn ll1_conflict_reported() {
        let g = parse_grammar("grammar g; s : A B | A C ;").unwrap();
        let d = check(&g);
        assert_eq!(codes(&d), [Code::Ll1Conflict, Code::ConflictResolvableAtK]);
        assert!(d[0].message.contains('A'), "{}", d[0].message);
    }

    #[test]
    fn resolvable_conflict_classified_at_k() {
        let g = parse_grammar("grammar g; s : A B | A C ;").unwrap();
        let d = check(&g);
        let note = d
            .iter()
            .find(|d| d.code == Code::ConflictResolvableAtK)
            .unwrap();
        assert!(note.message.contains("k=2"), "{}", note.message);
    }

    #[test]
    fn residual_ambiguity_carries_witness() {
        // `a` derives arbitrarily many A's, so both alternatives share
        // unbounded lookahead; the witness must be concrete tokens.
        let g = parse_grammar("grammar g; s : a B | a C ; a : A | A a ;").unwrap();
        let d = check(&g);
        let warn = d
            .iter()
            .find(|d| d.code == Code::ResidualLookaheadAmbiguity)
            .unwrap();
        assert!(warn.message.contains("A A A"), "{}", warn.message);
    }

    #[test]
    fn left_recursive_grammars_skip_lookahead_classification() {
        // Conflict + left recursion: SW001/SW002 fire, SW015/SW016 don't.
        let g = parse_grammar("grammar g; e : e PLUS T | T ; s : e X | e Y ;").unwrap();
        let d = check(&g);
        assert!(
            !codes(&d).contains(&Code::ConflictResolvableAtK)
                && !codes(&d).contains(&Code::ResidualLookaheadAmbiguity),
            "{d:?}"
        );
    }

    #[test]
    fn direct_left_recursion_reported() {
        let g = parse_grammar("grammar g; e : e PLUS T | T ;").unwrap();
        let d = check(&g);
        assert!(codes(&d).contains(&Code::DirectLeftRecursion), "{d:?}");
    }

    #[test]
    fn indirect_cycle_reported() {
        let g = parse_grammar("grammar g; a : b X | Y ; b : a Z ;").unwrap();
        let d = check(&g);
        assert!(codes(&d).contains(&Code::LeftRecursionCycle), "{d:?}");
        let cyc = d
            .iter()
            .find(|d| d.code == Code::LeftRecursionCycle)
            .unwrap();
        assert!(cyc.message.contains("`a`") && cyc.message.contains("`b`"));
    }

    #[test]
    fn unreachable_reported() {
        let g = parse_grammar("grammar g; s : A ; orphan : B ;").unwrap();
        let d = check(&g);
        assert_eq!(codes(&d), [Code::UnreachableNonterminal]);
        assert_eq!(d[0].site, "production `orphan`");
    }

    #[test]
    fn unproductive_reported() {
        // `x` only ever rewrites to something containing `x`.
        let g = parse_grammar("grammar g; s : A | x ; x : B x ;").unwrap();
        let d = check(&g);
        assert!(codes(&d).contains(&Code::UnproductiveNonterminal), "{d:?}");
    }

    #[test]
    fn undefined_reference_reported() {
        let g = parse_grammar("grammar g; s : missing A ;").unwrap();
        let d = check(&g);
        assert_eq!(codes(&d), [Code::UndefinedNonterminal]);
        assert!(d[0].message.contains("`missing`"));
    }
}

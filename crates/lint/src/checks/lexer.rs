//! Lexer-layer checks over the composed token set, driven by
//! [`sqlweave_lexgen::analysis`]'s exact DFA overlap analysis.

use crate::diag::{Code, Diagnostic};
use sqlweave_lexgen::analysis::analyze;
use sqlweave_lexgen::tokenset::{RuleKind, TokenSet};
use std::collections::BTreeSet;

fn tok_site(name: &str) -> String {
    format!("token `{name}`")
}

/// `true` for rules matching one fixed spelling (keywords and punctuation),
/// whose overlap with a pattern rule is the normal "reserved word" setup.
fn is_literal(kind: &RuleKind) -> bool {
    matches!(kind, RuleKind::Keyword | RuleKind::Punct(_))
}

/// Lint one (composed) token set.
pub fn check(tokens: &TokenSet) -> Vec<Diagnostic> {
    let analysis = match analyze(tokens) {
        Ok(a) => a,
        Err(e) => {
            // Unreachable for sets built through the public API (patterns
            // are validated on insertion), but surfaced rather than hidden.
            return vec![Diagnostic::new(
                Code::BadTokenPattern,
                "token set".to_string(),
                e.to_string(),
            )];
        }
    };

    let mut out = Vec::new();
    let shadowed: BTreeSet<usize> = analysis.shadowed().into_iter().collect();
    for &i in &shadowed {
        let shadowers: Vec<String> = analysis
            .shadowers(i)
            .into_iter()
            .map(|j| format!("`{}`", analysis.rules[j].name))
            .collect();
        out.push(Diagnostic::new(
            Code::ShadowedTokenRule,
            tok_site(&analysis.rules[i].name),
            format!(
                "rule can never be emitted: every string it matches is won by {}",
                shadowers.join(", ")
            ),
        ));
    }

    // Overlaps involving a shadowed loser are already covered by SW101.
    // Group the rest per losing rule: literal winners (keywords/puncts over
    // a pattern — ordinary reserved-word behavior) are summarized in one
    // note; everything else is reported pairwise.
    for (j, rule) in analysis.rules.iter().enumerate() {
        if shadowed.contains(&j) {
            continue;
        }
        let winners: Vec<usize> = analysis
            .overlaps
            .iter()
            .filter(|&&(a, b)| b == j && !shadowed.contains(&a))
            .map(|&(a, _)| a)
            .collect();
        if winners.is_empty() {
            continue;
        }
        let mut literal_winners: Vec<&str> = Vec::new();
        for &i in &winners {
            let winner = &analysis.rules[i];
            if winner.is_skip() || rule.is_skip() {
                out.push(Diagnostic::new(
                    Code::SkipRuleConflict,
                    tok_site(&rule.name),
                    format!(
                        "skip/token collision: `{}` and `{}` match common strings; `{}` wins by priority",
                        winner.name, rule.name, winner.name
                    ),
                ));
            } else if is_literal(&winner.kind) && !is_literal(&rule.kind) {
                literal_winners.push(&winner.name);
            } else {
                out.push(Diagnostic::new(
                    Code::TokenOverlap,
                    tok_site(&rule.name),
                    format!(
                        "`{}` and `{}` match common strings; `{}` wins by priority",
                        winner.name, rule.name, winner.name
                    ),
                ));
            }
        }
        if !literal_winners.is_empty() {
            let shown: Vec<String> = literal_winners
                .iter()
                .take(4)
                .map(|n| format!("`{n}`"))
                .collect();
            let suffix = if literal_winners.len() > shown.len() {
                format!(" and {} more", literal_winners.len() - shown.len())
            } else {
                String::new()
            };
            out.push(Diagnostic::new(
                Code::TokenOverlap,
                tok_site(&rule.name),
                format!(
                    "`{}` also matches {} reserved spelling(s): {}{suffix} (literals win by priority)",
                    rule.name,
                    literal_winners.len(),
                    shown.join(", ")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> BTreeSet<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn disjoint_set_is_clean() {
        let mut ts = TokenSet::new();
        ts.pattern("NUM", "[0-9]+").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        assert!(check(&ts).is_empty());
    }

    #[test]
    fn shadowed_rule_is_an_error() {
        let mut ts = TokenSet::new();
        ts.pattern("ANY", "[a-z]+").unwrap();
        ts.pattern("ABC", "abc").unwrap();
        let d = check(&ts);
        assert_eq!(codes(&d), BTreeSet::from([Code::ShadowedTokenRule]));
        assert_eq!(d[0].site, "token `ABC`");
        assert!(d[0].message.contains("`ANY`"), "{}", d[0].message);
    }

    #[test]
    fn keyword_over_ident_is_one_note() {
        let mut ts = TokenSet::new();
        ts.keyword("FROM").unwrap();
        ts.keyword("WHERE").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        let d = check(&ts);
        assert_eq!(codes(&d), BTreeSet::from([Code::TokenOverlap]));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("2 reserved spelling(s)"), "{}", d[0].message);
    }

    #[test]
    fn skip_collision_is_a_warning() {
        let mut ts = TokenSet::new();
        ts.pattern("DASHES", "-+").unwrap();
        ts.skip("COMMENT", "--[a-z]*").unwrap();
        let d = check(&ts);
        assert_eq!(codes(&d), BTreeSet::from([Code::SkipRuleConflict]));
    }

    #[test]
    fn pattern_pattern_overlap_is_pairwise() {
        let mut ts = TokenSet::new();
        ts.pattern("HEX", "[0-9a-f]+").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        let d = check(&ts);
        assert_eq!(codes(&d), BTreeSet::from([Code::TokenOverlap]));
        assert!(d[0].message.contains("`HEX`") && d[0].message.contains("`IDENT`"));
    }
}

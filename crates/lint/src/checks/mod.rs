//! The individual check passes, one module per layer.

pub mod cross;
pub mod grammar;
pub mod lexer;
pub mod model;

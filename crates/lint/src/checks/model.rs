//! Feature-model checks: void models, dead and false-optional features,
//! contradictory and redundant cross-tree constraints.

use crate::diag::{Code, Diagnostic};
use sqlweave_feature_model::analysis::{
    analyze, try_analyze_constraints, ConstraintDefect,
};
use sqlweave_feature_model::count::try_count_configurations;
use sqlweave_feature_model::model::FeatureModel;

/// Split cap for the exact-counting analyses; diagrams past it get a
/// [`Code::ModelAnalysisSkipped`] note instead of results.
const MAX_SPLIT: usize = 20;

fn feat_site(model: &FeatureModel, name: &str) -> String {
    format!("diagram `{}`, feature `{name}`", model.name())
}

/// Lint one feature diagram.
pub fn check(model: &FeatureModel) -> Vec<Diagnostic> {
    let diagram = model.name();
    let Some(total) = try_count_configurations(model, MAX_SPLIT) else {
        return vec![Diagnostic::new(
            Code::ModelAnalysisSkipped,
            format!("diagram `{diagram}`"),
            format!(
                "more than {MAX_SPLIT} constraint-involved features; exact analysis skipped"
            ),
        )];
    };
    if total == 0 {
        // Everything is dead in a void model; the single root cause is the
        // useful diagnostic.
        return vec![Diagnostic::new(
            Code::VoidModel,
            format!("diagram `{diagram}`"),
            "the model admits no valid configuration".to_string(),
        )];
    }

    let mut out = Vec::new();
    let analysis = analyze(model);
    for &f in &analysis.dead {
        let name = &model.feature(f).name;
        out.push(Diagnostic::new(
            Code::DeadFeature,
            feat_site(model, name),
            format!("feature `{name}` appears in no valid configuration"),
        ));
    }
    for f in analysis.false_optional(model) {
        let name = &model.feature(f).name;
        out.push(Diagnostic::new(
            Code::FalseOptionalFeature,
            feat_site(model, name),
            format!(
                "feature `{name}` is declared variable but appears in every valid configuration"
            ),
        ));
    }
    if let Some(findings) = try_analyze_constraints(model, MAX_SPLIT) {
        for finding in findings {
            let code = match finding.defect {
                ConstraintDefect::Contradictory => Code::ContradictoryConstraint,
                ConstraintDefect::Redundant => Code::RedundantConstraint,
            };
            out.push(Diagnostic::new(
                code,
                format!("diagram `{diagram}`, constraint #{}", finding.index),
                finding.describe(model),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_feature_model::ModelBuilder;
    use std::collections::BTreeSet;

    fn codes(diags: &[Diagnostic]) -> BTreeSet<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn healthy_diagram_is_clean() {
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        b.mandatory(r, "a");
        b.optional(r, "o");
        b.xor(r, &["x", "y"]);
        let m = b.build().unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn void_model_is_single_error() {
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        b.mandatory(r, "a");
        b.mandatory(r, "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        let d = check(&m);
        assert_eq!(codes(&d), BTreeSet::from([Code::VoidModel]));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn dead_feature_reported() {
        // `a` is excluded by the always-present `m`.
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        b.mandatory(r, "core");
        b.optional(r, "a");
        b.excludes("core", "a");
        let m = b.build().unwrap();
        let d = check(&m);
        assert_eq!(codes(&d), BTreeSet::from([Code::DeadFeature]));
        assert!(d[0].site.contains("feature `a`"), "{}", d[0].site);
    }

    #[test]
    fn false_optional_reported() {
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        b.mandatory(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        let d = check(&m);
        assert_eq!(codes(&d), BTreeSet::from([Code::FalseOptionalFeature]));
    }

    #[test]
    fn contradictory_constraints_reported_with_dead_source() {
        // requires + excludes on the same pair: each constraint (given the
        // other) forbids `a`, which also makes `a` dead — both facts are
        // reported, anchored at the constraint and the feature.
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        let d = check(&m);
        assert!(codes(&d).contains(&Code::ContradictoryConstraint), "{d:?}");
        assert!(codes(&d).contains(&Code::DeadFeature), "{d:?}");
        assert_eq!(
            d.iter()
                .filter(|d| d.code == Code::ContradictoryConstraint)
                .count(),
            2
        );
    }

    #[test]
    fn redundant_constraint_reported() {
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        b.optional(r, "a");
        b.mandatory(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        let d = check(&m);
        assert_eq!(codes(&d), BTreeSet::from([Code::RedundantConstraint]));
        assert!(d[0].message.contains("redundant"), "{}", d[0].message);
    }

    #[test]
    fn oversized_model_skipped_with_note() {
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        for i in 0..22 {
            b.optional(r, &format!("f{i}"));
        }
        for i in 0..11 {
            b.requires(&format!("f{i}"), &format!("f{}", i + 11));
        }
        let m = b.build().unwrap();
        let d = check(&m);
        assert_eq!(codes(&d), BTreeSet::from([Code::ModelAnalysisSkipped]));
    }
}

//! Cross-layer checks: every token the grammar references must exist in
//! the composed token set, and every non-skip token in the set should be
//! referenced by some production.

use crate::diag::{Code, Diagnostic};
use sqlweave_grammar::ir::Grammar;
use sqlweave_lexgen::tokenset::TokenSet;
use std::collections::BTreeSet;

/// Lint the grammar/token-set pair.
pub fn check(grammar: &Grammar, tokens: &TokenSet) -> Vec<Diagnostic> {
    let referenced: BTreeSet<&str> = grammar.referenced_tokens().into_iter().collect();
    let mut out = Vec::new();
    for rule in tokens.rules() {
        if !rule.is_skip() && !referenced.contains(rule.name.as_str()) {
            out.push(Diagnostic::new(
                Code::UnreferencedToken,
                format!("token `{}`", rule.name),
                format!(
                    "token `{}` is in the composed set but no production references it",
                    rule.name
                ),
            ));
        }
    }
    for name in referenced {
        if tokens.get(name).is_none() {
            out.push(Diagnostic::new(
                Code::UnknownTokenReference,
                format!("token `{name}`"),
                format!(
                    "productions reference token `{name}`, which the composed token set does not define"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    #[test]
    fn consistent_pair_is_clean() {
        let g = parse_grammar("grammar g; s : SELECT IDENT ;").unwrap();
        let t = parse_tokens(
            "tokens g; SELECT = kw; IDENT = /[a-z]+/; WS = skip /[ ]+/;",
        )
        .unwrap();
        assert!(check(&g, &t).is_empty());
    }

    #[test]
    fn unreferenced_token_is_flagged_but_skips_are_exempt() {
        let g = parse_grammar("grammar g; s : SELECT ;").unwrap();
        let t = parse_tokens(
            "tokens g; SELECT = kw; IDENT = /[a-z]+/; WS = skip /[ ]+/;",
        )
        .unwrap();
        let d = check(&g, &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, Code::UnreferencedToken);
        assert_eq!(d[0].site, "token `IDENT`");
    }

    #[test]
    fn unknown_reference_is_flagged() {
        let g = parse_grammar("grammar g; s : SELECT MISSING ;").unwrap();
        let t = parse_tokens("tokens g; SELECT = kw;").unwrap();
        let d = check(&g, &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, Code::UnknownTokenReference);
        assert!(d[0].message.contains("`MISSING`"));
    }
}

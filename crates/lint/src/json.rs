//! Minimal JSON support for `--format json` output.
//!
//! The build environment has no crates.io access, so instead of `serde_json`
//! this module hand-rolls the two halves the linter needs: string-escaping
//! emitters used by [`crate::diag::LintReport`] serialization, and a small
//! recursive-descent parser used by tests (and any consumer that wants to
//! read reports back) to validate that emitted output is well-formed.

use crate::diag::{Diagnostic, LintReport, Severity};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as the contents of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Serialize one diagnostic as a JSON object. The `span` member is an
/// object with byte offsets when the diagnostic anchors to source text,
/// `null` for structural diagnostics over composed artifacts.
pub fn diagnostic(d: &Diagnostic) -> String {
    let span = match d.span {
        Some((start, end)) => format!("{{\"start\":{start},\"end\":{end}}}"),
        None => "null".to_string(),
    };
    format!(
        "{{\"code\":{},\"severity\":{},\"layer\":{},\"site\":{},\"message\":{},\"span\":{span}}}",
        string(d.code.id()),
        string(d.severity().as_str()),
        string(d.layer().as_str()),
        string(&d.site),
        string(&d.message)
    )
}

/// Serialize a full report: subject, per-severity summary, diagnostics.
pub fn report(r: &LintReport) -> String {
    let diags: Vec<String> = r.diagnostics.iter().map(diagnostic).collect();
    format!(
        "{{\"subject\":{},\"summary\":{{\"errors\":{},\"warnings\":{},\"notes\":{}}},\"diagnostics\":[{}]}}",
        string(&r.subject),
        r.count(Severity::Error),
        r.count(Severity::Warning),
        r.count(Severity::Note),
        diags.join(",")
    )
}

/// Schema identifier carried by the combined lint document. `v2` added the
/// per-diagnostic `span` member (byte offsets or `null`).
pub const LINT_SCHEMA: &str = "sqlweave-lint/v2";

/// Serialize several reports (the `--all-dialects` sweep) with a combined
/// summary.
pub fn reports(rs: &[LintReport]) -> String {
    let items: Vec<String> = rs.iter().map(report).collect();
    let errors: usize = rs.iter().map(|r| r.count(Severity::Error)).sum();
    let warnings: usize = rs.iter().map(|r| r.count(Severity::Warning)).sum();
    let notes: usize = rs.iter().map(|r| r.count(Severity::Note)).sum();
    format!(
        "{{\"schema\":\"{LINT_SCHEMA}\",\"summary\":{{\"errors\":{errors},\"warnings\":{warnings},\"notes\":{notes}}},\"reports\":[{}]}}",
        items.join(",")
    )
}

/// A parsed JSON value (subset sufficient for lint reports: no exponent
/// syntax is produced by the emitter, though the parser accepts integers
/// and simple decimals).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numbers (stored as f64; lint output only emits non-negative ints).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Value>),
    /// Object (sorted map; lint output has no duplicate keys).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(v)
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(err(*pos, "expected a value")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || b[*pos] == b'.') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| err(start, "bad number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by this crate;
                        // reject rather than mis-decode.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| err(*pos, "surrogate \\u escape"))?;
                        out.push(c);
                    }
                    _ => return Err(err(*pos - 1, "unknown escape")),
                }
            }
            c if c < 0x20 => return Err(err(*pos - 1, "control character in string")),
            _ => {
                // Re-attach multi-byte UTF-8 sequences.
                let char_start = *pos - 1;
                let width = utf8_width(c);
                let end = char_start + width;
                let s = b
                    .get(char_start..end)
                    .and_then(|seq| std::str::from_utf8(seq).ok())
                    .ok_or_else(|| err(char_start, "invalid UTF-8"))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}é—ü";
        let json = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&json).unwrap(), Value::Str(nasty.to_string()));
    }

    #[test]
    fn report_emits_valid_json() {
        let mut r = LintReport::new("demo \"dialect\"");
        r.extend([Diagnostic::new(
            Code::Ll1Conflict,
            "production `s`",
            "line1\nline2",
        )]);
        let v = parse(&report(&r)).unwrap();
        assert_eq!(v.get("subject").unwrap().as_str(), Some("demo \"dialect\""));
        let diags = v.get("diagnostics").unwrap().as_arr().unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("SW001"));
        assert_eq!(diags[0].get("severity").unwrap().as_str(), Some("warning"));
        assert_eq!(
            diags[0].get("message").unwrap().as_str(),
            Some("line1\nline2")
        );
        let summary = v.get("summary").unwrap();
        assert_eq!(summary.get("warnings").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn multi_report_summary_sums() {
        let mut a = LintReport::new("a");
        a.extend([Diagnostic::new(Code::DeadFeature, "f", "m")]);
        let b = LintReport::new("b");
        let v = parse(&reports(&[a, b])).unwrap();
        assert_eq!(
            v.get("summary").unwrap().get("errors").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(v.get("reports").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , true , null , { } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1], Value::Bool(true));
        assert_eq!(arr[2], Value::Null);
    }
}

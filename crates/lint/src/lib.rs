//! `sqlweave-lint` — cross-layer static analysis for the SQL parser
//! product line.
//!
//! A dialect in this product line is assembled from three layers — a
//! feature diagram, per-feature sub-grammars, and per-feature token files —
//! and each layer can be individually well-formed while the *composition*
//! is defective: a production only a removed feature referenced, a token
//! shadowed by another feature's rules, a constraint that quietly kills a
//! feature. The linter runs every layer's analysis over a composed artifact
//! (or the whole diagram catalog) and reports findings as [`Diagnostic`]s
//! with stable codes (`SW001`…), severities, and named sites, rendered as
//! human-readable text or JSON (see [`json`]).
//!
//! Severity policy: a well-formed dialect lints with **zero errors**.
//! Conditions the runtime tolerates by design — LL(1) conflicts handled by
//! the backtracking engine, keyword/identifier overlap resolved by scanner
//! priority — are warnings or notes; conditions that make part of the
//! artifact unusable are errors.
//!
//! # Example
//!
//! ```
//! use sqlweave_lint::{lint_dialect, Severity};
//! use sqlweave_dialects::Dialect;
//!
//! let report = lint_dialect(Dialect::Pico).unwrap();
//! assert_eq!(report.count(Severity::Error), 0, "{report}");
//! ```

pub mod certify;
pub mod checks;
pub mod diag;
pub mod json;

pub use diag::{Code, Diagnostic, Layer, LintReport, Severity};

use sqlweave_core::error::PipelineError;
use sqlweave_core::pipeline::Composed;
use sqlweave_dialects::Dialect;
use sqlweave_feature_model::model::FeatureModel;
use sqlweave_grammar::ir::Grammar;
use sqlweave_lexgen::tokenset::TokenSet;

/// Lint a grammar/token-set pair under `subject`: grammar checks, lexer
/// checks, and the cross-layer consistency checks.
pub fn lint_pair(subject: &str, grammar: &Grammar, tokens: &TokenSet) -> LintReport {
    let mut report = LintReport::new(subject);
    report.extend(checks::grammar::check(grammar));
    report.extend(checks::lexer::check(tokens));
    report.extend(checks::cross::check(grammar, tokens));
    report
}

/// Lint a grammar alone (no token set available — cross-layer and lexer
/// checks are skipped).
pub fn lint_grammar(subject: &str, grammar: &Grammar) -> LintReport {
    let mut report = LintReport::new(subject);
    report.extend(checks::grammar::check(grammar));
    report
}

/// Lint the output of a composition run.
pub fn lint_composed(composed: &Composed) -> LintReport {
    lint_pair(&composed.name, &composed.grammar, &composed.tokens)
}

/// Lint one feature diagram.
pub fn lint_model(model: &FeatureModel) -> LintReport {
    let mut report = LintReport::new(format!("diagram `{}`", model.name()));
    report.extend(checks::model::check(model));
    report
}

/// Lint every diagram in the SQL feature catalog as one report.
pub fn lint_catalog() -> LintReport {
    let mut report = LintReport::new("feature-model catalog");
    for model in sqlweave_sql_features::catalog().diagrams() {
        report.extend(checks::model::check(&model));
    }
    report
}

/// Compose and lint one preset dialect.
pub fn lint_dialect(dialect: Dialect) -> Result<LintReport, PipelineError> {
    Ok(lint_composed(&dialect.composed()?))
}

/// The full matrix sweep: the feature-model catalog plus every preset
/// dialect, one report each.
pub fn lint_all_dialects() -> Result<Vec<LintReport>, PipelineError> {
    let mut reports = vec![lint_catalog()];
    for d in Dialect::ALL {
        reports.push(lint_dialect(d)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    #[test]
    fn lint_pair_aggregates_all_layers() {
        // One defect per layer: left recursion (grammar), shadowed rule
        // (lexer), unknown token reference (cross).
        let g = parse_grammar("grammar g; s : s ANY | ABC MISSING ;").unwrap();
        let t = parse_tokens("tokens g; ANY = /[a-z]+/; ABC = /abc/;").unwrap();
        let r = lint_pair("demo", &g, &t);
        assert!(r.with_code(Code::DirectLeftRecursion).len() == 1, "{r}");
        assert!(r.with_code(Code::ShadowedTokenRule).len() == 1, "{r}");
        assert!(r.with_code(Code::UnknownTokenReference).len() == 1, "{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn lint_grammar_alone_skips_other_layers() {
        let g = parse_grammar("grammar g; s : A ;").unwrap();
        let r = lint_grammar("demo", &g);
        assert!(r.diagnostics.is_empty(), "{r}");
    }
}

//! Family-based product-line certification (the SW5xx rules).
//!
//! `lint` checks one composed grammar at a time; `certify` checks the *family*:
//! every valid configuration of a feature model (exactly, when the space is
//! small enough to enumerate) or a pairwise-covering sample of it (with honest
//! coverage accounting when it is not). Findings that already appear in every
//! preset dialect are baseline noise and are subtracted; what remains are
//! *interaction faults* — defects that only manifest when particular features
//! are co-selected — and each is reported once with a minimized **presence
//! condition**: the smallest feature set whose co-selection reproduces it.
//!
//! The pass drives the same composition pipeline and lint checks that
//! `sqlweave lint` uses, so a certify finding is always replayable as a plain
//! lint run on the witness configuration.

use crate::diag::{Code, Severity};
use crate::json;
use sqlweave_core::pipeline::Pipeline;
use sqlweave_core::registry::FeatureRegistry;
use sqlweave_dialects::Dialect;
use sqlweave_feature_model::complete::complete;
use sqlweave_feature_model::solve::{self, PairwiseCoverage};
use sqlweave_feature_model::{Configuration, FeatureId, FeatureModel};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Schema identifier for the JSON certification inventory.
pub const CERTIFY_SCHEMA: &str = "sqlweave-certify/v1";

/// Default cap on configurations analyzed per model.
pub const DEFAULT_LIMIT: usize = 64;

/// Feature diagrams certified by `sqlweave certify` when no `--dialect-model`
/// is given: every exactly-enumerable statement-class diagram that fits the
/// default limit, plus the full SQL:2003 model (sampled). Ordered as listed.
pub const DEFAULT_MODELS: &[&str] = &[
    "set_quantifier",
    "order_by",
    "group_by",
    "insert_statement",
    "sensor_query",
    "table_expression",
    "sql_2003",
];

/// Tuning knobs for a certification run.
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Maximum configurations analyzed per model. When the model's exact
    /// count fits the limit the whole space is enumerated; otherwise a
    /// pairwise-covering sample is drawn and coverage is reported honestly.
    pub limit: usize,
    /// Force pairwise sampling even when exhaustive enumeration would fit.
    pub force_sample: bool,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            limit: DEFAULT_LIMIT,
            force_sample: false,
        }
    }
}

/// The product-line slice a certification run ranges over.
///
/// `scope_model` is the diagram whose configurations are enumerated or
/// sampled; `model`/`registry` are the full product line each scope
/// configuration is *lifted* into before composing (a statement-class diagram
/// is not composable on its own — it needs the surrounding minimal dialect).
pub struct FamilyScope<'a> {
    /// Name used in reports and as the composed grammar's name.
    pub subject: String,
    /// Full feature model the pipeline composes against.
    pub model: &'a FeatureModel,
    /// Grammar/token fragments, one per feature.
    pub registry: &'a FeatureRegistry,
    /// Start symbol for composition.
    pub start: String,
    /// The diagram whose configuration space is certified.
    pub scope_model: FeatureModel,
    /// Features added to every scope configuration before lifting (the
    /// minimal surrounding dialect); empty when the scope *is* the full model.
    pub base: Configuration,
}

/// One certified defect, deduplicated across configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyFinding {
    /// The SW5xx family code.
    pub code: Code,
    /// The per-configuration lint code this aggregates (absent for SW501
    /// composition failures and SW505 coverage shortfalls).
    pub underlying: Option<Code>,
    /// Site of the defect (production, token, or model name).
    pub site: String,
    /// Minimized presence condition: the smallest set of non-skeleton
    /// features whose co-selection reproduces the finding. Empty means the
    /// defect is family-wide within the scope.
    pub presence: Vec<String>,
    /// A complete valid configuration exhibiting the defect.
    pub witness: Configuration,
    /// Human-readable message from the underlying check.
    pub detail: String,
}

impl CertifyFinding {
    /// Render as a single report line.
    pub fn render(&self) -> String {
        // An empty presence condition on a composed-grammar finding means the
        // scope's *minimal* configuration already reproduces it; a coverage
        // shortfall is a property of the run, not of any configuration.
        let context = if self.code == Code::SampledCoverageShortfall {
            String::new()
        } else if self.presence.is_empty() {
            "in the minimal configuration: ".to_string()
        } else {
            format!("under {{{}}}: ", self.presence.join(", "))
        };
        let underlying = self
            .underlying
            .map(|u| format!("{} ", u.id()))
            .unwrap_or_default();
        format!(
            "{}[{}] {}: {}{}{}",
            self.code.severity(),
            self.code.id(),
            self.site,
            context,
            underlying,
            self.detail
        )
    }
}

/// Certification result for one feature diagram.
#[derive(Debug, Clone)]
pub struct ModelCertification {
    /// The diagram certified.
    pub subject: String,
    /// Whether the whole configuration space was enumerated.
    pub exact: bool,
    /// Exact size of the configuration space, when countable.
    pub total: Option<u128>,
    /// Configurations produced by enumeration or sampling.
    pub enumerated: usize,
    /// Configurations successfully lifted, composed or diagnosed.
    pub analyzed: usize,
    /// Scope configurations with no valid lift into the full model.
    pub unliftable: usize,
    /// Pairwise coverage accounting (sampled mode only).
    pub coverage: Option<PairwiseCoverage>,
    /// Deduplicated findings, sorted by (code, site, presence).
    pub findings: Vec<CertifyFinding>,
}

impl ModelCertification {
    /// True when any finding is error severity.
    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.code.severity() == Severity::Error)
    }

    /// Multi-line human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = format!("certify `{}`\n", self.subject);
        let total = match self.total {
            Some(n) => n.to_string(),
            None => "uncountable".to_string(),
        };
        if self.exact {
            out.push_str(&format!(
                "  mode: exact — all {} valid configurations enumerated, {} analyzed ({} unliftable)\n",
                total, self.analyzed, self.unliftable
            ));
        } else {
            out.push_str(&format!(
                "  mode: sampled — {} of {} configurations analyzed ({} unliftable)\n",
                self.analyzed, total, self.unliftable
            ));
            if let Some(cov) = &self.coverage {
                out.push_str(&format!(
                    "  pairwise coverage: {}/{} combinations over {} variables ({} proven invalid)\n",
                    cov.covered, cov.required, cov.variables, cov.proven_invalid
                ));
            }
        }
        if self.findings.is_empty() {
            out.push_str("  certified: no findings beyond the preset baseline\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!("  {}\n", f.render()));
            }
        }
        out
    }
}

/// Finding keys as they appear in per-configuration lint output.
type LintKey = (Code, String);

/// Cached outcome of composing + linting one full configuration.
type ComposeOutcome = Result<BTreeMap<LintKey, String>, String>;

struct Certifier<'a> {
    scope: &'a FamilyScope<'a>,
    /// Names of every feature inside the scope diagram.
    scope_names: BTreeSet<String>,
    /// Implication closure of the empty selection in the scope: features
    /// present in *every* scope configuration, hence never part of a
    /// presence condition.
    skeleton: Configuration,
    cache: HashMap<String, ComposeOutcome>,
}

impl<'a> Certifier<'a> {
    fn new(scope: &'a FamilyScope<'a>) -> Self {
        let scope_names = scope
            .scope_model
            .iter()
            .map(|(_, f)| f.name.clone())
            .collect();
        let skeleton = complete(&scope.scope_model, &Configuration::new())
            .expect("empty selection closes over any model");
        Certifier {
            scope,
            scope_names,
            skeleton,
            cache: HashMap::new(),
        }
    }

    /// Lift a scope configuration into a complete, valid full-model
    /// configuration that keeps every deselected scope feature deselected.
    /// Returns `None` when no such lift exists — the scope configuration is
    /// then *unliftable* and honestly excluded from the analyzed count.
    fn lift(&self, config: &Configuration) -> Option<Configuration> {
        let off = Configuration::of(
            self.scope_names
                .iter()
                .filter(|n| !config.contains(n))
                .cloned(),
        );
        let seeded = self.scope.base.union(config);
        let closed = complete(self.scope.model, &seeded).ok()?;
        solve::resolve_open_choices(self.scope.model, &closed, &off)
    }

    /// Compose and lint one full configuration, memoized. `Err` carries the
    /// pipeline error message; `Ok` maps each family-relevant lint key to its
    /// message.
    fn compose_and_lint(&mut self, full: &Configuration) -> ComposeOutcome {
        let key = full.to_string();
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let outcome = match Pipeline::new(self.scope.model, self.scope.registry)
            .with_start(&self.scope.start)
            .with_name(&self.scope.subject)
            .compose(full)
        {
            Err(e) => Err(e.to_string()),
            Ok(composed) => {
                let report = crate::lint_composed(&composed);
                let mut keys = BTreeMap::new();
                for d in &report.diagnostics {
                    if family_code(d.code).is_some() {
                        keys.entry((d.code, d.site.clone()))
                            .or_insert_with(|| d.message.clone());
                    }
                }
                Ok(keys)
            }
        };
        self.cache.insert(key, outcome.clone());
        outcome
    }

    /// Does the partial selection `keep` (with `removed` forced off inside
    /// the scope) still reproduce the finding?
    fn reproduces(&mut self, target: &Target, keep: &[String], removed: &[String]) -> bool {
        let avoid = Configuration::of(removed.iter().cloned());
        let Ok(closed) = complete(&self.scope.scope_model, &Configuration::of(keep.iter().cloned()))
        else {
            return false;
        };
        if closed.iter().any(|n| avoid.contains(n)) {
            return false;
        }
        let Some(config) = solve::resolve_open_choices(&self.scope.scope_model, &closed, &avoid)
        else {
            return false;
        };
        let Some(full) = self.lift(&config) else {
            return false;
        };
        match (self.compose_and_lint(&full), target) {
            (Err(msg), Target::ComposeError(want)) => msg == *want,
            (Ok(keys), Target::Lint(key)) => keys.contains_key(key),
            _ => false,
        }
    }

    /// Minimize a presence condition by greedy chunked removal (ddmin-lite):
    /// every removal is re-validated by actually re-composing and re-linting
    /// a configuration that contains the kept features and avoids the
    /// removed ones.
    fn minimize(&mut self, target: &Target, vars: Vec<String>) -> Vec<String> {
        let mut kept = vars;
        let mut removed: Vec<String> = Vec::new();
        let mut chunk = kept.len().div_ceil(2).max(1);
        loop {
            let mut progress = false;
            let mut i = 0;
            while i < kept.len() {
                let end = (i + chunk).min(kept.len());
                let trial_keep: Vec<String> =
                    kept[..i].iter().chain(&kept[end..]).cloned().collect();
                let trial_removed: Vec<String> =
                    removed.iter().chain(&kept[i..end]).cloned().collect();
                if self.reproduces(target, &trial_keep, &trial_removed) {
                    kept = trial_keep;
                    removed = trial_removed;
                    progress = true;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                if !progress {
                    break;
                }
            } else {
                chunk = (chunk / 2).max(1);
            }
        }
        kept
    }
}

/// What a finding is anchored to, for reproduction during minimization.
enum Target {
    /// A per-configuration lint key (code + site); messages are excluded
    /// because they can embed configuration-specific token lists.
    Lint(LintKey),
    /// A composition failure, keyed by its rendered error.
    ComposeError(String),
}

/// Map a per-configuration lint code to the SW5xx family code that
/// aggregates it, or `None` for codes certify does not track (notes like
/// SW102/SW015, and the model-level SW2xx which do not vary per config).
fn family_code(code: Code) -> Option<Code> {
    Some(match code {
        Code::ShadowedTokenRule | Code::SkipRuleConflict | Code::BadTokenPattern => {
            Code::InteractionTokenCollision
        }
        Code::Ll1Conflict | Code::ResidualLookaheadAmbiguity => Code::InteractionLl1Conflict,
        Code::UnreachableNonterminal | Code::UnreferencedToken => Code::ConfigDependentDeadSurface,
        Code::DirectLeftRecursion
        | Code::LeftRecursionCycle
        | Code::UnproductiveNonterminal
        | Code::UndefinedNonterminal
        | Code::UnknownTokenReference => Code::InteractionGrammarDefect,
        _ => return None,
    })
}

/// Certify one family scope against a set of baseline configurations
/// (typically the preset dialects). Findings present in any baseline are
/// subtracted — certify reports only what the per-dialect sweep *cannot* see.
pub fn certify_scope(
    scope: &FamilyScope,
    baselines: &[Configuration],
    opts: &CertifyOptions,
) -> ModelCertification {
    let mut cx = Certifier::new(scope);
    let scope_root = scope.scope_model.root().name.clone();

    // Seed the sampler with the baselines' restriction to the scope, so the
    // preset dialects always count toward pairwise coverage.
    let seeds: Vec<Configuration> = baselines
        .iter()
        .filter_map(|b| {
            let restricted =
                Configuration::of(b.iter().filter(|n| cx.scope_names.contains(*n)));
            (restricted.contains(&scope_root)
                && scope.scope_model.validate(&restricted).is_ok())
            .then_some(restricted)
        })
        .collect();

    let sample = solve::enumerate_or_sample(&scope.scope_model, &seeds, opts.limit, opts.force_sample);

    // Baseline keys: findings every preset already shows are family noise,
    // not interaction faults.
    let mut baseline_keys: BTreeSet<LintKey> = BTreeSet::new();
    let mut baseline_errors: BTreeSet<String> = BTreeSet::new();
    for b in baselines {
        match cx.compose_and_lint(b) {
            Ok(keys) => baseline_keys.extend(keys.keys().cloned()),
            Err(msg) => {
                baseline_errors.insert(msg);
            }
        }
    }

    struct Pending {
        code: Code,
        underlying: Option<Code>,
        site: String,
        detail: String,
        witness: Configuration,
    }

    let mut analyzed = 0usize;
    let mut unliftable = 0usize;
    let mut seen: BTreeSet<LintKey> = BTreeSet::new();
    let mut seen_errors: BTreeSet<String> = BTreeSet::new();
    let mut pending: Vec<Pending> = Vec::new();

    for config in &sample.configs {
        let Some(full) = cx.lift(config) else {
            unliftable += 1;
            continue;
        };
        analyzed += 1;
        match cx.compose_and_lint(&full) {
            Err(msg) => {
                if baseline_errors.contains(&msg) || !seen_errors.insert(msg.clone()) {
                    continue;
                }
                pending.push(Pending {
                    code: Code::FamilyCompositionFailure,
                    underlying: None,
                    site: "composition".to_string(),
                    detail: msg,
                    witness: config.clone(),
                });
            }
            Ok(keys) => {
                for ((ucode, site), msg) in keys {
                    let key = (ucode, site.clone());
                    if baseline_keys.contains(&key) || !seen.insert(key) {
                        continue;
                    }
                    pending.push(Pending {
                        code: family_code(ucode).expect("only family-relevant keys cached"),
                        underlying: Some(ucode),
                        site,
                        detail: msg,
                        witness: config.clone(),
                    });
                }
            }
        }
    }

    let mut findings: Vec<CertifyFinding> = pending
        .into_iter()
        .map(|p| {
            let vars: Vec<String> = p
                .witness
                .iter()
                .filter(|n| !cx.skeleton.contains(n))
                .map(str::to_string)
                .collect();
            let target = match p.underlying {
                Some(u) => Target::Lint((u, p.site.clone())),
                None => Target::ComposeError(p.detail.clone()),
            };
            let presence = cx.minimize(&target, vars);
            CertifyFinding {
                code: p.code,
                underlying: p.underlying,
                site: p.site,
                presence,
                witness: p.witness,
                detail: p.detail,
            }
        })
        .collect();

    if let Some(cov) = &sample.coverage {
        if !cov.complete() {
            let examples: Vec<String> = cov.uncovered.iter().take(3).map(|c| c.to_string()).collect();
            findings.push(CertifyFinding {
                code: Code::SampledCoverageShortfall,
                underlying: None,
                site: format!("model `{}`", scope.subject),
                presence: Vec::new(),
                witness: Configuration::new(),
                detail: format!(
                    "pairwise coverage {}/{} under limit {}: {} combination(s) unexercised (e.g. {})",
                    cov.covered,
                    cov.required,
                    opts.limit,
                    cov.uncovered.len(),
                    examples.join("; ")
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.code, &a.site, &a.presence).cmp(&(b.code, &b.site, &b.presence))
    });

    ModelCertification {
        subject: scope.subject.clone(),
        exact: sample.exact,
        total: sample.total,
        enumerated: sample.configs.len(),
        analyzed,
        unliftable,
        coverage: sample.coverage,
        findings,
    }
}

/// Certify one diagram of the SQL:2003 catalog against the preset dialects.
/// Returns `None` for an unknown diagram name.
pub fn certify_catalog_model(name: &str, opts: &CertifyOptions) -> Option<ModelCertification> {
    let cat = sqlweave_sql_features::catalog();
    let scope_model = if name == cat.model().name() {
        cat.model().subtree(FeatureId::ROOT)
    } else {
        cat.diagram(name)?
    };
    // Statement-class diagrams are lifted on top of the minimal query
    // dialect (the same base the feature sweep uses); the full model needs
    // no base.
    let base = if name == cat.model().name() {
        Configuration::new()
    } else {
        Configuration::of(["query_statement", "select_sublist"])
    };
    let scope = FamilyScope {
        subject: name.to_string(),
        model: cat.model(),
        registry: cat.registry(),
        start: "sql_script".to_string(),
        scope_model,
        base,
    };
    let baselines: Vec<Configuration> = Dialect::ALL.iter().map(|d| d.configuration()).collect();
    Some(certify_scope(&scope, &baselines, opts))
}

/// Certify the default model set (see [`DEFAULT_MODELS`]).
pub fn certify_default(opts: &CertifyOptions) -> Vec<ModelCertification> {
    DEFAULT_MODELS
        .iter()
        .map(|name| certify_catalog_model(name, opts).expect("default models exist in the catalog"))
        .collect()
}

/// Serialize certifications as a `sqlweave-certify/v1` document.
///
/// `configs_total` is a decimal **string** (or null): the count is u128 and
/// must survive parsers that read numbers as f64.
pub fn certification_json(certs: &[ModelCertification], limit: usize) -> String {
    fn s(v: &str) -> String {
        format!("\"{}\"", json::escape(v))
    }
    let models: Vec<String> = certs
        .iter()
        .map(|c| {
            let total = match c.total {
                Some(n) => s(&n.to_string()),
                None => "null".to_string(),
            };
            let coverage = match &c.coverage {
                None => "null".to_string(),
                Some(cov) => format!(
                    "{{\"variables\":{},\"covered\":{},\"required\":{},\"proven_invalid\":{},\"uncovered\":{}}}",
                    cov.variables,
                    cov.covered,
                    cov.required,
                    cov.proven_invalid,
                    cov.uncovered.len()
                ),
            };
            let findings: Vec<String> = c
                .findings
                .iter()
                .map(|f| {
                    let underlying = match f.underlying {
                        Some(u) => s(u.id()),
                        None => "null".to_string(),
                    };
                    let presence: Vec<String> = f.presence.iter().map(|p| s(p)).collect();
                    format!(
                        "{{\"code\":{},\"severity\":{},\"underlying\":{},\"site\":{},\"presence\":[{}],\"witness\":{},\"detail\":{}}}",
                        s(f.code.id()),
                        s(&f.code.severity().to_string()),
                        underlying,
                        s(&f.site),
                        presence.join(","),
                        s(&f.witness.to_string()),
                        s(&f.detail)
                    )
                })
                .collect();
            format!(
                "{{\"model\":{},\"mode\":{},\"configs_total\":{},\"enumerated\":{},\"analyzed\":{},\"unliftable\":{},\"coverage\":{},\"findings\":[{}]}}",
                s(&c.subject),
                s(if c.exact { "exact" } else { "sampled" }),
                total,
                c.enumerated,
                c.analyzed,
                c.unliftable,
                coverage,
                findings.join(",")
            )
        })
        .collect();
    format!(
        "{{\"schema\":{},\"limit\":{},\"models\":[{}]}}",
        s(CERTIFY_SCHEMA),
        limit,
        models.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_feature_model::ModelBuilder;

    /// root ── mandatory `base`, optional `alpha`/`beta`/`gamma`.
    fn mini_model() -> FeatureModel {
        let mut b = ModelBuilder::new("mini");
        let r = b.root();
        b.mandatory(r, "base");
        b.optional(r, "alpha");
        b.optional(r, "beta");
        b.optional(r, "gamma");
        b.build().unwrap()
    }

    fn scope<'a>(model: &'a FeatureModel, registry: &'a FeatureRegistry) -> FamilyScope<'a> {
        FamilyScope {
            subject: "mini".to_string(),
            model,
            registry,
            start: "s".to_string(),
            scope_model: model.subtree(FeatureId::ROOT),
            base: Configuration::new(),
        }
    }

    fn baseline(model: &FeatureModel, extra: &[&str]) -> Configuration {
        complete(
            model,
            &Configuration::of(extra.iter().map(|s| s.to_string())),
        )
        .unwrap()
    }

    #[test]
    fn sw501_composition_failure_with_minimized_presence() {
        // alpha and beta define the same token name with different patterns:
        // each composes alone, together the pipeline rejects the pair.
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register("alpha", "", "tokens alpha; CLASH = /aa/;").unwrap();
        reg.register("beta", "", "tokens beta; CLASH = /bb/;").unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(
            &scope(&model, &reg),
            &[baseline(&model, &["alpha"]), baseline(&model, &["beta"])],
            &CertifyOptions::default(),
        );
        assert!(cert.exact);
        assert_eq!(cert.enumerated, 8);
        assert_eq!(cert.analyzed, 8);
        let f = cert
            .findings
            .iter()
            .find(|f| f.code == Code::FamilyCompositionFailure)
            .expect("SW501 reported");
        assert_eq!(f.presence, vec!["alpha", "beta"]);
        assert!(cert.has_errors());
    }

    #[test]
    fn sw502_interaction_token_collision() {
        // Two equal patterns under different names shadow each other only
        // when co-selected; gamma rides along in the first (sorted) witness
        // and must be minimized away.
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register(
            "alpha",
            "grammar alpha; s : ALPHA ;",
            "tokens alpha; ALPHA = /ab/;",
        )
        .unwrap();
        reg.register(
            "beta",
            "grammar beta; s : BETA CORE ;",
            "tokens beta; BETA = /ab/;",
        )
        .unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(
            &scope(&model, &reg),
            &[baseline(&model, &["alpha"]), baseline(&model, &["beta"])],
            &CertifyOptions::default(),
        );
        let f = cert
            .findings
            .iter()
            .find(|f| f.code == Code::InteractionTokenCollision)
            .expect("SW502 reported");
        assert_eq!(f.underlying, Some(Code::ShadowedTokenRule));
        assert_eq!(f.presence, vec!["alpha", "beta"]);
        assert!(f.witness.contains("gamma"), "sorted witness rides gamma");
    }

    #[test]
    fn sw503_interaction_ll1_conflict() {
        // Both optional alternatives start with SHARED: the conflict exists
        // only when alpha and beta are co-selected.
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register(
            "base",
            "grammar base; s : CORE ;",
            "tokens base; CORE = kw; SHARED = kw;",
        )
        .unwrap();
        reg.register("alpha", "grammar alpha; s : SHARED CORE ;", "").unwrap();
        reg.register("beta", "grammar beta; s : SHARED SHARED ;", "").unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(
            &scope(&model, &reg),
            &[baseline(&model, &["alpha"]), baseline(&model, &["beta"])],
            &CertifyOptions::default(),
        );
        let f = cert
            .findings
            .iter()
            .find(|f| f.code == Code::InteractionLl1Conflict)
            .expect("SW503 reported");
        assert_eq!(f.underlying, Some(Code::Ll1Conflict));
        assert_eq!(f.presence, vec!["alpha", "beta"]);
    }

    #[test]
    fn sw504_config_dependent_dead_surface() {
        // alpha defines a helper production only beta references: with alpha
        // alone the helper is dead grammar surface.
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register(
            "alpha",
            "grammar alpha; helper : CORE CORE ;",
            "",
        )
        .unwrap();
        reg.register("beta", "grammar beta; s : helper ;", "").unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(
            &scope(&model, &reg),
            &[baseline(&model, &[])],
            &CertifyOptions::default(),
        );
        let f = cert
            .findings
            .iter()
            .find(|f| f.code == Code::ConfigDependentDeadSurface)
            .expect("SW504 reported");
        assert_eq!(f.underlying, Some(Code::UnreachableNonterminal));
        assert_eq!(f.presence, vec!["alpha"]);
        // With beta co-selected the helper is reachable, so the defect is
        // config-dependent, not family-wide.
        assert!(!f.presence.contains(&"beta".to_string()));
    }

    #[test]
    fn sw505_sampled_coverage_shortfall_is_reported() {
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        for f in ["alpha", "beta", "gamma"] {
            reg.register(f, "", "").unwrap();
        }
        let opts = CertifyOptions {
            limit: 2,
            force_sample: true,
        };
        let cert = certify_scope(&scope(&model, &reg), &[], &opts);
        assert!(!cert.exact);
        let f = cert
            .findings
            .iter()
            .find(|f| f.code == Code::SampledCoverageShortfall)
            .expect("SW505 reported");
        assert!(f.detail.contains("under limit 2"), "{}", f.detail);
        let cov = cert.coverage.as_ref().unwrap();
        assert!(!cov.complete());
    }

    #[test]
    fn sw506_interaction_grammar_defect() {
        // beta references a nonterminal nothing defines.
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register("alpha", "", "").unwrap();
        reg.register("beta", "grammar beta; s : CORE ghost ;", "").unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(
            &scope(&model, &reg),
            &[baseline(&model, &[])],
            &CertifyOptions::default(),
        );
        let f = cert
            .findings
            .iter()
            .find(|f| f.code == Code::InteractionGrammarDefect)
            .expect("SW506 reported");
        assert_eq!(f.underlying, Some(Code::UndefinedNonterminal));
        assert_eq!(f.presence, vec!["beta"]);
    }

    #[test]
    fn baseline_findings_are_subtracted() {
        // The same shadowing defect, but one baseline already co-selects
        // alpha and beta: certify must stay silent about what lint sees.
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register(
            "alpha",
            "grammar alpha; s : ALPHA ;",
            "tokens alpha; ALPHA = /ab/;",
        )
        .unwrap();
        reg.register(
            "beta",
            "grammar beta; s : BETA CORE ;",
            "tokens beta; BETA = /ab/;",
        )
        .unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(
            &scope(&model, &reg),
            &[baseline(&model, &["alpha", "beta"])],
            &CertifyOptions::default(),
        );
        assert!(
            cert.findings.is_empty(),
            "baseline-visible findings must be subtracted: {:?}",
            cert.findings
        );
    }

    #[test]
    fn certification_json_round_trips() {
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register("alpha", "", "tokens alpha; CLASH = /aa/;").unwrap();
        reg.register("beta", "", "tokens beta; CLASH = /bb/;").unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(&scope(&model, &reg), &[], &CertifyOptions::default());
        let doc = certification_json(std::slice::from_ref(&cert), DEFAULT_LIMIT);
        let v = json::parse(&doc).expect("valid json");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(CERTIFY_SCHEMA)
        );
        let models = v.get("models").and_then(|m| m.as_arr()).unwrap();
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert_eq!(m.get("mode").and_then(|s| s.as_str()), Some("exact"));
        // u128 totals are strings, not numbers.
        assert_eq!(m.get("configs_total").and_then(|s| s.as_str()), Some("8"));
        let findings = m.get("findings").and_then(|f| f.as_arr()).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.get("code").and_then(|c| c.as_str()) == Some("SW501")));
    }

    #[test]
    fn render_text_names_mode_and_presence() {
        let model = mini_model();
        let mut reg = FeatureRegistry::new();
        reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
            .unwrap();
        reg.register("alpha", "", "tokens alpha; CLASH = /aa/;").unwrap();
        reg.register("beta", "", "tokens beta; CLASH = /bb/;").unwrap();
        reg.register("gamma", "", "").unwrap();
        let cert = certify_scope(&scope(&model, &reg), &[], &CertifyOptions::default());
        let text = cert.render_text();
        assert!(text.contains("mode: exact"), "{text}");
        assert!(text.contains("under {alpha, beta}"), "{text}");
        assert!(text.contains("SW501"), "{text}");
    }
}

//! Diagnostic vocabulary: stable codes, severities, layers, and the report
//! container shared by every check and both output formats.

use std::fmt;

/// How serious a diagnostic is. Ordering is by increasing severity so
/// `Ord::max` and sorting do the right thing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; expected in healthy dialects (e.g. keyword/identifier
    /// overlap, which the scanner resolves by priority).
    Note,
    /// Suspicious but tolerated by the runtime (e.g. LL(1) conflicts, which
    /// the backtracking engine handles).
    Warning,
    /// A defect: the composed artifact misbehaves or some part of it is
    /// unusable.
    Error,
}

impl Severity {
    /// Lowercase name, as used in JSON output and CLI filters.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which layer of the product line a diagnostic comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// Composed grammar (LL(1) table, recursion, reachability).
    Grammar,
    /// Composed token set (DFA-level rule interactions).
    Lexer,
    /// Feature diagrams and cross-tree constraints.
    FeatureModel,
    /// Consistency between the grammar and the token set.
    Cross,
    /// Name resolution and lineage over parsed statements (the `sema`
    /// crate's rules).
    Semantic,
    /// Family-based certification over the whole configuration space
    /// (`sqlweave certify`): defects that only manifest in specific
    /// feature combinations, plus coverage accounting.
    ProductLine,
}

impl Layer {
    /// Lowercase name, as used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Grammar => "grammar",
            Layer::Lexer => "lexer",
            Layer::FeatureModel => "feature-model",
            Layer::Cross => "cross-layer",
            Layer::Semantic => "semantic",
            Layer::ProductLine => "product-line",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric ranges encode the layer: `SW0xx`
/// grammar, `SW1xx` lexer, `SW2xx` feature model, `SW3xx` cross-layer,
/// `SW4xx` semantic (name resolution over parsed statements), `SW5xx`
/// product-line certification (family-based analysis over the whole
/// configuration space).
/// Codes are append-only: new checks get new numbers, retired checks leave
/// gaps, so scripts keying on codes never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// SW001 — LL(1) prediction conflict (two alternatives share a
    /// prediction token).
    Ll1Conflict,
    /// SW002 — a production is directly left-recursive.
    DirectLeftRecursion,
    /// SW003 — a cycle of productions is mutually left-recursive.
    LeftRecursionCycle,
    /// SW004 — a nonterminal is never reachable from the start symbol.
    UnreachableNonterminal,
    /// SW005 — a nonterminal derives no finite terminal string.
    UnproductiveNonterminal,
    /// SW006 — a referenced nonterminal (or the start symbol) has no
    /// production.
    UndefinedNonterminal,
    /// SW015 — an LL(1) conflict is statically resolvable with k ≤ 3
    /// tokens of lookahead (a dispatch table was compiled).
    ConflictResolvableAtK,
    /// SW016 — an LL(1) conflict is residually ambiguous at k = 3; the
    /// message carries a shortest witness token sequence.
    ResidualLookaheadAmbiguity,
    /// SW101 — a token rule can never be emitted: higher-priority rules
    /// win every string it matches.
    ShadowedTokenRule,
    /// SW102 — two token rules match some common string; priority decides.
    TokenOverlap,
    /// SW103 — a skip rule's language collides with another rule.
    SkipRuleConflict,
    /// SW104 — a token rule's pattern failed to compile.
    BadTokenPattern,
    /// SW200 — feature-model analysis was skipped (too many
    /// constraint-involved features for exact counting).
    ModelAnalysisSkipped,
    /// SW201 — a feature appears in no valid configuration.
    DeadFeature,
    /// SW202 — a feature is declared variable but appears in every valid
    /// configuration (false-optional).
    FalseOptionalFeature,
    /// SW203 — a cross-tree constraint forbids its own source feature.
    ContradictoryConstraint,
    /// SW204 — a cross-tree constraint prunes nothing.
    RedundantConstraint,
    /// SW205 — the model admits no valid configuration at all.
    VoidModel,
    /// SW301 — a composed (non-skip) token is never referenced by any
    /// production.
    UnreferencedToken,
    /// SW302 — a production references a token absent from the composed
    /// token set.
    UnknownTokenReference,
    /// SW401 — a table reference resolves to nothing: not a CTE, not an
    /// alias, and absent from the supplied schema catalog.
    UnknownTable,
    /// SW402 — a column reference's qualifier or name resolves to no
    /// visible relation/column in scope.
    UnknownColumn,
    /// SW403 — an unqualified column name is exported by more than one
    /// relation in scope.
    AmbiguousColumn,
    /// SW404 — a WITH-clause element is never referenced by the statement
    /// that declares it.
    UnusedCte,
    /// SW405 — two relations in the same FROM scope share an exposed name.
    DuplicateAlias,
    /// SW501 — a valid configuration fails to compose (or the certify
    /// pass could not even build it); the family promise that *any* valid
    /// selection yields a parser is broken.
    FamilyCompositionFailure,
    /// SW502 — a token-level defect (shadowing, skip-rule collision, bad
    /// pattern) that only manifests under a specific feature interaction,
    /// absent from every preset baseline.
    InteractionTokenCollision,
    /// SW503 — an LL(1) prediction conflict (or residual lookahead
    /// ambiguity) introduced by a feature interaction beyond the presets.
    InteractionLl1Conflict,
    /// SW504 — a nonterminal or token that becomes dead (unreachable /
    /// unreferenced) only under a specific configuration.
    ConfigDependentDeadSurface,
    /// SW505 — the certification pass sampled the configuration space and
    /// could not exercise every required pairwise feature combination;
    /// the message reports the honest shortfall.
    SampledCoverageShortfall,
    /// SW506 — a grammar-level defect (left recursion, undefined or
    /// unproductive nonterminal, unknown token reference) introduced by a
    /// feature interaction beyond the presets.
    InteractionGrammarDefect,
}

impl Code {
    /// Every code, in catalog order.
    pub const ALL: [Code; 31] = [
        Code::Ll1Conflict,
        Code::DirectLeftRecursion,
        Code::LeftRecursionCycle,
        Code::UnreachableNonterminal,
        Code::UnproductiveNonterminal,
        Code::UndefinedNonterminal,
        Code::ConflictResolvableAtK,
        Code::ResidualLookaheadAmbiguity,
        Code::ShadowedTokenRule,
        Code::TokenOverlap,
        Code::SkipRuleConflict,
        Code::BadTokenPattern,
        Code::ModelAnalysisSkipped,
        Code::DeadFeature,
        Code::FalseOptionalFeature,
        Code::ContradictoryConstraint,
        Code::RedundantConstraint,
        Code::VoidModel,
        Code::UnreferencedToken,
        Code::UnknownTokenReference,
        Code::UnknownTable,
        Code::UnknownColumn,
        Code::AmbiguousColumn,
        Code::UnusedCte,
        Code::DuplicateAlias,
        Code::FamilyCompositionFailure,
        Code::InteractionTokenCollision,
        Code::InteractionLl1Conflict,
        Code::ConfigDependentDeadSurface,
        Code::SampledCoverageShortfall,
        Code::InteractionGrammarDefect,
    ];

    /// The stable identifier, e.g. `"SW001"`.
    pub fn id(self) -> &'static str {
        match self {
            Code::Ll1Conflict => "SW001",
            Code::DirectLeftRecursion => "SW002",
            Code::LeftRecursionCycle => "SW003",
            Code::UnreachableNonterminal => "SW004",
            Code::UnproductiveNonterminal => "SW005",
            Code::UndefinedNonterminal => "SW006",
            Code::ConflictResolvableAtK => "SW015",
            Code::ResidualLookaheadAmbiguity => "SW016",
            Code::ShadowedTokenRule => "SW101",
            Code::TokenOverlap => "SW102",
            Code::SkipRuleConflict => "SW103",
            Code::BadTokenPattern => "SW104",
            Code::ModelAnalysisSkipped => "SW200",
            Code::DeadFeature => "SW201",
            Code::FalseOptionalFeature => "SW202",
            Code::ContradictoryConstraint => "SW203",
            Code::RedundantConstraint => "SW204",
            Code::VoidModel => "SW205",
            Code::UnreferencedToken => "SW301",
            Code::UnknownTokenReference => "SW302",
            Code::UnknownTable => "SW401",
            Code::UnknownColumn => "SW402",
            Code::AmbiguousColumn => "SW403",
            Code::UnusedCte => "SW404",
            Code::DuplicateAlias => "SW405",
            Code::FamilyCompositionFailure => "SW501",
            Code::InteractionTokenCollision => "SW502",
            Code::InteractionLl1Conflict => "SW503",
            Code::ConfigDependentDeadSurface => "SW504",
            Code::SampledCoverageShortfall => "SW505",
            Code::InteractionGrammarDefect => "SW506",
        }
    }

    /// Reverse of [`Code::id`].
    pub fn from_id(id: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.id() == id)
    }

    /// Default severity. Chosen so that a well-formed dialect lints with
    /// zero errors: conditions the runtime tolerates (backtracking over
    /// LL(1) conflicts, priority-resolved token overlap, unreachable spare
    /// productions) are warnings or notes; conditions that make some part
    /// of the artifact unusable are errors.
    pub fn severity(self) -> Severity {
        match self {
            Code::Ll1Conflict => Severity::Warning,
            Code::DirectLeftRecursion => Severity::Error,
            Code::LeftRecursionCycle => Severity::Error,
            Code::UnreachableNonterminal => Severity::Warning,
            Code::UnproductiveNonterminal => Severity::Error,
            Code::UndefinedNonterminal => Severity::Error,
            Code::ConflictResolvableAtK => Severity::Note,
            Code::ResidualLookaheadAmbiguity => Severity::Warning,
            Code::ShadowedTokenRule => Severity::Error,
            Code::TokenOverlap => Severity::Note,
            Code::SkipRuleConflict => Severity::Warning,
            Code::BadTokenPattern => Severity::Error,
            Code::ModelAnalysisSkipped => Severity::Note,
            Code::DeadFeature => Severity::Error,
            Code::FalseOptionalFeature => Severity::Warning,
            Code::ContradictoryConstraint => Severity::Error,
            Code::RedundantConstraint => Severity::Note,
            Code::VoidModel => Severity::Error,
            Code::UnreferencedToken => Severity::Warning,
            Code::UnknownTokenReference => Severity::Error,
            Code::UnknownTable => Severity::Error,
            Code::UnknownColumn => Severity::Error,
            Code::AmbiguousColumn => Severity::Error,
            Code::UnusedCte => Severity::Warning,
            Code::DuplicateAlias => Severity::Error,
            Code::FamilyCompositionFailure => Severity::Error,
            Code::InteractionTokenCollision => Severity::Error,
            Code::InteractionLl1Conflict => Severity::Warning,
            Code::ConfigDependentDeadSurface => Severity::Warning,
            Code::SampledCoverageShortfall => Severity::Warning,
            Code::InteractionGrammarDefect => Severity::Error,
        }
    }

    /// The layer the code belongs to (encoded in its number range).
    pub fn layer(self) -> Layer {
        match self {
            Code::Ll1Conflict
            | Code::DirectLeftRecursion
            | Code::LeftRecursionCycle
            | Code::UnreachableNonterminal
            | Code::UnproductiveNonterminal
            | Code::UndefinedNonterminal
            | Code::ConflictResolvableAtK
            | Code::ResidualLookaheadAmbiguity => Layer::Grammar,
            Code::ShadowedTokenRule
            | Code::TokenOverlap
            | Code::SkipRuleConflict
            | Code::BadTokenPattern => Layer::Lexer,
            Code::ModelAnalysisSkipped
            | Code::DeadFeature
            | Code::FalseOptionalFeature
            | Code::ContradictoryConstraint
            | Code::RedundantConstraint
            | Code::VoidModel => Layer::FeatureModel,
            Code::UnreferencedToken | Code::UnknownTokenReference => Layer::Cross,
            Code::UnknownTable
            | Code::UnknownColumn
            | Code::AmbiguousColumn
            | Code::UnusedCte
            | Code::DuplicateAlias => Layer::Semantic,
            Code::FamilyCompositionFailure
            | Code::InteractionTokenCollision
            | Code::InteractionLl1Conflict
            | Code::ConfigDependentDeadSurface
            | Code::SampledCoverageShortfall
            | Code::InteractionGrammarDefect => Layer::ProductLine,
        }
    }

    /// One-line description for the catalog (`sqlweave lint --codes`, docs).
    pub fn title(self) -> &'static str {
        match self {
            Code::Ll1Conflict => "LL(1) prediction conflict",
            Code::DirectLeftRecursion => "direct left recursion",
            Code::LeftRecursionCycle => "indirect left-recursive cycle",
            Code::UnreachableNonterminal => "unreachable nonterminal",
            Code::UnproductiveNonterminal => "unproductive nonterminal",
            Code::UndefinedNonterminal => "undefined nonterminal reference",
            Code::ConflictResolvableAtK => "conflict resolvable with bounded lookahead",
            Code::ResidualLookaheadAmbiguity => "residual lookahead ambiguity with witness",
            Code::ShadowedTokenRule => "token rule fully shadowed",
            Code::TokenOverlap => "token rules overlap",
            Code::SkipRuleConflict => "skip rule collides with another rule",
            Code::BadTokenPattern => "token pattern failed to compile",
            Code::ModelAnalysisSkipped => "feature-model analysis skipped",
            Code::DeadFeature => "dead feature",
            Code::FalseOptionalFeature => "false-optional feature",
            Code::ContradictoryConstraint => "contradictory cross-tree constraint",
            Code::RedundantConstraint => "redundant cross-tree constraint",
            Code::VoidModel => "void feature model",
            Code::UnreferencedToken => "token never referenced by the grammar",
            Code::UnknownTokenReference => "reference to a token absent from the set",
            Code::UnknownTable => "unknown table reference",
            Code::UnknownColumn => "unknown column reference",
            Code::AmbiguousColumn => "ambiguous column reference",
            Code::UnusedCte => "unused common table expression",
            Code::DuplicateAlias => "duplicate relation alias in scope",
            Code::FamilyCompositionFailure => "valid configuration fails to compose",
            Code::InteractionTokenCollision => "interaction-induced token collision",
            Code::InteractionLl1Conflict => "interaction-induced LL(1) conflict",
            Code::ConfigDependentDeadSurface => "config-dependent dead grammar surface",
            Code::SampledCoverageShortfall => "sampled certification coverage shortfall",
            Code::InteractionGrammarDefect => "interaction-induced grammar defect",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: a code anchored at a named site with a rendered message.
///
/// Sites are structural, not positional — the product line composes
/// grammars from registered feature artifacts rather than source files, so
/// the natural "location" is the named item: a production, a token rule, a
/// feature within a diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (determines severity and layer).
    pub code: Code,
    /// The named item the diagnostic anchors to, e.g.
    /// ``production `query_specification` `` or ``token `IDENT` ``.
    pub site: String,
    /// Human-readable explanation.
    pub message: String,
    /// Byte span `(start, end)` into the linted source, when the diagnostic
    /// anchors to concrete text (semantic rules do; structural lints over
    /// composed artifacts have no source and leave this `None`).
    pub span: Option<(usize, usize)>,
}

impl Diagnostic {
    /// Construct a diagnostic with no source span.
    pub fn new(code: Code, site: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            site: site.into(),
            message: message.into(),
            span: None,
        }
    }

    /// Attach a byte span into the linted source.
    pub fn with_span(mut self, start: usize, end: usize) -> Self {
        self.span = Some((start, end));
        self
    }

    /// Severity, from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Layer, from the code.
    pub fn layer(&self) -> Layer {
        self.code.layer()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.code,
            self.site,
            self.message
        )
    }
}

/// All diagnostics for one lint subject (a dialect, a feature selection, a
/// fixture pair, or the diagram catalog).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// What was linted, e.g. a dialect name.
    pub subject: String,
    /// Findings, sorted by code then site.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// New empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Append diagnostics and restore sorted order.
    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(diags);
        self.diagnostics
            .sort_by(|a, b| (a.code, &a.site).cmp(&(b.code, &b.site)));
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// `true` if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Diagnostics with a given code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Human-readable rendering: one line per diagnostic plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("lint: {}\n", self.subject));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out.push_str(&format!(
            "  {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        ));
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_ids_are_unique_and_parse_back() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.id()), "duplicate id {}", c.id());
            assert_eq!(Code::from_id(c.id()), Some(c));
        }
        assert_eq!(Code::from_id("SW999"), None);
    }

    #[test]
    fn code_ranges_match_layers() {
        for c in Code::ALL {
            let hundreds = c.id()[2..].parse::<u32>().unwrap() / 100;
            let expect = match hundreds {
                0 => Layer::Grammar,
                1 => Layer::Lexer,
                2 => Layer::FeatureModel,
                3 => Layer::Cross,
                4 => Layer::Semantic,
                5 => Layer::ProductLine,
                _ => panic!("unexpected code range {}", c.id()),
            };
            assert_eq!(c.layer(), expect, "{}", c.id());
        }
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut r = LintReport::new("demo");
        r.extend([
            Diagnostic::new(Code::DirectLeftRecursion, "production `e`", "e -> e"),
            Diagnostic::new(Code::Ll1Conflict, "production `s`", "conflict"),
        ]);
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        // sorted by code: SW001 before SW002
        assert_eq!(r.diagnostics[0].code, Code::Ll1Conflict);
        let text = r.render_text();
        assert!(text.contains("error[SW002] production `e`: e -> e"), "{text}");
        assert!(text.contains("1 error(s), 1 warning(s), 0 note(s)"), "{text}");
    }
}

//! The end-to-end flow: feature model × configuration → composed grammar →
//! parser.
//!
//! This is the two-stage process of the paper's Section 3: the first stage
//! (decomposition) produced the model and the registry; [`Pipeline`] runs
//! the second stage — validate the feature instance description, derive the
//! composition sequence, compose sub-grammars and token files, and generate
//! the parser.

use crate::compose::{compose_grammars, CompositionTrace};
use crate::error::PipelineError;
use crate::registry::{FeatureArtifact, FeatureRegistry};
use crate::sequence::composition_sequence;
use sqlweave_feature_model::{Configuration, FeatureModel};
use sqlweave_grammar::ir::Grammar;
use sqlweave_lexgen::tokenset::TokenSet;
use sqlweave_parser_rt::engine::{EngineMode, Parser};

/// A composition result, ready to become a parser.
#[derive(Debug)]
pub struct Composed {
    /// Name of the composed dialect (pipeline name).
    pub name: String,
    /// The composed grammar.
    pub grammar: Grammar,
    /// The composed token set.
    pub tokens: TokenSet,
    /// Step-by-step record of rule applications.
    pub trace: CompositionTrace,
    /// The composition sequence that was used.
    pub sequence: Vec<String>,
}

impl Composed {
    /// Build the default (backtracking) parser.
    pub fn into_parser(self) -> Result<Parser, PipelineError> {
        Ok(Parser::new(self.grammar, &self.tokens)?)
    }

    /// Build a parser with an explicit engine mode.
    pub fn into_parser_with_mode(self, mode: EngineMode) -> Result<Parser, PipelineError> {
        Ok(Parser::new(self.grammar, &self.tokens)?.with_mode(mode))
    }

    /// Build a parser without consuming the composition record.
    pub fn parser(&self) -> Result<Parser, PipelineError> {
        Ok(Parser::new(self.grammar.clone(), &self.tokens)?)
    }
}

/// A reusable model + registry pair with a designated start symbol.
pub struct Pipeline<'a> {
    model: &'a FeatureModel,
    registry: &'a FeatureRegistry,
    start: String,
    name: String,
}

impl<'a> Pipeline<'a> {
    /// Create a pipeline whose composed grammars start at the nonterminal
    /// named after the model root.
    pub fn new(model: &'a FeatureModel, registry: &'a FeatureRegistry) -> Self {
        Pipeline {
            start: model.name().to_string(),
            name: model.name().to_string(),
            model,
            registry,
        }
    }

    /// Override the start symbol of composed grammars.
    pub fn with_start(mut self, start: &str) -> Self {
        self.start = start.to_string();
        self
    }

    /// Name composed dialects (defaults to the model name).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The feature model driving this pipeline.
    pub fn model(&self) -> &FeatureModel {
        self.model
    }

    /// The artifact registry.
    pub fn registry(&self) -> &FeatureRegistry {
        self.registry
    }

    /// Validate, sequence, and compose one configuration.
    pub fn compose(&self, config: &Configuration) -> Result<Composed, PipelineError> {
        self.model.validate(config)?;
        let sequence = composition_sequence(self.model, config, self.registry)?;
        let artifacts: Vec<&FeatureArtifact> = sequence
            .iter()
            .filter_map(|f| self.registry.get(f))
            .collect();
        let (grammar, tokens, trace) =
            compose_grammars(&self.name, &self.start, &artifacts)?;
        Ok(Composed {
            name: self.name.clone(),
            grammar,
            tokens,
            trace,
            sequence,
        })
    }

    /// Convenience: compose and build the default parser in one step.
    pub fn parser_for(&self, config: &Configuration) -> Result<Parser, PipelineError> {
        self.compose(config)?.into_parser()
    }

    /// Convenience: auto-complete a partial selection, then compose and
    /// build. Mirrors the user flow the paper sketches ("when a user
    /// selects different features, the required parser is created").
    pub fn parser_for_selection<I, S>(&self, features: I) -> Result<Parser, PipelineError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let partial = Configuration::of(features);
        let config = self.model.complete(&partial).map_err(PipelineError::InvalidConfiguration)?;
        self.parser_for(&config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_feature_model::ModelBuilder;

    /// The paper's worked example: Figures 1 + 2 wired to sub-grammars.
    fn setup() -> (FeatureModel, FeatureRegistry) {
        let mut b = ModelBuilder::new("query_specification");
        let root = b.root();
        let sq = b.optional(root, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let sl = b.mandatory(root, "select_list");
        b.mandatory(sl, "select_sublist");
        let te = b.mandatory(root, "table_expression");
        b.mandatory(te, "from");
        b.optional(te, "where");
        b.optional(te, "group_by");
        b.optional(te, "having");
        b.requires("having", "group_by");
        let model = b.build().unwrap();

        let mut r = FeatureRegistry::new();
        r.register(
            "query_specification",
            "grammar query_specification;
             query_specification : SELECT select_list table_expression ;",
            "tokens query_specification; SELECT = kw;",
        )
        .unwrap();
        r.register(
            "set_quantifier",
            "grammar set_quantifier;
             query_specification : SELECT set_quantifier? select_list table_expression ;
             set_quantifier : ;",
            "",
        )
        .unwrap();
        r.register(
            "all",
            "grammar all; set_quantifier : ALL ;",
            "tokens all; ALL = kw;",
        )
        .unwrap();
        r.register(
            "distinct",
            "grammar distinct; set_quantifier : DISTINCT ;",
            "tokens distinct; DISTINCT = kw;",
        )
        .unwrap();
        r.register(
            "select_list",
            "grammar select_list; select_list : select_sublist ;",
            "",
        )
        .unwrap();
        r.register(
            "select_sublist",
            "grammar select_sublist; select_sublist : IDENT ;",
            "tokens select_sublist; IDENT = /[a-z][a-z0-9_]*/; WS = skip /[ \\t\\r\\n]+/;",
        )
        .unwrap();
        r.register(
            "table_expression",
            "grammar table_expression; table_expression : from_clause ;",
            "",
        )
        .unwrap();
        r.register(
            "from",
            "grammar from; from_clause : FROM IDENT ;",
            "tokens from; FROM = kw;",
        )
        .unwrap();
        r.register(
            "where",
            "grammar where;
             table_expression : from_clause where_clause? ;
             where_clause : WHERE IDENT EQ IDENT ;",
            "tokens where; WHERE = kw; EQ = \"=\";",
        )
        .unwrap();
        r.register(
            "group_by",
            "grammar group_by;
             table_expression : from_clause where_clause? group_by_clause? ;
             group_by_clause : GROUP BY IDENT ;",
            "tokens group_by; GROUP = kw; BY = kw;",
        )
        .unwrap();
        r.register(
            "having",
            "grammar having;
             table_expression : from_clause where_clause? group_by_clause? having_clause? ;
             having_clause : HAVING IDENT EQ IDENT ;",
            "tokens having; HAVING = kw;",
        )
        .unwrap();
        (model, r)
    }

    #[test]
    fn minimal_instance_parses_exactly_its_features() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        let config = Configuration::of([
            "query_specification",
            "select_list",
            "select_sublist",
            "table_expression",
            "from",
        ]);
        let parser = pipeline.parser_for(&config).unwrap();
        assert!(parser.parse("SELECT a FROM t").is_ok());
        // Where was not selected: must be rejected.
        assert!(parser.parse("SELECT a FROM t WHERE a = b").is_err());
        // Set quantifier was not selected.
        assert!(parser.parse("SELECT DISTINCT a FROM t").is_err());
    }

    #[test]
    fn extended_instance_accepts_more() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        let config = Configuration::of([
            "query_specification",
            "set_quantifier",
            "distinct",
            "select_list",
            "select_sublist",
            "table_expression",
            "from",
            "where",
        ]);
        let parser = pipeline.parser_for(&config).unwrap();
        assert!(parser.parse("SELECT a FROM t").is_ok());
        assert!(parser.parse("SELECT DISTINCT a FROM t WHERE a = b").is_ok());
        // ALL was not selected (xor picked distinct).
        assert!(parser.parse("SELECT ALL a FROM t").is_err());
    }

    #[test]
    fn invalid_configuration_rejected() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        // having requires group_by
        let config = Configuration::of([
            "query_specification",
            "select_list",
            "select_sublist",
            "table_expression",
            "from",
            "having",
        ]);
        assert!(matches!(
            pipeline.compose(&config),
            Err(PipelineError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn selection_autocompletes() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        // Just ask for `where`; completion pulls in the skeleton.
        let parser = pipeline.parser_for_selection(["where"]).unwrap();
        assert!(parser.parse("SELECT a FROM t WHERE x = y").is_ok());
    }

    #[test]
    fn having_composes_after_group_by() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        let config = Configuration::of([
            "query_specification",
            "select_list",
            "select_sublist",
            "table_expression",
            "from",
            "where",
            "group_by",
            "having",
        ]);
        let composed = pipeline.compose(&config).unwrap();
        let gb = composed.sequence.iter().position(|f| f == "group_by").unwrap();
        let hv = composed.sequence.iter().position(|f| f == "having").unwrap();
        assert!(gb < hv);
        let parser = composed.into_parser().unwrap();
        assert!(parser
            .parse("SELECT a FROM t WHERE a = b GROUP BY c HAVING d = e")
            .is_ok());
        // HAVING without GROUP BY is syntactically allowed by this grammar
        // (both clauses optional); the *feature* constraint is what forbids
        // selecting having without group_by.
        assert!(parser.parse("SELECT a FROM t HAVING d = e").is_ok());
    }

    #[test]
    fn trace_describes_replacements() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        let config = Configuration::of([
            "query_specification",
            "set_quantifier",
            "all",
            "select_list",
            "select_sublist",
            "table_expression",
            "from",
        ]);
        let composed = pipeline.compose(&config).unwrap();
        // set_quantifier? merged into the base production (R4), and the
        // `all` leaf replaced the epsilon set_quantifier body (R1).
        assert!(composed.trace.count("R4") >= 1, "\n{}", composed.trace.table());
        assert!(composed.trace.count("R1") >= 1, "\n{}", composed.trace.table());
    }

    #[test]
    fn composed_grammar_is_closed() {
        let (model, registry) = setup();
        let pipeline = Pipeline::new(&model, &registry);
        let config = model.complete(&Configuration::of(["where", "distinct"])).unwrap();
        let composed = pipeline.compose(&config).unwrap();
        assert!(
            composed.grammar.undefined_nonterminals().is_empty(),
            "undefined: {:?}",
            composed.grammar.undefined_nonterminals()
        );
    }
}

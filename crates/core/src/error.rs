//! Error types for composition and the end-to-end pipeline.

use sqlweave_feature_model::ValidationError;
use sqlweave_grammar::dsl::DslError;
use sqlweave_lexgen::tokenset::TokenSetError;
use sqlweave_parser_rt::engine::BuildError;
use std::fmt;

/// Error during grammar/token composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// Two features define the same token differently.
    TokenConflict {
        /// The conflicting token name.
        token: String,
        /// Feature that first defined it.
        first_feature: String,
        /// Feature whose definition clashed.
        second_feature: String,
        /// The underlying token-set error.
        detail: String,
    },
    /// Start-symbol resolution failed: no composed feature defines it.
    NoStartSymbol(String),
    /// Nothing was composed (empty sequence).
    EmptyComposition,
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::TokenConflict {
                token,
                first_feature,
                second_feature,
                detail,
            } => write!(
                f,
                "token `{token}` defined incompatibly by features `{first_feature}` and `{second_feature}`: {detail}"
            ),
            ComposeError::NoStartSymbol(s) => {
                write!(f, "no composed sub-grammar defines the start symbol `{s}`")
            }
            ComposeError::EmptyComposition => write!(f, "no features with grammars selected"),
        }
    }
}

impl std::error::Error for ComposeError {}

/// Error registering a feature artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The grammar source failed to parse.
    BadGrammar { feature: String, error: DslError },
    /// The token-file source failed to parse.
    BadTokens { feature: String, error: DslError },
    /// The token set rejected a rule.
    BadTokenRule { feature: String, error: TokenSetError },
    /// An artifact with this feature name is already registered with
    /// different content.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::BadGrammar { feature, error } => {
                write!(f, "feature `{feature}`: grammar error: {error}")
            }
            RegistryError::BadTokens { feature, error } => {
                write!(f, "feature `{feature}`: token file error: {error}")
            }
            RegistryError::BadTokenRule { feature, error } => {
                write!(f, "feature `{feature}`: token rule error: {error}")
            }
            RegistryError::Duplicate(feature) => {
                write!(f, "feature `{feature}` registered twice with different artifacts")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Error deriving a composition sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequenceError {
    /// `after`/`requires` edges form a cycle among the listed features.
    Cycle(Vec<String>),
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::Cycle(names) => {
                write!(f, "composition-order cycle among: {}", names.join(", "))
            }
        }
    }
}

impl std::error::Error for SequenceError {}

/// End-to-end pipeline error.
#[derive(Debug)]
pub enum PipelineError {
    /// The configuration is invalid for the feature model.
    InvalidConfiguration(ValidationError),
    /// Composition-order derivation failed.
    Sequence(SequenceError),
    /// Grammar/token composition failed.
    Compose(ComposeError),
    /// Parser construction failed (open grammar, left recursion, …).
    Build(BuildError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidConfiguration(e) => write!(f, "{e}"),
            PipelineError::Sequence(e) => write!(f, "{e}"),
            PipelineError::Compose(e) => write!(f, "{e}"),
            PipelineError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ValidationError> for PipelineError {
    fn from(e: ValidationError) -> Self {
        PipelineError::InvalidConfiguration(e)
    }
}

impl From<SequenceError> for PipelineError {
    fn from(e: SequenceError) -> Self {
        PipelineError::Sequence(e)
    }
}

impl From<ComposeError> for PipelineError {
    fn from(e: ComposeError) -> Self {
        PipelineError::Compose(e)
    }
}

impl From<BuildError> for PipelineError {
    fn from(e: BuildError) -> Self {
        PipelineError::Build(e)
    }
}

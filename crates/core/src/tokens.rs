//! Token-file composition with per-feature provenance.
//!
//! The paper keeps "a file containing various tokens used in the grammar"
//! next to every sub-grammar and composes the selected files into one token
//! file. [`TokenComposer`] folds [`TokenSet`]s feature by feature and, on a
//! conflicting redefinition, reports *which two features* disagree.

use crate::error::ComposeError;
use sqlweave_lexgen::tokenset::TokenSet;
use std::collections::HashMap;

/// Incremental token-file composer.
#[derive(Debug, Default)]
pub struct TokenComposer {
    set: TokenSet,
    provenance: HashMap<String, String>,
}

impl TokenComposer {
    /// Empty composer.
    pub fn new() -> Self {
        TokenComposer::default()
    }

    /// Merge one feature's token file.
    pub fn add(&mut self, feature: &str, tokens: &TokenSet) -> Result<(), ComposeError> {
        for rule in tokens.rules() {
            match self.set.add(rule.clone()) {
                Ok(()) => {
                    self.provenance
                        .entry(rule.name.clone())
                        .or_insert_with(|| feature.to_string());
                }
                Err(e) => {
                    return Err(ComposeError::TokenConflict {
                        token: rule.name.clone(),
                        first_feature: self
                            .provenance
                            .get(&rule.name)
                            .cloned()
                            .unwrap_or_else(|| "<unknown>".to_string()),
                        second_feature: feature.to_string(),
                        detail: e.to_string(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The feature that first contributed a token.
    pub fn provenance(&self, token: &str) -> Option<&str> {
        self.provenance.get(token).map(String::as_str)
    }

    /// Finish, yielding the composed token set.
    pub fn finish(self) -> TokenSet {
        self.set
    }

    /// Borrow the set composed so far.
    pub fn current(&self) -> &TokenSet {
        &self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::parse_tokens;

    #[test]
    fn merges_disjoint_files() {
        let a = parse_tokens(r#"tokens a; SELECT = kw; IDENT = /[a-z]+/;"#).unwrap();
        let b = parse_tokens(r#"tokens b; WHERE = kw; EQ = "=";"#).unwrap();
        let mut c = TokenComposer::new();
        c.add("query_specification", &a).unwrap();
        c.add("where", &b).unwrap();
        let set = c.finish();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn shared_identical_tokens_are_fine() {
        let a = parse_tokens(r#"tokens a; IDENT = /[a-z]+/;"#).unwrap();
        let b = parse_tokens(r#"tokens b; IDENT = /[a-z]+/;"#).unwrap();
        let mut c = TokenComposer::new();
        c.add("f1", &a).unwrap();
        c.add("f2", &b).unwrap();
        assert_eq!(c.finish().len(), 1);
    }

    #[test]
    fn conflict_names_both_features() {
        let a = parse_tokens(r#"tokens a; IDENT = /[a-z]+/;"#).unwrap();
        let b = parse_tokens(r#"tokens b; IDENT = /[A-Za-z]+/;"#).unwrap();
        let mut c = TokenComposer::new();
        c.add("base", &a).unwrap();
        let err = c.add("extension", &b).unwrap_err();
        match err {
            ComposeError::TokenConflict {
                token,
                first_feature,
                second_feature,
                ..
            } => {
                assert_eq!(token, "IDENT");
                assert_eq!(first_feature, "base");
                assert_eq!(second_feature, "extension");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn provenance_tracks_first_definer() {
        let a = parse_tokens(r#"tokens a; SELECT = kw;"#).unwrap();
        let mut c = TokenComposer::new();
        c.add("query_specification", &a).unwrap();
        c.add("another", &a).unwrap();
        assert_eq!(c.provenance("SELECT"), Some("query_specification"));
    }
}

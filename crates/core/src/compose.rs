//! Grammar-level composition over an ordered sequence of feature artifacts.

use crate::error::ComposeError;
use crate::registry::FeatureArtifact;
use crate::rules::{compose_into, ComposeDecision};
use crate::tokens::TokenComposer;
use sqlweave_grammar::ir::{Grammar, Production};
use sqlweave_lexgen::tokenset::TokenSet;
use std::fmt;

/// One composition step, for inspection and the Experiment T2 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Feature whose sub-grammar contributed the alternative.
    pub feature: String,
    /// Production (nonterminal) affected.
    pub production: String,
    /// The alternative, rendered as DSL text.
    pub alternative: String,
    /// Which rule fired.
    pub decision: ComposeDecision,
}

impl TraceEntry {
    /// Render one table line with explicit column widths for the feature
    /// and production columns (used by [`CompositionTrace::table`] to align
    /// the whole table without truncating long names).
    fn render(&self, feature_width: usize, production_width: usize) -> String {
        format!(
            "[{:>2}] {:<fw$} {:<pw$} {}",
            self.decision.tag(),
            self.feature,
            self.production,
            self.alternative,
            fw = feature_width,
            pw = production_width,
        )
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(24, 28))
    }
}

/// Full record of a composition run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompositionTrace {
    /// Steps in composition order.
    pub entries: Vec<TraceEntry>,
}

impl CompositionTrace {
    /// Count of steps where a given rule fired.
    pub fn count(&self, decision_tag: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.decision.tag() == decision_tag)
            .count()
    }

    /// Render as an aligned table (one line per step). Column widths adapt
    /// to the longest feature and production names so nothing is truncated
    /// or misaligned, whatever the dialect.
    pub fn table(&self) -> String {
        let fw = self.entries.iter().map(|e| e.feature.len()).max().unwrap_or(0);
        let pw = self
            .entries
            .iter()
            .map(|e| e.production.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.render(fw, pw));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CompositionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table())
    }
}

/// Compose the grammars and token files of `artifacts`, in order, into one
/// grammar named `name` whose start symbol is `start`.
///
/// Grammar rule composition follows R1–R3 per alternative (see
/// [`crate::rules`]); token files are merged with provenance-aware conflict
/// detection. The start symbol must be defined by some composed sub-grammar.
pub fn compose_grammars(
    name: &str,
    start: &str,
    artifacts: &[&FeatureArtifact],
) -> Result<(Grammar, TokenSet, CompositionTrace), ComposeError> {
    if artifacts.is_empty() {
        return Err(ComposeError::EmptyComposition);
    }
    let mut grammar = Grammar::new(name, start);
    let mut tokens = TokenComposer::new();
    let mut trace = CompositionTrace::default();

    for artifact in artifacts {
        tokens.add(&artifact.feature, &artifact.tokens)?;
        let Some(sub) = &artifact.grammar else { continue };
        for prod in sub.productions() {
            for alt in &prod.alternatives {
                let rendered = alt.to_string();
                let decision = match grammar.production_mut(&prod.name) {
                    Some(existing) => compose_into(&mut existing.alternatives, alt.clone()),
                    None => {
                        grammar.add_production(Production {
                            name: prod.name.clone(),
                            alternatives: vec![alt.clone()],
                        });
                        ComposeDecision::Appended(0)
                    }
                };
                trace.entries.push(TraceEntry {
                    feature: artifact.feature.clone(),
                    production: prod.name.clone(),
                    alternative: rendered,
                    decision,
                });
            }
        }
    }

    if grammar.production(start).is_none() {
        return Err(ComposeError::NoStartSymbol(start.to_string()));
    }
    Ok((grammar, tokens.finish(), trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FeatureRegistry;

    /// Register a fixture feature, naming it in the failure message instead
    /// of surfacing a bare `unwrap` panic.
    fn must_register(r: &mut FeatureRegistry, name: &str, grammar: &str, tokens: &str) {
        if let Err(e) = r.register(name, grammar, tokens) {
            panic!("fixture feature `{name}` failed to register: {e}");
        }
    }

    fn registry() -> FeatureRegistry {
        let mut r = FeatureRegistry::new();
        // The paper's worked example, Section 3.2: Query Specification with
        // optional Set Quantifier and Table Expression with optional Where.
        must_register(
            &mut r,
            "query_specification",
            "grammar query_specification;
             query_specification : SELECT select_list table_expression ;",
            "tokens query_specification; SELECT = kw;",
        );
        must_register(
            &mut r,
            "set_quantifier",
            "grammar set_quantifier;
             query_specification : SELECT set_quantifier? select_list table_expression ;
             set_quantifier : DISTINCT | ALL ;",
            "tokens set_quantifier; DISTINCT = kw; ALL = kw;",
        );
        must_register(
            &mut r,
            "select_list",
            "grammar select_list;
             select_list : select_sublist ;
             select_sublist : IDENT ;",
            "tokens select_list; IDENT = /[a-z][a-z0-9_]*/; WS = skip /[ \\t\\r\\n]+/;",
        );
        must_register(
            &mut r,
            "table_expression",
            "grammar table_expression;
             table_expression : from_clause ;
             from_clause : FROM IDENT ;",
            "tokens table_expression; FROM = kw;",
        );
        must_register(
            &mut r,
            "where",
            "grammar where;
             table_expression : from_clause where_clause? ;
             where_clause : WHERE IDENT EQ IDENT ;",
            "tokens where; WHERE = kw; EQ = \"=\";",
        );
        r
    }

    fn artifacts<'a>(r: &'a FeatureRegistry, names: &[&str]) -> Vec<&'a FeatureArtifact> {
        names.iter().map(|n| r.get(n).unwrap()).collect()
    }

    #[test]
    fn paper_worked_example_composes() {
        let r = registry();
        let arts = artifacts(
            &r,
            &["query_specification", "select_list", "table_expression"],
        );
        let (g, t, _) = compose_grammars("dialect", "query_specification", &arts).unwrap();
        // query_specification, select_list, select_sublist,
        // table_expression, from_clause
        assert_eq!(g.productions().len(), 5);
        assert!(g.undefined_nonterminals().is_empty());
        assert_eq!(t.len(), 4); // SELECT IDENT WS FROM
    }

    #[test]
    fn optional_feature_replaces_base_production() {
        let r = registry();
        let arts = artifacts(
            &r,
            &[
                "query_specification",
                "set_quantifier",
                "select_list",
                "table_expression",
                "where",
            ],
        );
        let (g, _, trace) = compose_grammars("dialect", "query_specification", &arts).unwrap();
        // query_specification has ONE alternative: the set_quantifier? form.
        let qs = g.production("query_specification").unwrap();
        assert_eq!(qs.alternatives.len(), 1);
        assert!(qs.alternatives[0].to_string().contains("set_quantifier?"));
        // table_expression likewise extended with where_clause?.
        let te = g.production("table_expression").unwrap();
        assert_eq!(te.alternatives.len(), 1);
        assert!(te.alternatives[0].to_string().contains("where_clause?"));
        // Trace saw two R4 optional merges (set_quantifier?, where_clause?).
        assert_eq!(trace.count("R4"), 2, "\n{}", trace.table());
    }

    #[test]
    fn composition_is_idempotent_per_feature() {
        let r = registry();
        let arts = artifacts(&r, &["query_specification", "query_specification"]);
        let (g, _, trace) =
            compose_grammars("dialect", "query_specification", &arts).unwrap();
        assert_eq!(
            g.production("query_specification").unwrap().alternatives.len(),
            1
        );
        assert_eq!(trace.count("="), 1);
    }

    #[test]
    fn missing_start_symbol_rejected() {
        let r = registry();
        let arts = artifacts(&r, &["select_list"]);
        assert!(matches!(
            compose_grammars("dialect", "query_specification", &arts),
            Err(ComposeError::NoStartSymbol(_))
        ));
    }

    #[test]
    fn empty_composition_rejected() {
        assert!(matches!(
            compose_grammars("dialect", "x", &[]),
            Err(ComposeError::EmptyComposition)
        ));
    }

    #[test]
    fn marker_features_contribute_nothing() {
        let mut r = registry();
        r.register("marker", "", "").unwrap();
        let arts = artifacts(&r, &["query_specification", "marker", "select_list", "table_expression"]);
        let (g, _, trace) = compose_grammars("d", "query_specification", &arts).unwrap();
        assert!(trace.entries.iter().all(|e| e.feature != "marker"));
        assert_eq!(g.productions().len(), 5);
    }

    #[test]
    fn token_conflict_across_features_reported() {
        let mut r = FeatureRegistry::new();
        r.register("a", "grammar a; x : IDENT ;", "tokens a; IDENT = /[a-z]+/;")
            .unwrap();
        r.register("b", "grammar b; y : IDENT ;", "tokens b; IDENT = /[A-Z]+/;")
            .unwrap();
        let arts = artifacts(&r, &["a", "b"]);
        let err = compose_grammars("d", "x", &arts).unwrap_err();
        assert!(matches!(err, ComposeError::TokenConflict { .. }));
    }

    #[test]
    fn alternatives_append_for_or_features() {
        // Two leaf features contribute different select_list shapes.
        let mut r = FeatureRegistry::new();
        r.register("sublist", "grammar s; select_list : IDENT ;", "").unwrap();
        r.register("asterisk", "grammar a; select_list : STAR ;", "").unwrap();
        let arts = artifacts(&r, &["sublist", "asterisk"]);
        let (g, _, trace) = compose_grammars("d", "select_list", &arts).unwrap();
        assert_eq!(g.production("select_list").unwrap().alternatives.len(), 2);
        // both steps are appends: the first creates the production, the
        // second goes through compose_into
        assert_eq!(trace.count("R3"), 2);
        assert_eq!(
            trace.entries.last().unwrap().decision,
            ComposeDecision::Appended(1)
        );
    }

    #[test]
    fn trace_table_renders() {
        let r = registry();
        let arts = artifacts(&r, &["query_specification", "set_quantifier"]);
        let (_, _, trace) = compose_grammars("d", "query_specification", &arts).unwrap();
        let table = trace.table();
        assert!(table.contains("set_quantifier"), "{table}");
        assert!(table.contains("R4"), "{table}");
        // Display renders the same adaptive table.
        assert_eq!(trace.to_string(), table);
        // Columns adapt to the longest feature name: every line's feature
        // column is padded to `set_quantifier`'s width plus "[xx] ".
        let fw = "query_specification".len();
        for line in table.lines() {
            assert!(line.len() > 5 + fw, "short line in table:\n{table}");
            assert_eq!(line.as_bytes()[5 + fw], b' ', "misaligned:\n{table}");
        }
    }
}

//! `sqlweave-core` — the paper's primary contribution: composing
//! per-feature LL(k) sub-grammars and token files into a single grammar,
//! and generating a parser that accepts *exactly* the selected features.
//!
//! The composition rules implemented in [`rules`] are the ones Section 3.2
//! of *"Generating Highly Customizable SQL Parsers"* specifies:
//!
//! | Rule | Paper wording | Example |
//! |------|---------------|---------|
//! | R1 (replace) | "If the new production contains the old one, the old production is replaced with the new production" | `A: B` ∘ `A: BC` ⇒ `A: BC` |
//! | R2 (retain) | "If the new production is contained in the old one, the old production is left unmodified" | `A: BC` ∘ `A: B` ⇒ `A: BC` |
//! | R3 (append) | "If the new and old production rules defer, they are appended as choices" | `A: B` ∘ `A: C` ⇒ `A: B \| C` |
//! | R4 (optional ordering) | optionals compose after the corresponding non-optional | `A: B` ∘ `A: B[C]` ⇒ `A: B[C]` |
//! | R5 (sublist first) | sublists compose ahead of complex lists | `A: B` ∘ `A: B [, B…]` ⇒ `A: B [, B…]` |
//! | R6 (constraints) | requires/excludes induce the composition sequence | handled by [`sequence`] |
//!
//! Containment is formalized as *contiguous-subsequence containment* over
//! term sequences, which subsumes R4 and R5 as corollaries of R1/R2 (the
//! paper's examples are all prefix-shaped; see `DESIGN.md` §6).
//!
//! Modules:
//! * [`rules`] — alternative-level composition with a decision trace.
//! * [`compose`] — grammar-level composition over ordered artifacts.
//! * [`tokens`] — token-file composition with provenance-aware conflicts.
//! * [`registry`] — feature → (sub-grammar, token file) binding.
//! * [`sequence`] — composition-sequence derivation from the feature model.
//! * [`pipeline`] — the end-to-end `FeatureModel × Configuration → Parser`
//!   flow.

pub mod compose;
pub mod error;
pub mod pipeline;
pub mod registry;
pub mod rules;
pub mod sequence;
pub mod tokens;

pub use compose::{compose_grammars, CompositionTrace, TraceEntry};
pub use error::{ComposeError, PipelineError};
pub use pipeline::{Composed, Pipeline};
pub use registry::{FeatureArtifact, FeatureRegistry};
pub use rules::{compose_into, ComposeDecision};

//! Deriving the composition sequence (the paper's R6).
//!
//! "A feature may require other features for correct composition. … We use
//! the notion of composition sequence that indicates how various features
//! are included or excluded."
//!
//! The sequence is the model's pre-order over selected features — parents
//! (base syntax) before children (refinements) — refined by two kinds of
//! explicit edges, each forcing *X before Y*:
//!
//! 1. `requires(Y, X)` constraints from the feature model, and
//! 2. `after` edges on registry artifacts.
//!
//! The result is a stable topological order (ties broken by model
//! pre-order); cycles are reported as errors.

use crate::error::SequenceError;
use crate::registry::FeatureRegistry;
use sqlweave_feature_model::{Configuration, Constraint, FeatureModel};
use std::collections::HashMap;

/// Compute the composition sequence for the selected features.
///
/// Only features present in the model are sequenced (the configuration is
/// assumed validated). Features without registry artifacts still appear in
/// the sequence — they are markers and compose nothing.
pub fn composition_sequence(
    model: &FeatureModel,
    config: &Configuration,
    registry: &FeatureRegistry,
) -> Result<Vec<String>, SequenceError> {
    // Selected features in model pre-order (ids ascend in pre-order).
    let selected: Vec<String> = model
        .iter()
        .filter(|(_, f)| config.contains(&f.name))
        .map(|(_, f)| f.name.clone())
        .collect();
    let index: HashMap<&str, usize> = selected
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // Edges: from -> to means "from composes before to".
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); selected.len()];
    let add_edge = |before: &str, after: &str, preds: &mut Vec<Vec<usize>>| {
        if let (Some(&b), Some(&a)) = (index.get(before), index.get(after)) {
            if b != a && !preds[a].contains(&b) {
                preds[a].push(b);
            }
        }
    };
    for c in model.constraints() {
        if let Constraint::Requires(from, to) = c {
            // the required feature composes first
            add_edge(
                &model.feature(*to).name,
                &model.feature(*from).name,
                &mut preds,
            );
        }
    }
    for name in &selected {
        for before in registry.order_edges(name) {
            add_edge(before, name, &mut preds);
        }
    }

    // Kahn's algorithm with model pre-order tie-breaking (indices ascend in
    // pre-order, so picking the smallest ready index is stable).
    let n = selected.len();
    let mut remaining_preds: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (node, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(node);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    while !ready.is_empty() {
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest from the end
        let node = ready.pop().unwrap();
        order.push(node);
        for &s in &succs[node] {
            remaining_preds[s] -= 1;
            if remaining_preds[s] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != n {
        let stuck: Vec<String> = (0..n)
            .filter(|&i| remaining_preds[i] > 0)
            .map(|i| selected[i].clone())
            .collect();
        return Err(SequenceError::Cycle(stuck));
    }
    Ok(order.into_iter().map(|i| selected[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_feature_model::ModelBuilder;

    fn model() -> FeatureModel {
        let mut b = ModelBuilder::new("query_specification");
        let root = b.root();
        b.optional(root, "set_quantifier");
        b.mandatory(root, "select_list");
        let te = b.mandatory(root, "table_expression");
        b.mandatory(te, "from");
        b.optional(te, "where");
        b.optional(te, "group_by");
        b.optional(te, "having");
        b.requires("having", "group_by");
        b.build().unwrap()
    }

    #[test]
    fn preorder_without_edges() {
        let m = model();
        let c = Configuration::of([
            "query_specification",
            "select_list",
            "table_expression",
            "from",
            "where",
        ]);
        let seq = composition_sequence(&m, &c, &FeatureRegistry::new()).unwrap();
        assert_eq!(
            seq,
            ["query_specification", "select_list", "table_expression", "from", "where"]
        );
    }

    #[test]
    fn requires_forces_order() {
        let m = model();
        let c = Configuration::of([
            "query_specification",
            "select_list",
            "table_expression",
            "from",
            "having",
            "group_by",
        ]);
        let seq = composition_sequence(&m, &c, &FeatureRegistry::new()).unwrap();
        let gb = seq.iter().position(|n| n == "group_by").unwrap();
        let hv = seq.iter().position(|n| n == "having").unwrap();
        assert!(gb < hv, "group_by must compose before having: {seq:?}");
    }

    #[test]
    fn artifact_after_edges_force_order() {
        let m = model();
        let mut r = FeatureRegistry::new();
        r.register("where", "grammar where; w : WHERE ;", "").unwrap();
        // pretend `where` must compose after `select_list` AND after
        // `table_expression` (it already does by pre-order; also force an
        // inversion: select_list after where is a cycle-free reorder)
        let mut r2 = FeatureRegistry::new();
        r2.register("select_list", "grammar sl; sl : X ;", "").unwrap();
        r2.order_after("select_list", "where");
        let c = Configuration::of([
            "query_specification",
            "select_list",
            "table_expression",
            "from",
            "where",
        ]);
        let seq = composition_sequence(&m, &c, &r2).unwrap();
        let w = seq.iter().position(|n| n == "where").unwrap();
        let sl = seq.iter().position(|n| n == "select_list").unwrap();
        assert!(w < sl, "{seq:?}");
        let _ = r;
    }

    #[test]
    fn cycle_detected() {
        let m = model();
        let mut r = FeatureRegistry::new();
        r.register("where", "grammar w; w : X ;", "").unwrap();
        r.register("group_by", "grammar g; g : Y ;", "").unwrap();
        r.order_after("where", "group_by");
        r.order_after("group_by", "where");
        let c = Configuration::of([
            "query_specification",
            "select_list",
            "table_expression",
            "from",
            "where",
            "group_by",
        ]);
        let err = composition_sequence(&m, &c, &r).unwrap_err();
        let SequenceError::Cycle(stuck) = err;
        assert!(stuck.contains(&"where".to_string()));
        assert!(stuck.contains(&"group_by".to_string()));
    }

    #[test]
    fn unselected_requires_target_ignored() {
        // `having` selected without `group_by` is invalid, but sequencing is
        // constraint-agnostic: edges to unselected features are dropped.
        let m = model();
        let c = Configuration::of([
            "query_specification",
            "select_list",
            "table_expression",
            "from",
            "having",
        ]);
        let seq = composition_sequence(&m, &c, &FeatureRegistry::new()).unwrap();
        assert!(seq.contains(&"having".to_string()));
    }

    #[test]
    fn stability_ties_break_by_preorder() {
        let m = model();
        let c = Configuration::of([
            "query_specification",
            "set_quantifier",
            "select_list",
            "table_expression",
            "from",
            "where",
            "group_by",
            "having",
        ]);
        let seq = composition_sequence(&m, &c, &FeatureRegistry::new()).unwrap();
        // Everything except the having/group_by pair keeps pre-order.
        assert_eq!(seq[0], "query_specification");
        assert_eq!(seq[1], "set_quantifier");
        assert_eq!(seq[2], "select_list");
    }
}

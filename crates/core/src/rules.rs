//! The paper's production-composition rules (Section 3.2).
//!
//! All rules operate on one production's alternative list; grammar-level
//! composition ([`crate::compose`]) dispatches each incoming alternative
//! here and records the decision taken.

use sqlweave_grammar::ir::{Alternative, Term};

/// What happened when one alternative was composed into a production.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComposeDecision {
    /// The incoming alternative was identical to an existing one (no-op;
    /// composition is idempotent).
    Identical,
    /// R1: the incoming alternative contains an existing one; the existing
    /// alternative was replaced. Payload: index of the replaced alternative.
    Replaced(usize),
    /// R2: the incoming alternative is contained in an existing one; the
    /// existing alternative was retained. Payload: index of the retainer.
    Retained(usize),
    /// R3: no containment relation; the alternative was appended as a new
    /// choice. Payload: its new index.
    Appended(usize),
    /// R4: the incoming alternative shares its non-optional backbone with an
    /// existing one but contributes additional optional terms; the two were
    /// merged into one alternative carrying the union of optionals (in
    /// composition-sequence order, per the paper's ordering rule). Payload:
    /// index of the merged alternative.
    Merged(usize),
}

impl ComposeDecision {
    /// Short rule tag for trace tables (`=`, `R1`, `R2`, `R3`, `R4`).
    pub fn tag(self) -> &'static str {
        match self {
            ComposeDecision::Identical => "=",
            ComposeDecision::Replaced(_) => "R1",
            ComposeDecision::Retained(_) => "R2",
            ComposeDecision::Appended(_) => "R3",
            ComposeDecision::Merged(_) => "R4",
        }
    }
}

/// `true` if `haystack` *contains* `needle` in the paper's sense.
///
/// Two formalizations are combined, both implied by the paper's examples:
///
/// 1. **Prefix containment** — `needle` is a prefix of `haystack`: `BC`
///    contains `B` (the paper's own R1 example). Infix/suffix containment
///    is deliberately *not* used: it would make `DATE STRING` swallow a
///    sibling `STRING` alternative, which extends a different construct.
/// 2. **Optional-erasure containment** — `needle` is obtained from
///    `haystack` by deleting only *skippable* terms (`x?` / `(x)*`), in any
///    position: `SELECT set_quantifier? select_list` contains
///    `SELECT select_list`, even though the optional sits mid-sequence.
pub fn seq_contains(haystack: &[Term], needle: &[Term]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > haystack.len() {
        return false;
    }
    haystack[..needle.len()] == *needle || subseq_modulo_optionals(haystack, needle)
}

/// A term the composed language can always skip.
fn skippable(t: &Term) -> bool {
    matches!(t, Term::Optional(_) | Term::Star(_))
}

/// Can `needle` be obtained from `haystack` by deleting skippable terms?
fn subseq_modulo_optionals(haystack: &[Term], needle: &[Term]) -> bool {
    match (haystack.first(), needle.first()) {
        (_, None) => haystack.iter().all(skippable),
        (None, Some(_)) => false,
        (Some(h), Some(n)) => {
            (h == n && subseq_modulo_optionals(&haystack[1..], &needle[1..]))
                || (skippable(h) && subseq_modulo_optionals(&haystack[1..], needle))
        }
    }
}

/// The non-skippable terms of a sequence — its *backbone*.
fn backbone(seq: &[Term]) -> Vec<&Term> {
    seq.iter().filter(|t| !skippable(t)).collect()
}

/// Merge two alternatives that share a backbone: the result carries every
/// backbone term once, and for each backbone gap, `a`'s optionals followed
/// by `b`'s (deduplicated). Returns `None` when the backbones differ.
///
/// This implements the paper's R4: composing `A: B` with `A: B[C]` (either
/// order) yields `A: B[C]`, and — crucially for independent optional
/// features — `A: B[C]` with `A: B[D]` yields `A: B[C][D]`, with `[C]`
/// before `[D]` because that was the composition order.
pub fn merge_modulo_optionals(a: &[Term], b: &[Term]) -> Option<Vec<Term>> {
    if backbone(a) != backbone(b) {
        return None;
    }
    // Split each sequence into gap-segments around backbone terms.
    fn gaps(seq: &[Term]) -> Vec<Vec<&Term>> {
        let n_backbone = seq.iter().filter(|t| !skippable(t)).count();
        let mut out: Vec<Vec<&Term>> = vec![Vec::new(); n_backbone + 1];
        let mut gap = 0usize;
        for t in seq {
            if skippable(t) {
                out[gap].push(t);
            } else {
                gap += 1;
            }
        }
        out
    }
    let ga = gaps(a);
    let gb = gaps(b);
    let spine: Vec<&Term> = backbone(a);
    let mut merged: Vec<Term> = Vec::with_capacity(a.len() + b.len());
    for i in 0..=spine.len() {
        // Multiset-max union per gap: keep all of `a`'s optionals in order,
        // then add `b`'s only where `b` has *more* occurrences of a term
        // than `a` does. A plain set-dedup would collapse `c? c?` into
        // `c?`, silently shrinking the language (found by proptest).
        for opt in &ga[i] {
            merged.push((*opt).clone());
        }
        for (bi, opt) in gb[i].iter().enumerate() {
            let needed = gb[i][..=bi].iter().filter(|t| t == &opt).count();
            let have = ga[i].iter().filter(|t| t == &opt).count();
            if needed > have {
                merged.push((*opt).clone());
            }
        }
        if i < spine.len() {
            merged.push(spine[i].clone());
        }
    }
    Some(merged)
}

/// Compose one incoming alternative into an alternative list, applying the
/// first applicable rule (identity, R4 merge, R2 retain, R1 replace, R3
/// append) against the first related existing alternative.
///
/// Labels: on R1/R4 the incoming label wins if present, otherwise the old
/// label is kept (an extension refines the same semantic action).
pub fn compose_into(existing: &mut Vec<Alternative>, incoming: Alternative) -> ComposeDecision {
    // Identity (idempotence) first.
    if let Some(i) = existing.iter().position(|a| a.seq == incoming.seq) {
        if existing[i].label.is_none() {
            existing[i].label = incoming.label;
        }
        return ComposeDecision::Identical;
    }
    // R4: same backbone — merge optional contributions.
    if let Some((i, merged)) = existing
        .iter()
        .enumerate()
        .find_map(|(i, a)| merge_modulo_optionals(&a.seq, &incoming.seq).map(|m| (i, m)))
    {
        if merged == existing[i].seq {
            return ComposeDecision::Retained(i);
        }
        let label = incoming
            .label
            .clone()
            .or_else(|| existing[i].label.clone());
        existing[i] = Alternative { label, seq: merged };
        return ComposeDecision::Merged(i);
    }
    // R2: some existing alternative already contains the incoming one.
    if let Some(i) = existing
        .iter()
        .position(|a| seq_contains(&a.seq, &incoming.seq))
    {
        return ComposeDecision::Retained(i);
    }
    // R1: the incoming alternative contains an existing one — replace it.
    if let Some(i) = existing
        .iter()
        .position(|a| seq_contains(&incoming.seq, &a.seq))
    {
        let label = incoming
            .label
            .clone()
            .or_else(|| existing[i].label.clone());
        existing[i] = Alternative { label, seq: incoming.seq };
        return ComposeDecision::Replaced(i);
    }
    // R3: unrelated — append as a new choice.
    existing.push(incoming);
    ComposeDecision::Appended(existing.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::ir::Term;

    fn alt(terms: Vec<Term>) -> Alternative {
        Alternative::new(terms)
    }

    fn b() -> Term {
        Term::nt("b")
    }
    fn c() -> Term {
        Term::nt("c")
    }
    fn d() -> Term {
        Term::nt("d")
    }

    // --- the paper's own examples ---

    #[test]
    fn r1_new_contains_old_replaces() {
        // composing A: BC onto A: B  =>  A: BC
        let mut alts = vec![alt(vec![b()])];
        let d = compose_into(&mut alts, alt(vec![b(), c()]));
        assert_eq!(d, ComposeDecision::Replaced(0));
        assert_eq!(alts, vec![alt(vec![b(), c()])]);
    }

    #[test]
    fn r2_new_contained_in_old_retains() {
        // composing A: B onto A: BC  =>  A: BC
        let mut alts = vec![alt(vec![b(), c()])];
        let d = compose_into(&mut alts, alt(vec![b()]));
        assert_eq!(d, ComposeDecision::Retained(0));
        assert_eq!(alts, vec![alt(vec![b(), c()])]);
    }

    #[test]
    fn r3_unrelated_appends_choice() {
        // composing A: C onto A: B  =>  A: B | C
        let mut alts = vec![alt(vec![b()])];
        let d = compose_into(&mut alts, alt(vec![c()]));
        assert_eq!(d, ComposeDecision::Appended(1));
        assert_eq!(alts, vec![alt(vec![b()]), alt(vec![c()])]);
    }

    #[test]
    fn r4_optional_extension_replaces_base() {
        // composing A: B[C] onto A: B  =>  A: B[C]
        let ext = alt(vec![b(), Term::Optional(vec![c()])]);
        let mut alts = vec![alt(vec![b()])];
        let d = compose_into(&mut alts, ext.clone());
        assert_eq!(d, ComposeDecision::Merged(0));
        assert_eq!(alts, vec![ext]);
    }

    #[test]
    fn r4_reverse_order_retains_extension() {
        // composing A: B onto A: B[C]  =>  A: B[C]  (order-insensitive
        // strengthening of the paper's "in that order only")
        let ext = alt(vec![b(), Term::Optional(vec![c()])]);
        let mut alts = vec![ext.clone()];
        let d = compose_into(&mut alts, alt(vec![b()]));
        assert_eq!(d, ComposeDecision::Retained(0));
        assert_eq!(alts, vec![ext]);
    }

    #[test]
    fn r4_prefix_optional_extension() {
        // A: B and A: [C]B
        let ext = alt(vec![Term::Optional(vec![c()]), b()]);
        let mut alts = vec![alt(vec![b()])];
        assert_eq!(compose_into(&mut alts, ext.clone()), ComposeDecision::Merged(0));
        assert_eq!(alts, vec![ext]);
    }

    #[test]
    fn r5_sublist_then_complex_list() {
        // A: B then A: B [, B…]  =>  the complex list
        let list = alt(vec![b(), Term::Star(vec![Term::tok("COMMA"), b()])]);
        let mut alts = vec![alt(vec![b()])];
        assert_eq!(compose_into(&mut alts, list.clone()), ComposeDecision::Merged(0));
        assert_eq!(alts, vec![list]);
    }

    #[test]
    fn r5_reverse_order_also_converges() {
        let list = alt(vec![b(), Term::Star(vec![Term::tok("COMMA"), b()])]);
        let mut alts = vec![list.clone()];
        assert_eq!(compose_into(&mut alts, alt(vec![b()])), ComposeDecision::Retained(0));
        assert_eq!(alts, vec![list]);
    }

    // --- engine properties beyond the paper's examples ---

    #[test]
    fn idempotent() {
        let mut alts = vec![alt(vec![b(), c()])];
        assert_eq!(
            compose_into(&mut alts, alt(vec![b(), c()])),
            ComposeDecision::Identical
        );
        assert_eq!(alts.len(), 1);
    }

    #[test]
    fn identical_composition_adopts_label() {
        let mut alts = vec![alt(vec![b()])];
        let labeled = Alternative::labeled("base", vec![b()]);
        compose_into(&mut alts, labeled);
        assert_eq!(alts[0].label.as_deref(), Some("base"));
    }

    #[test]
    fn replacement_prefers_incoming_label() {
        let mut alts = vec![Alternative::labeled("old", vec![b()])];
        compose_into(&mut alts, Alternative::labeled("new", vec![b(), c()]));
        assert_eq!(alts[0].label.as_deref(), Some("new"));
        let mut alts = vec![Alternative::labeled("old", vec![b()])];
        compose_into(&mut alts, alt(vec![b(), c()]));
        assert_eq!(alts[0].label.as_deref(), Some("old"));
    }

    #[test]
    fn containment_is_contiguous_not_scattered() {
        // B D does NOT contain-subsume B C D in either direction, and the
        // scattered subsequence [B, D] of [B, C, D] must not trigger R1/R2.
        let mut alts = vec![alt(vec![b(), c(), d()])];
        let decision = compose_into(&mut alts, alt(vec![b(), d()]));
        assert_eq!(decision, ComposeDecision::Appended(1));
        assert_eq!(alts.len(), 2);
    }

    #[test]
    fn infix_containment_rejected() {
        // A: C onto A: B C D — C occurs inside, but only *prefix*
        // containment triggers R1/R2, so this is a distinct choice
        // (otherwise `DATE STRING` would swallow a sibling `STRING`).
        let mut alts = vec![alt(vec![b(), c(), d()])];
        assert_eq!(compose_into(&mut alts, alt(vec![c()])), ComposeDecision::Appended(1));
    }

    #[test]
    fn sibling_alternative_with_shared_suffix_not_swallowed() {
        // literal : STRING  then  literal : DATE STRING — both survive.
        let s = || Term::tok("STRING");
        let date = || Term::tok("DATE");
        let mut alts = vec![alt(vec![s()])];
        assert_eq!(
            compose_into(&mut alts, alt(vec![date(), s()])),
            ComposeDecision::Appended(1)
        );
        assert_eq!(alts.len(), 2);
        // and in the reverse arrival order as well
        let mut alts = vec![alt(vec![date(), s()])];
        assert_eq!(
            compose_into(&mut alts, alt(vec![s()])),
            ComposeDecision::Appended(1)
        );
        assert_eq!(alts.len(), 2);
    }

    #[test]
    fn empty_sequence_contained_everywhere() {
        assert!(seq_contains(&[b()], &[]));
        assert!(seq_contains(&[], &[]));
        assert!(!seq_contains(&[], &[b()]));
    }

    #[test]
    fn multiple_alternatives_first_match_wins() {
        // existing: B | BC. incoming: BCD contains both; replaces the first
        // related (B).
        let mut alts = vec![alt(vec![b()]), alt(vec![b(), c()])];
        let d = compose_into(&mut alts, alt(vec![b(), c(), d()]));
        // R2 check runs first: is BCD contained in B? no. in BC? no.
        // R1: BCD contains B (index 0) -> replace index 0.
        assert_eq!(d, ComposeDecision::Replaced(0));
        assert_eq!(alts[0].seq.len(), 3);
        assert_eq!(alts[1].seq.len(), 2);
    }

    #[test]
    fn r4_independent_optionals_merge() {
        // where and group_by each extend table_expression independently:
        // A: F[W] then A: F[G]  =>  A: F[W][G]
        let f = || Term::nt("from_clause");
        let w = || Term::Optional(vec![Term::nt("where_clause")]);
        let g = || Term::Optional(vec![Term::nt("group_by_clause")]);
        let mut alts = vec![alt(vec![f(), w()])];
        let d = compose_into(&mut alts, alt(vec![f(), g()]));
        assert_eq!(d, ComposeDecision::Merged(0));
        assert_eq!(alts, vec![alt(vec![f(), w(), g()])]);
        // third independent optional keeps accumulating
        let h = || Term::Optional(vec![Term::nt("having_clause")]);
        compose_into(&mut alts, alt(vec![f(), h()]));
        assert_eq!(alts, vec![alt(vec![f(), w(), g(), h()])]);
    }

    #[test]
    fn r4_merge_respects_backbone_gaps() {
        // SELECT list  ∘  SELECT quant? list  =>  SELECT quant? list
        let sel = || Term::tok("SELECT");
        let list = || Term::nt("select_list");
        let q = || Term::Optional(vec![Term::nt("set_quantifier")]);
        let mut alts = vec![alt(vec![sel(), list()])];
        let d = compose_into(&mut alts, alt(vec![sel(), q(), list()]));
        assert_eq!(d, ComposeDecision::Merged(0));
        assert_eq!(alts, vec![alt(vec![sel(), q(), list()])]);
    }

    #[test]
    fn r4_merge_dedupes_shared_optionals() {
        let f = || Term::nt("f");
        let w = || Term::Optional(vec![Term::nt("w")]);
        let g = || Term::Optional(vec![Term::nt("g")]);
        let mut alts = vec![alt(vec![f(), w(), g()])];
        // incoming repeats w? and adds nothing new
        assert_eq!(
            compose_into(&mut alts, alt(vec![f(), w()])),
            ComposeDecision::Retained(0)
        );
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].seq.len(), 3);
    }

    #[test]
    fn r4_different_backbones_do_not_merge() {
        let mut alts = vec![alt(vec![b(), Term::Optional(vec![c()])])];
        let d2 = compose_into(&mut alts, alt(vec![d(), Term::Optional(vec![c()])]));
        assert_eq!(d2, ComposeDecision::Appended(1));
    }

    #[test]
    fn composition_converges_regardless_of_arrival_order() {
        // Three forms of the select list: B; B[AS]; B (COMMA B)*.
        // Any arrival order must converge to a fixed set (possibly split
        // across choices but stable under re-composition).
        let forms = [
            alt(vec![b()]),
            alt(vec![b(), Term::Optional(vec![Term::tok("AS")])]),
            alt(vec![b(), Term::Star(vec![Term::tok("COMMA"), b()])]),
        ];
        let orders = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for order in orders {
            let mut alts: Vec<Alternative> = Vec::new();
            for &i in &order {
                compose_into(&mut alts, forms[i].clone());
            }
            // Re-composing every form again must be a fixed point.
            let snapshot = alts.clone();
            for f in &forms {
                compose_into(&mut alts, f.clone());
            }
            assert_eq!(alts, snapshot, "not a fixed point for order {order:?}");
        }
    }
}

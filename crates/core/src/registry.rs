//! Binding features to their sub-grammars and token files.
//!
//! In the paper every feature obtained during decomposition carries an
//! LL(k) sub-grammar and a token file, created from the SQL:2003 BNF. A
//! [`FeatureRegistry`] holds those artifacts keyed by feature name; not
//! every feature needs one (inner nodes of feature diagrams are often pure
//! grouping markers whose children carry the grammar fragments).

use crate::error::RegistryError;
use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};
use sqlweave_grammar::ir::Grammar;
use sqlweave_lexgen::tokenset::TokenSet;
use std::collections::HashMap;

/// The grammar/token payload of one feature.
#[derive(Debug, Clone)]
pub struct FeatureArtifact {
    /// Feature name (matches the feature-model name).
    pub feature: String,
    /// The sub-grammar, if the feature carries syntax.
    pub grammar: Option<Grammar>,
    /// The token file (may be empty).
    pub tokens: TokenSet,
    /// Features that must be composed *before* this one, beyond what the
    /// model's structure implies (explicit composition-sequence edges).
    pub after: Vec<String>,
}

impl PartialEq for FeatureArtifact {
    fn eq(&self, other: &Self) -> bool {
        self.feature == other.feature
            && self.grammar == other.grammar
            && self.tokens == other.tokens
            && self.after == other.after
    }
}

/// Feature → artifact map.
#[derive(Debug, Default, Clone)]
pub struct FeatureRegistry {
    artifacts: HashMap<String, FeatureArtifact>,
    /// Ordering edges added via [`FeatureRegistry::order_after`], kept
    /// independently of artifact registration so edges may be declared
    /// before (or without) the artifact.
    order: HashMap<String, Vec<String>>,
}

impl FeatureRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        FeatureRegistry::default()
    }

    /// Register an artifact from DSL sources. `grammar_src` may be empty
    /// for marker features; `tokens_src` may be empty for token-free ones.
    pub fn register(
        &mut self,
        feature: &str,
        grammar_src: &str,
        tokens_src: &str,
    ) -> Result<(), RegistryError> {
        let grammar = if grammar_src.trim().is_empty() {
            None
        } else {
            Some(
                parse_grammar(grammar_src).map_err(|error| RegistryError::BadGrammar {
                    feature: feature.to_string(),
                    error,
                })?,
            )
        };
        let tokens = if tokens_src.trim().is_empty() {
            TokenSet::new()
        } else {
            parse_tokens(tokens_src).map_err(|error| RegistryError::BadTokens {
                feature: feature.to_string(),
                error,
            })?
        };
        self.register_artifact(FeatureArtifact {
            feature: feature.to_string(),
            grammar,
            tokens,
            after: Vec::new(),
        })
    }

    /// Register a pre-built artifact.
    pub fn register_artifact(&mut self, artifact: FeatureArtifact) -> Result<(), RegistryError> {
        match self.artifacts.get(&artifact.feature) {
            Some(existing) if *existing == artifact => Ok(()),
            Some(_) => Err(RegistryError::Duplicate(artifact.feature.clone())),
            None => {
                self.artifacts.insert(artifact.feature.clone(), artifact);
                Ok(())
            }
        }
    }

    /// Add an explicit composition-order edge: `feature` composes after
    /// `before`. May be called before either feature is registered.
    pub fn order_after(&mut self, feature: &str, before: &str) {
        let entry = self.order.entry(feature.to_string()).or_default();
        if !entry.iter().any(|b| b == before) {
            entry.push(before.to_string());
        }
    }

    /// All composition-order predecessors of `feature` (artifact `after`
    /// edges plus edges declared with [`FeatureRegistry::order_after`]).
    pub fn order_edges(&self, feature: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .artifacts
            .get(feature)
            .map(|a| a.after.iter().map(String::as_str).collect())
            .unwrap_or_default();
        if let Some(extra) = self.order.get(feature) {
            for b in extra {
                if !out.contains(&b.as_str()) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Look up a feature's artifact.
    pub fn get(&self, feature: &str) -> Option<&FeatureArtifact> {
        self.artifacts.get(feature)
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Iterate over artifacts (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &FeatureArtifact> {
        self.artifacts.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_get() {
        let mut r = FeatureRegistry::new();
        r.register(
            "where",
            "grammar where; where_clause : WHERE search_condition ;",
            "tokens where; WHERE = kw;",
        )
        .unwrap();
        let a = r.get("where").unwrap();
        assert!(a.grammar.is_some());
        assert_eq!(a.tokens.len(), 1);
    }

    #[test]
    fn marker_feature_without_grammar() {
        let mut r = FeatureRegistry::new();
        r.register("data_manipulation", "", "").unwrap();
        let a = r.get("data_manipulation").unwrap();
        assert!(a.grammar.is_none());
        assert!(a.tokens.is_empty());
    }

    #[test]
    fn bad_grammar_reported_with_feature() {
        let mut r = FeatureRegistry::new();
        let err = r.register("broken", "grammar g; a : ", "").unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn duplicate_identical_is_idempotent() {
        let mut r = FeatureRegistry::new();
        let src = ("f", "grammar f; a : X ;", "tokens f; X = kw;");
        r.register(src.0, src.1, src.2).unwrap();
        r.register(src.0, src.1, src.2).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn duplicate_conflicting_rejected() {
        let mut r = FeatureRegistry::new();
        r.register("f", "grammar f; a : X ;", "tokens f; X = kw;").unwrap();
        let err = r
            .register("f", "grammar f; a : Y ;", "tokens f; Y = kw;")
            .unwrap_err();
        assert!(matches!(err, RegistryError::Duplicate(_)));
    }

    #[test]
    fn explicit_ordering_edges() {
        let mut r = FeatureRegistry::new();
        r.register("complex_list", "grammar c; a : b (COMMA b)* ;", "").unwrap();
        r.order_after("complex_list", "sublist");
        r.order_after("complex_list", "sublist"); // dedup
        assert_eq!(r.order_edges("complex_list"), ["sublist"]);
        // edges may also be declared before the artifact exists
        r.order_after("late", "early");
        assert_eq!(r.order_edges("late"), ["early"]);
        // artifact `after` edges and declared edges combine without dupes
        r.register_artifact(FeatureArtifact {
            feature: "both".into(),
            grammar: None,
            tokens: Default::default(),
            after: vec!["x".into()],
        })
        .unwrap();
        r.order_after("both", "x");
        r.order_after("both", "y");
        assert_eq!(r.order_edges("both"), ["x", "y"]);
    }
}

//! Property-based tests over the composition rule engine.

use proptest::prelude::*;
use sqlweave_core::rules::{compose_into, merge_modulo_optionals, seq_contains, ComposeDecision};
use sqlweave_grammar::ir::{Alternative, Term};

/// Random term sequences over a tiny vocabulary, with optionals/stars.
fn arb_seq() -> impl Strategy<Value = Vec<Term>> {
    let atom = prop_oneof![
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Term::nt),
        prop::sample::select(vec!["X", "Y"]).prop_map(Term::tok),
    ];
    let term = prop_oneof![
        3 => atom.clone(),
        1 => atom.clone().prop_map(|t| Term::Optional(vec![t])),
        1 => atom.prop_map(|t| Term::Star(vec![t])),
    ];
    prop::collection::vec(term, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Composing the same alternative twice *in a row* is a no-op — a
    /// duplicated feature contributes nothing. (Re-composing after *other*
    /// features landed in between may legitimately act differently: the
    /// rules are state-dependent, which is the paper's own composition-
    /// order sensitivity. Whole-dialect determinism is pinned separately by
    /// the golden-grammar test and the fixed-point test over a repeated
    /// composition *sequence*.)
    #[test]
    fn immediate_recomposition_is_a_noop(seqs in prop::collection::vec(arb_seq(), 1..5)) {
        let mut alts: Vec<Alternative> = Vec::new();
        for s in &seqs {
            compose_into(&mut alts, Alternative::new(s.clone()));
            let snapshot = alts.clone();
            let d = compose_into(&mut alts, Alternative::new(s.clone()));
            prop_assert!(
                matches!(d, ComposeDecision::Identical | ComposeDecision::Retained(_)),
                "immediate re-composition of {s:?} was {d:?}"
            );
            prop_assert_eq!(&alts, &snapshot);
        }
    }

    /// The alternative list never grows beyond the number of inputs.
    #[test]
    fn compose_never_duplicates(seqs in prop::collection::vec(arb_seq(), 1..6)) {
        let mut alts: Vec<Alternative> = Vec::new();
        for s in &seqs {
            compose_into(&mut alts, Alternative::new(s.clone()));
        }
        prop_assert!(alts.len() <= seqs.len());
        // no two alternatives are identical
        for (i, a) in alts.iter().enumerate() {
            for b in &alts[i + 1..] {
                prop_assert_ne!(&a.seq, &b.seq);
            }
        }
    }

    /// Containment is reflexive and antisymmetric-modulo-equality on the
    /// sequences the engine actually compares.
    #[test]
    fn containment_is_reflexive(s in arb_seq()) {
        prop_assert!(seq_contains(&s, &s));
    }

    /// Merging is commutative on the backbone (the optionals' order differs
    /// by design, but backbone and *set* of optionals agree).
    #[test]
    fn merge_backbones_agree(a in arb_seq(), b in arb_seq()) {
        let ab = merge_modulo_optionals(&a, &b);
        let ba = merge_modulo_optionals(&b, &a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(ab), Some(ba)) = (ab, ba) {
            let skippable = |t: &Term| matches!(t, Term::Optional(_) | Term::Star(_));
            let backbone = |s: &[Term]| -> Vec<Term> {
                s.iter().filter(|t| !skippable(t)).cloned().collect()
            };
            prop_assert_eq!(backbone(&ab), backbone(&ba));
            let opts = |s: &[Term]| -> Vec<Term> {
                let mut v: Vec<Term> =
                    s.iter().filter(|t| skippable(t)).cloned().collect();
                v.sort_by_key(|t| format!("{t}"));
                v
            };
            prop_assert_eq!(opts(&ab), opts(&ba));
        }
    }

    /// A merged alternative always contains the *existing* alternative `a`
    /// in full (sequence containment: `a`'s items survive in order), and
    /// every optional of `b` survives as a multiset. Full sequence
    /// containment of `b` cannot hold in general — when both sides
    /// contribute the same optionals in different orders, the merge keeps
    /// `a`'s order, which is exactly the paper's composition-order
    /// sensitivity.
    #[test]
    fn merge_preserves_existing_and_b_items(a in arb_seq(), b in arb_seq()) {
        if let Some(m) = merge_modulo_optionals(&a, &b) {
            prop_assert!(seq_contains(&m, &a), "merge {m:?} lost {a:?}");
            // multiset inclusion of b's terms
            for t in &b {
                let in_b = b.iter().filter(|x| x == &t).count();
                let in_m = m.iter().filter(|x| x == &t).count();
                prop_assert!(
                    in_m >= in_b,
                    "merge {m:?} dropped occurrences of {t} from {b:?}"
                );
            }
        }
    }

    /// When only one side contributes optionals in a gap, the merge
    /// contains *both* inputs as sequences.
    #[test]
    fn merge_of_disjoint_optionals_preserves_both(base in arb_seq()) {
        // a = base with an extra trailing optional X?, b = base with Y?
        let mut a = base.clone();
        a.push(Term::Optional(vec![Term::tok("X")]));
        let mut b = base.clone();
        b.push(Term::Optional(vec![Term::tok("Y")]));
        if let Some(m) = merge_modulo_optionals(&a, &b) {
            prop_assert!(seq_contains(&m, &a));
            prop_assert!(seq_contains(&m, &b));
        }
    }
}

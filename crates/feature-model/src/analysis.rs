//! Whole-model analyses: void models, dead features, core features, and
//! census statistics (used to regenerate the paper's "40 diagrams, >500
//! features" claim).

use crate::count::{count_configurations, try_count_configurations};
use crate::model::{Constraint, FeatureId, FeatureModel, GroupKind, Optionality};

/// Result of [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelAnalysis {
    /// Exact number of valid configurations.
    pub configurations: u128,
    /// `true` if the model admits no valid configuration at all.
    pub void: bool,
    /// Features that appear in *no* valid configuration.
    pub dead: Vec<FeatureId>,
    /// Features that appear in *every* valid configuration.
    pub core: Vec<FeatureId>,
}

/// Compute configuration count, voidness, dead features and core features.
///
/// Dead/core detection runs one forced count per feature; cost is
/// `O(features · count)` which is fine for per-diagram SQL models.
pub fn analyze(model: &FeatureModel) -> ModelAnalysis {
    let total = count_configurations(model);
    let mut dead = Vec::new();
    let mut core = Vec::new();
    for (id, _) in model.iter() {
        let with = count_with_forced(model, id, true);
        if with == 0 {
            dead.push(id);
        }
        if with == total && total > 0 {
            core.push(id);
        }
    }
    ModelAnalysis {
        configurations: total,
        void: total == 0,
        dead,
        core,
    }
}

impl ModelAnalysis {
    /// Features declared variable (optional solitary or group member) that
    /// nonetheless appear in **every** valid configuration — the modeling
    /// smell usually called *false-optional*: the diagram promises a choice
    /// the constraints have already made.
    pub fn false_optional(&self, model: &FeatureModel) -> Vec<FeatureId> {
        self.core
            .iter()
            .copied()
            .filter(|&f| {
                let feat = model.feature(f);
                feat.parent.is_some()
                    && (feat.is_grouped() || !feat.optionality.is_mandatory())
            })
            .collect()
    }
}

/// What is wrong with a cross-tree constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintDefect {
    /// Together with the rest of the model, the constraint forbids its own
    /// source feature: no valid configuration selects it, though some would
    /// without this constraint.
    Contradictory,
    /// Removing the constraint changes nothing — it is already implied by
    /// the tree structure and the remaining constraints.
    Redundant,
}

/// A defective cross-tree constraint found by [`try_analyze_constraints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintFinding {
    /// Index into [`FeatureModel::constraints`].
    pub index: usize,
    /// The constraint itself.
    pub constraint: Constraint,
    /// Why it was flagged.
    pub defect: ConstraintDefect,
}

impl ConstraintFinding {
    /// Human-readable rendering naming both endpoint features.
    pub fn describe(&self, model: &FeatureModel) -> String {
        let (a, b) = self.constraint.endpoints();
        let rel = match self.constraint {
            Constraint::Requires(..) => "requires",
            Constraint::Excludes(..) => "excludes",
        };
        let what = match self.defect {
            ConstraintDefect::Contradictory => "contradictory",
            ConstraintDefect::Redundant => "redundant",
        };
        format!(
            "{what} constraint: `{}` {rel} `{}`",
            model.feature(a).name,
            model.feature(b).name
        )
    }
}

/// Check every cross-tree constraint for contradiction and redundancy by
/// exact counting with the constraint removed. Returns `None` when more
/// than `max_split` distinct features appear in constraints (the split
/// enumeration would need `2^n` assignments).
pub fn try_analyze_constraints(
    model: &FeatureModel,
    max_split: usize,
) -> Option<Vec<ConstraintFinding>> {
    let all = model.constraints();
    if all.is_empty() {
        return Some(Vec::new());
    }
    let total = count_filtered(model, all, None, max_split)?;
    let mut findings = Vec::new();
    for (index, &constraint) in all.iter().enumerate() {
        let rest: Vec<Constraint> = all
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != index)
            .map(|(_, &c)| c)
            .collect();
        let without = count_filtered(model, &rest, None, max_split)?;
        if without == total {
            findings.push(ConstraintFinding {
                index,
                constraint,
                defect: ConstraintDefect::Redundant,
            });
            continue;
        }
        // The constraint does prune configurations; contradictory if it
        // prunes *all* configurations selecting its source feature.
        let (source, _) = constraint.endpoints();
        let with_source = count_filtered(model, all, Some((source, true)), max_split)?;
        let without_source = count_filtered(model, &rest, Some((source, true)), max_split)?;
        if with_source == 0 && without_source > 0 {
            findings.push(ConstraintFinding {
                index,
                constraint,
                defect: ConstraintDefect::Contradictory,
            });
        }
    }
    Some(findings)
}

/// Exact configuration count honoring only `constraints` (a subset of the
/// model's), optionally forcing one feature. `None` past the split cap.
fn count_filtered(
    model: &FeatureModel,
    constraints: &[Constraint],
    force: Option<(FeatureId, bool)>,
    max_split: usize,
) -> Option<u128> {
    let mut involved: Vec<FeatureId> = constraints
        .iter()
        .flat_map(|c| {
            let (a, b) = c.endpoints();
            [a, b]
        })
        .collect();
    if let Some((f, _)) = force {
        involved.push(f);
    }
    involved.sort();
    involved.dedup();
    if involved.len() > max_split.min(63) {
        return None;
    }
    let mut total = 0u128;
    for mask in 0u64..(1u64 << involved.len()) {
        let mut forced: Vec<Option<bool>> = vec![None; model.len()];
        for (bit, &fid) in involved.iter().enumerate() {
            forced[fid.index()] = Some(mask & (1 << bit) != 0);
        }
        if let Some((f, v)) = force {
            if forced[f.index()] != Some(v) {
                continue;
            }
        }
        let consistent = constraints.iter().all(|&c| match c {
            Constraint::Requires(a, b) => {
                !(forced[a.index()] == Some(true) && forced[b.index()] == Some(false))
            }
            Constraint::Excludes(a, b) => {
                !(forced[a.index()] == Some(true) && forced[b.index()] == Some(true))
            }
        });
        if !consistent {
            continue;
        }
        total = total.saturating_add(crate::count::count_subtree_forced(model, &forced));
    }
    Some(total)
}

/// Count configurations where `feature` is forced to `value`.
///
/// Implemented by adding a synthetic constraint split; reuses the counting
/// DP via a temporary model clone with an extra `requires`-style forcing.
pub fn count_with_forced(model: &FeatureModel, feature: FeatureId, value: bool) -> u128 {
    // Cheap approach: count all configurations, and count those with the
    // opposite forcing via the constraint-split machinery. We re-implement
    // the split locally to avoid cloning the model.
    let involved: Vec<FeatureId> = {
        let mut s: Vec<FeatureId> = model
            .constraints()
            .iter()
            .flat_map(|c| {
                let (a, b) = c.endpoints();
                [a, b]
            })
            .collect();
        s.push(feature);
        s.sort();
        s.dedup();
        s
    };
    let mut total = 0u128;
    for mask in 0u64..(1u64 << involved.len()) {
        let mut forced: Vec<Option<bool>> = vec![None; model.len()];
        for (bit, &fid) in involved.iter().enumerate() {
            forced[fid.index()] = Some(mask & (1 << bit) != 0);
        }
        if forced[feature.index()] != Some(value) {
            continue;
        }
        let consistent = model.constraints().iter().all(|&c| match c {
            Constraint::Requires(a, b) => {
                !(forced[a.index()] == Some(true) && forced[b.index()] == Some(false))
            }
            Constraint::Excludes(a, b) => {
                !(forced[a.index()] == Some(true) && forced[b.index()] == Some(true))
            }
        });
        if !consistent {
            continue;
        }
        total = total.saturating_add(crate::count::count_subtree_forced(model, &forced));
    }
    total
}

/// Per-diagram statistics for the census table (Experiment T1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Census {
    /// Diagram (root concept) name.
    pub diagram: String,
    /// Total features including the root.
    pub features: usize,
    /// Count of mandatory solitary features.
    pub mandatory: usize,
    /// Count of optional solitary features.
    pub optional: usize,
    /// Count of grouped features.
    pub grouped: usize,
    /// Number of OR groups.
    pub or_groups: usize,
    /// Number of XOR (alternative) groups.
    pub xor_groups: usize,
    /// Number of cross-tree constraints.
    pub constraints: usize,
    /// Maximum tree depth.
    pub depth: usize,
    /// Number of valid configurations (`None` when the model's constraint
    /// graph is too large for exact splitting).
    pub configurations: Option<u128>,
}

/// Compute the census row for one diagram.
pub fn census(model: &FeatureModel) -> Census {
    let mut mandatory = 0;
    let mut optional = 0;
    let mut grouped = 0;
    let mut depth = 0;
    for (id, f) in model.iter() {
        if f.is_grouped() {
            grouped += 1;
        } else if f.parent.is_some() {
            match f.optionality {
                Optionality::Mandatory => mandatory += 1,
                Optionality::Optional => optional += 1,
            }
        }
        depth = depth.max(model.depth(id));
    }
    let or_groups = model
        .groups()
        .iter()
        .filter(|g| g.kind == GroupKind::Or)
        .count();
    let xor_groups = model
        .groups()
        .iter()
        .filter(|g| g.kind == GroupKind::Xor)
        .count();
    Census {
        diagram: model.name().to_string(),
        features: model.len(),
        mandatory,
        optional,
        grouped,
        or_groups,
        xor_groups,
        constraints: model.constraints().len(),
        depth,
        configurations: try_count_configurations(model, 20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBuilder;

    #[test]
    fn healthy_model_has_no_dead_features() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.mandatory(r, "m");
        b.optional(r, "o");
        b.xor(r, &["a", "b"]);
        let m = b.build().unwrap();
        let a = analyze(&m);
        assert!(!a.void);
        assert!(a.dead.is_empty());
        // root and mandatory child are core
        let core_names: Vec<_> = a.core.iter().map(|&f| m.feature(f).name.as_str()).collect();
        assert!(core_names.contains(&"c"));
        assert!(core_names.contains(&"m"));
        assert!(!core_names.contains(&"o"));
    }

    #[test]
    fn contradictory_constraints_make_dead_features() {
        // a requires b, a excludes b => a is dead.
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        let analysis = analyze(&m);
        assert!(!analysis.void); // configs without `a` still exist
        let dead: Vec<_> = analysis
            .dead
            .iter()
            .map(|&f| m.feature(f).name.as_str())
            .collect();
        assert_eq!(dead, ["a"]);
    }

    #[test]
    fn void_model_detected() {
        // mandatory child `a` excluded by mandatory child `b` => void.
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.mandatory(r, "a");
        b.mandatory(r, "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        let analysis = analyze(&m);
        assert!(analysis.void);
        assert_eq!(analysis.configurations, 0);
    }

    #[test]
    fn census_counts() {
        let mut b = ModelBuilder::new("query_specification");
        let r = b.root();
        let sq = b.optional(r, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let sl = b.mandatory(r, "select_list");
        b.or(sl, &["select_sublist", "asterisk"]);
        b.mandatory(r, "table_expression");
        b.requires("distinct", "select_list");
        let m = b.build().unwrap();
        let c = census(&m);
        assert_eq!(c.features, 8);
        assert_eq!(c.mandatory, 2);
        assert_eq!(c.optional, 1);
        assert_eq!(c.grouped, 4);
        assert_eq!(c.or_groups, 1);
        assert_eq!(c.xor_groups, 1);
        assert_eq!(c.constraints, 1);
        assert_eq!(c.depth, 2);
        assert!(c.configurations.unwrap() > 0);
    }

    #[test]
    fn false_optional_feature_detected() {
        // `b` is optional but `a` is mandatory and requires it: b is in
        // every valid configuration.
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.mandatory(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        let analysis = analyze(&m);
        let fo: Vec<_> = analysis
            .false_optional(&m)
            .iter()
            .map(|&f| m.feature(f).name.as_str())
            .collect();
        assert_eq!(fo, ["b"]);
    }

    #[test]
    fn redundant_constraint_detected() {
        // b is mandatory, so `a requires b` prunes nothing.
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.mandatory(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        let findings = try_analyze_constraints(&m, 20).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].defect, ConstraintDefect::Redundant);
        assert!(findings[0].describe(&m).contains("`a` requires `b`"));
    }

    #[test]
    fn contradictory_constraints_detected() {
        // a requires b AND a excludes b: each one, given the other, makes
        // `a` unselectable.
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        let findings = try_analyze_constraints(&m, 20).unwrap();
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .all(|f| f.defect == ConstraintDefect::Contradictory));
    }

    #[test]
    fn healthy_constraints_not_flagged() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        assert!(try_analyze_constraints(&m, 20).unwrap().is_empty());
    }

    #[test]
    fn constraint_analysis_respects_split_cap() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        assert!(try_analyze_constraints(&m, 1).is_none());
    }

    #[test]
    fn forced_count_partitions_total() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        let total = count_configurations(&m);
        let a = m.id_of("a").unwrap();
        assert_eq!(
            count_with_forced(&m, a, true) + count_with_forced(&m, a, false),
            total
        );
    }
}

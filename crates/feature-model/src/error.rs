//! Error types for model construction and configuration validation.

use crate::model::FeatureId;
use std::fmt;

/// Error raised while building a [`crate::FeatureModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Two features share the same name.
    DuplicateName(String),
    /// A group was declared with fewer than two members.
    GroupTooSmall { parent: String, members: usize },
    /// A group cardinality is unsatisfiable (min > members, or min > max).
    BadGroupCardinality { parent: String, min: u32, max: Option<u32>, members: usize },
    /// A constraint endpoint references an unknown feature name.
    UnknownConstraintFeature(String),
    /// A constraint relates a feature to itself.
    SelfConstraint(String),
    /// A feature was attached to a parent id that does not exist.
    UnknownParent(u32),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate feature name `{n}`"),
            ModelError::GroupTooSmall { parent, members } => {
                write!(f, "group under `{parent}` has {members} member(s); need at least 2")
            }
            ModelError::BadGroupCardinality { parent, min, max, members } => write!(
                f,
                "group under `{parent}` has unsatisfiable cardinality [{min}..{}] over {members} members",
                max.map_or("*".to_string(), |m| m.to_string())
            ),
            ModelError::UnknownConstraintFeature(n) => {
                write!(f, "constraint references unknown feature `{n}`")
            }
            ModelError::SelfConstraint(n) => {
                write!(f, "constraint relates feature `{n}` to itself")
            }
            ModelError::UnknownParent(id) => write!(f, "unknown parent feature id {id}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// One violated rule found while validating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The configuration names a feature the model doesn't contain.
    UnknownFeature(String),
    /// The root concept is not selected.
    RootNotSelected,
    /// A selected feature's parent is not selected.
    OrphanFeature { feature: FeatureId, parent: FeatureId },
    /// A mandatory child of a selected parent is missing.
    MandatoryMissing { feature: FeatureId, parent: FeatureId },
    /// A group's selected-member count is outside its bounds.
    GroupViolated {
        parent: FeatureId,
        selected: u32,
        min: u32,
        max: u32,
    },
    /// `a` is selected but its required feature `b` is not.
    RequiresViolated { from: FeatureId, to: FeatureId },
    /// Mutually exclusive features are both selected.
    ExcludesViolated { a: FeatureId, b: FeatureId },
}

/// Validation failure: the full list of violations, never empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// All rule violations found (validation does not stop at the first).
    pub violations: Vec<Violation>,
    /// Human-readable rendering of each violation, aligned with
    /// `violations`.
    pub messages: Vec<String>,
}

impl ValidationError {
    pub(crate) fn new(violations: Vec<Violation>, messages: Vec<String>) -> Self {
        debug_assert_eq!(violations.len(), messages.len());
        debug_assert!(!violations.is_empty());
        ValidationError { violations, messages }
    }

    /// `true` if any violation is of the given shape.
    pub fn has(&self, pred: impl Fn(&Violation) -> bool) -> bool {
        self.violations.iter().any(pred)
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration ({} violation(s)):", self.violations.len())?;
        for m in &self.messages {
            write!(f, "\n  - {m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

//! Configurations — the paper's *feature instance descriptions*.

use std::collections::BTreeSet;
use std::fmt;

/// A set of selected feature names.
///
/// Names (not ids) are used so configurations can be written down
/// independently of any particular model instance, composed across diagrams,
/// and serialized trivially. Resolution against a model happens during
/// validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Configuration {
    selected: BTreeSet<String>,
}

impl Configuration {
    /// The empty selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from any iterable of names.
    pub fn of<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Configuration {
            selected: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Select a feature (idempotent). Returns `self` for chaining.
    pub fn select(&mut self, name: impl Into<String>) -> &mut Self {
        self.selected.insert(name.into());
        self
    }

    /// Deselect a feature (idempotent). Returns `self` for chaining.
    pub fn deselect(&mut self, name: &str) -> &mut Self {
        self.selected.remove(name);
        self
    }

    /// Builder-style selection.
    pub fn with(mut self, name: impl Into<String>) -> Self {
        self.selected.insert(name.into());
        self
    }

    /// Builder-style removal.
    pub fn without(mut self, name: &str) -> Self {
        self.selected.remove(name);
        self
    }

    /// `true` if the named feature is selected.
    pub fn contains(&self, name: &str) -> bool {
        self.selected.contains(name)
    }

    /// Number of selected features.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// `true` if nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Iterate over selected names in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.selected.iter().map(String::as_str)
    }

    /// Union with another configuration (used when merging per-diagram
    /// selections into a whole-dialect selection).
    pub fn union(&self, other: &Configuration) -> Configuration {
        Configuration {
            selected: self.selected.union(&other.selected).cloned().collect(),
        }
    }

    /// `true` if every selection in `self` is also in `other`.
    pub fn is_subset_of(&self, other: &Configuration) -> bool {
        self.selected.is_subset(&other.selected)
    }

    /// Features present in `self` but not in `other`.
    pub fn difference<'a>(&'a self, other: &Configuration) -> Vec<&'a str> {
        self.selected
            .iter()
            .filter(|n| !other.selected.contains(*n))
            .map(String::as_str)
            .collect()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, name) in self.selected.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<String>> FromIterator<S> for Configuration {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Configuration::of(iter)
    }
}

impl<'a> IntoIterator for &'a Configuration {
    type Item = &'a String;
    type IntoIter = std::collections::btree_set::Iter<'a, String>;
    fn into_iter(self) -> Self::IntoIter {
        self.selected.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_deselect_roundtrip() {
        let mut c = Configuration::new();
        c.select("a").select("b");
        assert!(c.contains("a"));
        c.deselect("a");
        assert!(!c.contains("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn of_dedupes() {
        let c = Configuration::of(["x", "x", "y"]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn union_and_subset() {
        let a = Configuration::of(["a", "b"]);
        let b = Configuration::of(["b", "c"]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn difference_lists_missing() {
        let a = Configuration::of(["a", "b", "c"]);
        let b = Configuration::of(["b"]);
        assert_eq!(a.difference(&b), vec!["a", "c"]);
    }

    #[test]
    fn display_sorted() {
        let c = Configuration::of(["where", "from", "having"]);
        assert_eq!(c.to_string(), "{from, having, where}");
    }

    #[test]
    fn with_without_chain() {
        let c = Configuration::new().with("a").with("b").without("a");
        assert_eq!(c, Configuration::of(["b"]));
    }
}

//! Configuration validation against a feature model.
//!
//! Validation collects *all* violations rather than stopping at the first,
//! so user interfaces (the paper's envisioned feature-selection UI) can show
//! a complete report.

use crate::config::Configuration;
use crate::error::{ValidationError, Violation};
use crate::model::{Constraint, FeatureId, FeatureModel, Optionality};

/// Resolve a configuration to a dense selected-bit vector.
///
/// Unknown names are reported in `violations`.
fn resolve(
    model: &FeatureModel,
    config: &Configuration,
    violations: &mut Vec<Violation>,
    messages: &mut Vec<String>,
) -> Vec<bool> {
    let mut selected = vec![false; model.len()];
    for name in config.iter() {
        match model.id_of(name) {
            Some(id) => selected[id.index()] = true,
            None => {
                violations.push(Violation::UnknownFeature(name.to_string()));
                messages.push(format!(
                    "`{name}` is not a feature of diagram `{}`",
                    model.name()
                ));
            }
        }
    }
    selected
}

/// Validate `config` against `model`.
///
/// Rules checked (matching the paper's feature-diagram semantics):
///
/// 1. every selected name exists in the model;
/// 2. the root concept is selected;
/// 3. the parent of every selected feature is selected;
/// 4. every *mandatory* solitary child of a selected parent is selected;
/// 5. every group under a selected parent has a within-bounds number of
///    selected members (OR ≥ 1, XOR = 1, `[m..n]` within bounds); groups
///    under unselected parents must have no selected members (covered by
///    rule 3);
/// 6. all `requires` / `excludes` constraints hold over selected features.
pub fn validate(model: &FeatureModel, config: &Configuration) -> Result<(), ValidationError> {
    let mut violations = Vec::new();
    let mut messages = Vec::new();
    let selected = resolve(model, config, &mut violations, &mut messages);

    let name = |id: FeatureId| model.feature(id).name.as_str();

    // Rule 2: root selected.
    if !selected[0] {
        violations.push(Violation::RootNotSelected);
        messages.push(format!("root concept `{}` must be selected", model.name()));
    }

    for (id, feat) in model.iter() {
        let is_sel = selected[id.index()];
        // Rule 3: parent selected.
        if is_sel {
            if let Some(parent) = feat.parent {
                if !selected[parent.index()] {
                    violations.push(Violation::OrphanFeature { feature: id, parent });
                    messages.push(format!(
                        "`{}` is selected but its parent `{}` is not",
                        name(id),
                        name(parent)
                    ));
                }
            }
        }
        // Rule 4: mandatory children of selected parents.
        if is_sel {
            for &child in &feat.children {
                let c = model.feature(child);
                if c.group.is_none()
                    && c.optionality == Optionality::Mandatory
                    && !selected[child.index()]
                {
                    violations.push(Violation::MandatoryMissing { feature: child, parent: id });
                    messages.push(format!(
                        "mandatory feature `{}` of selected `{}` is missing",
                        name(child),
                        name(id)
                    ));
                }
            }
        }
    }

    // Rule 5: group cardinalities (only for selected parents).
    for group in model.groups() {
        if !selected[group.parent.index()] {
            continue;
        }
        let count = group
            .members
            .iter()
            .filter(|m| selected[m.index()])
            .count() as u32;
        let (min, max) = group.kind.bounds(group.members.len());
        if count < min || count > max {
            violations.push(Violation::GroupViolated {
                parent: group.parent,
                selected: count,
                min,
                max,
            });
            let members: Vec<&str> = group.members.iter().map(|&m| name(m)).collect();
            messages.push(format!(
                "{} group {{{}}} under `{}` needs {min}..{max} selections, found {count}",
                group.kind,
                members.join(", "),
                name(group.parent)
            ));
        }
    }

    // Rule 6: cross-tree constraints.
    for &c in model.constraints() {
        match c {
            Constraint::Requires(a, b) => {
                if selected[a.index()] && !selected[b.index()] {
                    violations.push(Violation::RequiresViolated { from: a, to: b });
                    messages.push(format!("`{}` requires `{}`", name(a), name(b)));
                }
            }
            Constraint::Excludes(a, b) => {
                if selected[a.index()] && selected[b.index()] {
                    violations.push(Violation::ExcludesViolated { a, b });
                    messages.push(format!("`{}` excludes `{}`", name(a), name(b)));
                }
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(ValidationError::new(violations, messages))
    }
}

/// Resolve a configuration to selected feature ids, ignoring unknown names.
pub fn selected_ids(model: &FeatureModel, config: &Configuration) -> Vec<FeatureId> {
    config.iter().filter_map(|n| model.id_of(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, ModelBuilder};

    /// Figure 2 of the paper (Table Expression) plus the standard SQL
    /// `having requires group_by` constraint.
    fn table_expression() -> FeatureModel {
        let mut b = ModelBuilder::new("table_expression");
        let root = b.root();
        b.mandatory(root, "from");
        b.optional(root, "where");
        b.optional(root, "group_by");
        b.optional(root, "having");
        b.optional(root, "window");
        b.requires("having", "group_by");
        b.build().unwrap()
    }

    fn quantifier() -> FeatureModel {
        let mut b = ModelBuilder::new("set_quantifier");
        let root = b.root();
        b.xor(root, &["all", "distinct"]);
        b.build().unwrap()
    }

    #[test]
    fn minimal_instance_valid() {
        let m = table_expression();
        let c = Configuration::of(["table_expression", "from"]);
        assert!(validate(&m, &c).is_ok());
    }

    #[test]
    fn missing_root_flagged() {
        let m = table_expression();
        let c = Configuration::of(["from"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::RootNotSelected)));
    }

    #[test]
    fn missing_mandatory_flagged() {
        let m = table_expression();
        let c = Configuration::of(["table_expression", "where"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::MandatoryMissing { .. })));
    }

    #[test]
    fn orphan_flagged() {
        let m = quantifier();
        // `all` selected without its parent... parent IS root here; drop root.
        let c = Configuration::of(["all"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::OrphanFeature { .. })));
    }

    #[test]
    fn xor_exactly_one() {
        let m = quantifier();
        let both = Configuration::of(["set_quantifier", "all", "distinct"]);
        let err = validate(&m, &both).unwrap_err();
        assert!(err.has(
            |v| matches!(v, Violation::GroupViolated { selected: 2, min: 1, max: 1, .. })
        ));

        let none = Configuration::of(["set_quantifier"]);
        let err = validate(&m, &none).unwrap_err();
        assert!(err.has(
            |v| matches!(v, Violation::GroupViolated { selected: 0, .. })
        ));

        let one = Configuration::of(["set_quantifier", "distinct"]);
        assert!(validate(&m, &one).is_ok());
    }

    #[test]
    fn or_group_at_least_one() {
        let mut b = ModelBuilder::new("select_list");
        let root = b.root();
        b.or(root, &["select_sublist", "asterisk"]);
        let m = b.build().unwrap();

        let none = Configuration::of(["select_list"]);
        assert!(validate(&m, &none).is_err());
        let one = Configuration::of(["select_list", "asterisk"]);
        assert!(validate(&m, &one).is_ok());
        let both = Configuration::of(["select_list", "asterisk", "select_sublist"]);
        assert!(validate(&m, &both).is_ok());
    }

    #[test]
    fn requires_enforced() {
        let m = table_expression();
        let c = Configuration::of(["table_expression", "from", "having"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::RequiresViolated { .. })));

        let ok = Configuration::of(["table_expression", "from", "group_by", "having"]);
        assert!(validate(&m, &ok).is_ok());
    }

    #[test]
    fn excludes_enforced() {
        let mut b = ModelBuilder::new("c");
        let root = b.root();
        b.optional(root, "a");
        b.optional(root, "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        let c = Configuration::of(["c", "a", "b"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::ExcludesViolated { .. })));
    }

    #[test]
    fn unknown_feature_flagged() {
        let m = table_expression();
        let c = Configuration::of(["table_expression", "from", "limit"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::UnknownFeature(n) if n == "limit")));
    }

    #[test]
    fn all_violations_collected() {
        let m = table_expression();
        // Missing root, missing mandatory, unknown name: three violations.
        let c = Configuration::of(["having", "bogus"]);
        let err = validate(&m, &c).unwrap_err();
        assert!(err.violations.len() >= 3, "got: {err}");
    }

    #[test]
    fn group_under_unselected_parent_not_required() {
        // set_quantifier optional under root; when unselected, its XOR group
        // imposes nothing.
        let mut b = ModelBuilder::new("query_specification");
        let root = b.root();
        let sq = b.optional(root, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let m = b.build().unwrap();
        let c = Configuration::of(["query_specification"]);
        assert!(validate(&m, &c).is_ok());
    }
}

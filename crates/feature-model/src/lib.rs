//! FODA-style feature modeling substrate for the `sqlweave` product line.
//!
//! This crate implements the feature-diagram formalism used by
//! *"Generating Highly Customizable SQL Parsers"* (Sunkle et al., EDBT 2008
//! SETMDM) to decompose SQL:2003: hierarchical feature trees with
//! mandatory/optional features, OR and alternative (XOR) groups, feature
//! cardinalities such as `[1..*]`, and cross-tree `requires`/`excludes`
//! constraints.
//!
//! The central types are:
//!
//! * [`FeatureModel`] — an immutable, validated feature diagram.
//! * [`ModelBuilder`] — ergonomic construction of feature diagrams.
//! * [`Configuration`] — a *feature instance description* in the paper's
//!   terminology: the set of features selected for one product.
//! * [`validate::validate`] — checks a configuration against a model and
//!   produces structured diagnostics.
//! * [`complete::complete`] — closes a partial selection over mandatory
//!   children, ancestors, and `requires` edges.
//! * [`count::count_configurations`] — exact counting of valid
//!   configurations (tree DP with constraint splitting).
//! * [`render`] — ASCII and Graphviz DOT renderings of diagrams, used to
//!   regenerate Figures 1 and 2 of the paper.
//!
//! # Example
//!
//! Build the paper's Figure 2 (*Table Expression*) and validate the
//! worked-example instance `{table_expression, from}`:
//!
//! ```
//! use sqlweave_feature_model::{ModelBuilder, Configuration};
//!
//! let mut b = ModelBuilder::new("table_expression");
//! let root = b.root();
//! let from = b.mandatory(root, "from");
//! b.optional(root, "where");
//! let group_by = b.optional(root, "group_by");
//! let having = b.optional(root, "having");
//! b.optional(root, "window");
//! b.requires("having", "group_by");
//! let model = b.build().unwrap();
//!
//! let config = Configuration::of(["table_expression", "from"]);
//! assert!(model.validate(&config).is_ok());
//!
//! // HAVING without GROUP BY violates the cross-tree constraint.
//! let bad = Configuration::of(["table_expression", "from", "having"]);
//! assert!(model.validate(&bad).is_err());
//! let _ = (from, group_by, having);
//! ```

pub mod analysis;
pub mod builder;
pub mod complete;
pub mod config;
pub mod count;
pub mod error;
pub mod model;
pub mod render;
pub mod solve;
pub mod validate;

pub use builder::ModelBuilder;
pub use config::Configuration;
pub use error::{ModelError, ValidationError, Violation};
pub use model::{
    Cardinality, Constraint, Feature, FeatureId, FeatureModel, Group, GroupKind, Optionality,
};

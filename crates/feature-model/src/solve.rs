//! Family-based configuration-space solving.
//!
//! The certification pass (`sqlweave certify`) needs to reason about *every*
//! valid configuration of a model, not just the preset dialects. This module
//! provides the solver layer for that:
//!
//! * [`enumerate_or_sample`] — the entry point: exact enumeration when the
//!   space fits under a limit, otherwise a deterministic pairwise (t = 2)
//!   covering sample with honest coverage accounting.
//! * [`resolve_open_choices`] — deterministic completion of a partial
//!   configuration into a valid one by resolving open group choices (the
//!   part [`crate::complete::complete`] deliberately leaves open).
//! * [`classify_combo`] — sound validity proofs for feature-pair value
//!   combinations, exact (via forced counting) on countable models and
//!   implication-closure based otherwise.
//!
//! Everything here is deterministic: traversal follows feature declaration
//! order and group members are tried first-declared-first, so the same model
//! always yields the same sample — a requirement for golden-file gating of
//! certification inventories.

use crate::complete::complete;
use crate::config::Configuration;
use crate::count::{
    enumerate_configurations, try_count_configurations, try_count_with_forced, MAX_SPLIT_FEATURES,
};
use crate::error::Violation;
use crate::model::{Constraint, FeatureId, FeatureModel};
use crate::validate::validate;
use std::collections::BTreeSet;
use std::fmt;

/// Split cap for per-combination forced counting. Lower than
/// [`MAX_SPLIT_FEATURES`] because the sampler runs one count per candidate
/// pair combination; beyond this it falls back to closure-based proofs.
const PROOF_SPLIT_FEATURES: usize = 12;

/// One value combination of a feature pair, e.g. "`a` selected, `b`
/// deselected". The unit of pairwise (t = 2) coverage.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PairCombo {
    /// First feature name (declaration order; `a` precedes `b`).
    pub a: String,
    /// Whether `a` is selected in this combination.
    pub a_on: bool,
    /// Second feature name.
    pub b: String,
    /// Whether `b` is selected in this combination.
    pub b_on: bool,
}

impl fmt::Display for PairCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = |on: bool| if on { "on" } else { "off" };
        write!(
            f,
            "{}={} & {}={}",
            self.a,
            state(self.a_on),
            self.b,
            state(self.b_on)
        )
    }
}

/// Pairwise coverage bookkeeping for a sampled family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseCoverage {
    /// Number of variable features (not forced by the mandatory skeleton).
    pub variables: usize,
    /// Pair combinations exercised by at least one sampled configuration.
    pub covered: usize,
    /// Pair combinations that must be exercised for full t = 2 coverage:
    /// all combinations minus those proven invalid.
    pub required: usize,
    /// Pair combinations proven impossible (no valid configuration
    /// realizes them); excluded from the denominator.
    pub proven_invalid: usize,
    /// Combinations neither covered nor proven invalid, in deterministic
    /// order — the honest shortfall a `SW505` diagnostic reports.
    pub uncovered: Vec<PairCombo>,
}

impl PairwiseCoverage {
    /// `true` when every required combination is covered.
    pub fn complete(&self) -> bool {
        self.covered == self.required
    }
}

/// The configuration set the certification pass analyzes for one model,
/// with the accounting needed to report coverage honestly.
#[derive(Debug, Clone)]
pub struct FamilySample {
    /// Valid configurations, deduplicated, sorted by canonical rendering.
    pub configs: Vec<Configuration>,
    /// Exact size of the configuration space, when countable.
    pub total: Option<u128>,
    /// `true` when `configs` is the *entire* space (exact mode).
    pub exact: bool,
    /// Pairwise coverage accounting; `None` in exact mode.
    pub coverage: Option<PairwiseCoverage>,
}

/// Enumerate the whole configuration space when it provably fits under
/// `limit`, otherwise build a pairwise covering sample seeded with `seeds`
/// (preset configurations; invalid seeds are ignored). `force_sample`
/// skips the exact path even for small spaces.
pub fn enumerate_or_sample(
    model: &FeatureModel,
    seeds: &[Configuration],
    limit: usize,
    force_sample: bool,
) -> FamilySample {
    let total = try_count_configurations(model, MAX_SPLIT_FEATURES);
    if !force_sample {
        if let Some(n) = total {
            if n <= limit as u128 {
                let configs = enumerate_configurations(model, limit);
                debug_assert_eq!(configs.len() as u128, n);
                return FamilySample {
                    configs,
                    total,
                    exact: true,
                    coverage: None,
                };
            }
        }
    }
    sample_pairwise(model, seeds, limit, total)
}

/// Resolve the open group choices of `config` into a valid configuration,
/// deterministically: whenever a group is under its minimum, members are
/// tried in declaration order and the first one whose completion closure
/// avoids every feature in `avoid` is taken. Returns `None` when no valid
/// resolution avoiding `avoid` exists along that deterministic path.
pub fn resolve_open_choices(
    model: &FeatureModel,
    config: &Configuration,
    avoid: &Configuration,
) -> Option<Configuration> {
    let mut cur = config.clone();
    if cur.iter().any(|n| avoid.contains(n)) {
        return None;
    }
    // Each round adds at least one feature, so the loop is bounded by the
    // model size.
    for _ in 0..=model.len() {
        let err = match validate(model, &cur) {
            Ok(()) => return Some(cur),
            Err(e) => e,
        };
        let mut progressed = false;
        for v in &err.violations {
            let Violation::GroupViolated {
                parent,
                selected,
                min,
                ..
            } = v
            else {
                continue;
            };
            if selected >= min {
                // Over-full group: adding features cannot fix it.
                return None;
            }
            let group = model
                .groups()
                .iter()
                .find(|g| g.parent == *parent && {
                    let chosen = g
                        .members
                        .iter()
                        .filter(|m| cur.contains(&model.feature(**m).name))
                        .count() as u32;
                    let (gmin, _) = g.kind.bounds(g.members.len());
                    chosen < gmin
                })?;
            for &member in &group.members {
                let name = &model.feature(member).name;
                if cur.contains(name) || avoid.contains(name) {
                    continue;
                }
                let Ok(closed) = complete(model, &cur.clone().with(name.clone())) else {
                    continue;
                };
                if closed.iter().any(|n| avoid.contains(n)) {
                    continue;
                }
                cur = closed;
                progressed = true;
                break;
            }
            if progressed {
                break;
            }
        }
        if !progressed {
            return None;
        }
    }
    None
}

/// What a validity proof says about one pair combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComboProof {
    /// No valid configuration realizes the combination (sound proof).
    ProvenInvalid,
    /// At least one valid configuration realizes it (exact counting).
    Realizable,
    /// Neither proof applies; treat as required for coverage.
    Unknown,
}

/// Classify one pair combination. On countable models (constraint split
/// small enough) the answer is exact via [`try_count_with_forced`];
/// otherwise the implication closure gives sound one-sided proofs:
/// the closure of the selected side is a subset of *every* valid
/// configuration containing it, so a deselected feature inside it, an
/// `excludes` pair inside it, or a group forced past its maximum each
/// prove the combination invalid.
pub fn classify_combo(
    model: &FeatureModel,
    a: (FeatureId, bool),
    b: (FeatureId, bool),
) -> ComboProof {
    match try_count_with_forced(model, &[a, b], PROOF_SPLIT_FEATURES) {
        Some(0) => ComboProof::ProvenInvalid,
        Some(_) => ComboProof::Realizable,
        None => {
            let on: Vec<String> = [a, b]
                .iter()
                .filter(|(_, v)| *v)
                .map(|(f, _)| model.feature(*f).name.clone())
                .collect();
            let off: Vec<&str> = [a, b]
                .iter()
                .filter(|(_, v)| !*v)
                .map(|(f, _)| model.feature(*f).name.as_str())
                .collect();
            let Ok(closure) = complete(model, &Configuration::of(on)) else {
                return ComboProof::Unknown;
            };
            if closure_proves_invalid(model, &closure, &off) {
                ComboProof::ProvenInvalid
            } else {
                ComboProof::Unknown
            }
        }
    }
}

/// Closure-based invalidity checks shared by [`classify_combo`] and the
/// sampler's cached single-feature closures.
fn closure_proves_invalid(model: &FeatureModel, closure: &Configuration, off: &[&str]) -> bool {
    if off.iter().any(|n| closure.contains(n)) {
        return true;
    }
    for &c in model.constraints() {
        if let Constraint::Excludes(x, y) = c {
            if closure.contains(&model.feature(x).name) && closure.contains(&model.feature(y).name)
            {
                return true;
            }
        }
    }
    for group in model.groups() {
        let forced = group
            .members
            .iter()
            .filter(|m| closure.contains(&model.feature(**m).name))
            .count() as u32;
        let (_, max) = group.kind.bounds(group.members.len());
        if forced > max {
            return true;
        }
    }
    false
}

/// Deterministic greedy pairwise (t = 2) covering sample.
///
/// Starts from the minimal configuration (mandatory skeleton with open
/// choices resolved) plus every valid seed, then walks all value
/// combinations of variable-feature pairs in declaration order, realizing a
/// configuration for each combination that is still uncovered and not
/// proven invalid — until `limit` configurations exist. Remaining
/// combinations are classified (covered / proven invalid / uncovered) so
/// the caller can report coverage honestly.
fn sample_pairwise(
    model: &FeatureModel,
    seeds: &[Configuration],
    limit: usize,
    total: Option<u128>,
) -> FamilySample {
    let skeleton = complete(model, &Configuration::new())
        .expect("completion of the empty selection cannot name unknown features");
    // Variable features: everything the mandatory skeleton doesn't force.
    let vars: Vec<FeatureId> = model
        .iter()
        .filter(|(_, f)| !skeleton.contains(&f.name))
        .map(|(id, _)| id)
        .collect();
    let var_names: Vec<&str> = vars.iter().map(|f| model.feature(*f).name.as_str()).collect();
    let n = vars.len();

    let combo_index = |i: usize, j: usize, va: bool, vb: bool| -> usize {
        let pair = i * (2 * n - i - 1) / 2 + (j - i - 1);
        pair * 4 + (va as usize) * 2 + (vb as usize)
    };
    let mut covered = vec![false; n * (n.saturating_sub(1)) / 2 * 4];

    let mut configs: Vec<Configuration> = Vec::new();
    let mut rendered: BTreeSet<String> = BTreeSet::new();
    let mark = |config: &Configuration, covered: &mut Vec<bool>| {
        let on: Vec<bool> = var_names.iter().map(|name| config.contains(name)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                covered[combo_index(i, j, on[i], on[j])] = true;
            }
        }
    };

    let push = |config: Configuration,
                    configs: &mut Vec<Configuration>,
                    rendered: &mut BTreeSet<String>,
                    covered: &mut Vec<bool>| {
        if rendered.insert(config.to_string()) {
            mark(&config, covered);
            configs.push(config);
        }
    };

    if let Some(minimal) = resolve_open_choices(model, &skeleton, &Configuration::new()) {
        push(minimal, &mut configs, &mut rendered, &mut covered);
    }
    for seed in seeds {
        if validate(model, seed).is_ok() {
            push(seed.clone(), &mut configs, &mut rendered, &mut covered);
        }
    }

    // Cached implication closure of `skeleton + one variable feature`,
    // reused for every pair the feature participates in.
    let countable = try_count_configurations(model, PROOF_SPLIT_FEATURES).is_some();
    let closures: Vec<Option<Configuration>> = vars
        .iter()
        .map(|&f| {
            if countable {
                None
            } else {
                complete(model, &Configuration::of([model.feature(f).name.clone()])).ok()
            }
        })
        .collect();

    let mut proven_invalid = 0usize;
    let mut uncovered: Vec<PairCombo> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            for (va, vb) in [(true, true), (true, false), (false, true), (false, false)] {
                if covered[combo_index(i, j, va, vb)] {
                    continue;
                }
                let proof = if countable {
                    classify_combo(model, (vars[i], va), (vars[j], vb))
                } else {
                    // Closure shortcut: a selected feature's closure is a
                    // subset of every valid configuration containing it.
                    let off: Vec<&str> = [(i, va), (j, vb)]
                        .iter()
                        .filter(|(_, v)| !*v)
                        .map(|(k, _)| var_names[*k])
                        .collect();
                    let closure = match (va, vb) {
                        (true, false) => closures[i].clone(),
                        (false, true) => closures[j].clone(),
                        (true, true) => complete(
                            model,
                            &Configuration::of([
                                var_names[i].to_string(),
                                var_names[j].to_string(),
                            ]),
                        )
                        .ok(),
                        (false, false) => None,
                    };
                    match closure {
                        Some(c) if closure_proves_invalid(model, &c, &off) => {
                            ComboProof::ProvenInvalid
                        }
                        _ => ComboProof::Unknown,
                    }
                };
                if proof == ComboProof::ProvenInvalid {
                    proven_invalid += 1;
                    continue;
                }
                if configs.len() < limit {
                    let on: Vec<String> = [(i, va), (j, vb)]
                        .iter()
                        .filter(|(_, v)| *v)
                        .map(|(k, _)| var_names[*k].to_string())
                        .collect();
                    let off = Configuration::of(
                        [(i, va), (j, vb)]
                            .iter()
                            .filter(|(_, v)| !*v)
                            .map(|(k, _)| var_names[*k].to_string()),
                    );
                    if let Some(config) = complete(model, &Configuration::of(on))
                        .ok()
                        .and_then(|c| resolve_open_choices(model, &c, &off))
                    {
                        push(config, &mut configs, &mut rendered, &mut covered);
                    }
                }
                if !covered[combo_index(i, j, va, vb)] {
                    uncovered.push(PairCombo {
                        a: var_names[i].to_string(),
                        a_on: va,
                        b: var_names[j].to_string(),
                        b_on: vb,
                    });
                }
            }
        }
    }

    let total_combos = n * n.saturating_sub(1) / 2 * 4;
    let required = total_combos - proven_invalid;
    let coverage = PairwiseCoverage {
        variables: n,
        covered: required - uncovered.len(),
        required,
        proven_invalid,
        uncovered,
    };
    configs.sort_by_key(|c| c.to_string());
    FamilySample {
        configs,
        total,
        exact: false,
        coverage: Some(coverage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBuilder;

    /// Figure 2 shape: from mandatory; where/group_by/having/window
    /// optional, having requires group_by. 12 valid configurations.
    fn table_expression() -> FeatureModel {
        let mut b = ModelBuilder::new("table_expression");
        let root = b.root();
        b.mandatory(root, "from");
        b.optional(root, "where");
        b.optional(root, "group_by");
        b.optional(root, "having");
        b.optional(root, "window");
        b.requires("having", "group_by");
        b.build().unwrap()
    }

    #[test]
    fn exact_mode_when_space_fits() {
        let m = table_expression();
        let sample = enumerate_or_sample(&m, &[], 64, false);
        assert!(sample.exact);
        assert_eq!(sample.total, Some(12));
        assert_eq!(sample.configs.len(), 12);
        assert!(sample.coverage.is_none());
    }

    #[test]
    fn forced_sampling_achieves_full_pairwise_coverage() {
        let m = table_expression();
        let sample = enumerate_or_sample(&m, &[], 64, true);
        assert!(!sample.exact);
        let cov = sample.coverage.expect("sampled mode has coverage");
        assert_eq!(cov.variables, 4);
        // having=on & group_by=off is the one impossible combination.
        assert_eq!(cov.proven_invalid, 1);
        assert!(cov.complete(), "uncovered: {:?}", cov.uncovered);
        assert!(sample.configs.len() <= 12);
        for c in &sample.configs {
            assert!(m.validate(c).is_ok(), "invalid sampled config {c}");
        }
    }

    #[test]
    fn limit_shortfall_is_reported_not_hidden() {
        let m = table_expression();
        let sample = enumerate_or_sample(&m, &[], 1, true);
        let cov = sample.coverage.unwrap();
        assert!(!cov.complete());
        assert!(!cov.uncovered.is_empty());
        assert_eq!(cov.covered + cov.uncovered.len(), cov.required);
        // Deterministic: same call, same shortfall.
        let again = enumerate_or_sample(&m, &[], 1, true).coverage.unwrap();
        assert_eq!(cov, again);
    }

    #[test]
    fn seeds_are_included_and_counted_for_coverage() {
        let m = table_expression();
        let seed = Configuration::of([
            "table_expression",
            "from",
            "where",
            "group_by",
            "having",
            "window",
        ]);
        let sample = enumerate_or_sample(&m, std::slice::from_ref(&seed), 64, true);
        assert!(sample.configs.contains(&seed));
        // An invalid seed is ignored rather than propagated.
        let bad = Configuration::of(["table_expression", "having"]);
        let sample = enumerate_or_sample(&m, std::slice::from_ref(&bad), 64, true);
        assert!(!sample.configs.contains(&bad));
    }

    #[test]
    fn resolve_open_choices_picks_first_member_deterministically() {
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        let q = b.mandatory(r, "q");
        b.xor(q, &["all", "distinct"]);
        let m = b.build().unwrap();
        let partial = complete(&m, &Configuration::new()).unwrap();
        let resolved = resolve_open_choices(&m, &partial, &Configuration::new()).unwrap();
        assert!(resolved.contains("all"), "first member wins: {resolved}");
        // Avoiding the first member falls through to the second.
        let avoided =
            resolve_open_choices(&m, &partial, &Configuration::of(["all"])).unwrap();
        assert!(avoided.contains("distinct"));
        // Avoiding both makes resolution impossible.
        assert!(
            resolve_open_choices(&m, &partial, &Configuration::of(["all", "distinct"])).is_none()
        );
    }

    #[test]
    fn combo_classification_is_sound() {
        let m = table_expression();
        let id = |n: &str| m.id_of(n).unwrap();
        assert_eq!(
            classify_combo(&m, (id("having"), true), (id("group_by"), false)),
            ComboProof::ProvenInvalid
        );
        assert_eq!(
            classify_combo(&m, (id("where"), true), (id("window"), false)),
            ComboProof::Realizable
        );
    }

    #[test]
    fn closure_proofs_catch_xor_siblings_and_requires() {
        // Force the closure path by making the model uncountable is hard to
        // set up small; instead call the closure helper directly.
        let mut b = ModelBuilder::new("m");
        let r = b.root();
        let q = b.mandatory(r, "q");
        b.xor(q, &["all", "distinct"]);
        b.optional(r, "x");
        b.optional(r, "y");
        b.requires("x", "y");
        let m = b.build().unwrap();
        let both = complete(&m, &Configuration::of(["all", "distinct"])).unwrap();
        assert!(closure_proves_invalid(&m, &both, &[]), "XOR overfill");
        let xc = complete(&m, &Configuration::of(["x"])).unwrap();
        assert!(closure_proves_invalid(&m, &xc, &["y"]), "requires closure");
        assert!(!closure_proves_invalid(&m, &xc, &[]));
    }
}

//! Rendering of feature diagrams as ASCII trees and Graphviz DOT.
//!
//! The ASCII form regenerates the paper's Figures 1 and 2 in textual form;
//! the DOT form can be piped through `dot -Tpng` to obtain graphical
//! diagrams in the conventional FODA notation (filled circles for mandatory,
//! hollow for optional, arcs for groups — approximated with edge labels).

use crate::model::{FeatureId, FeatureModel, GroupKind, Optionality};
use std::fmt::Write as _;

/// Render the diagram as an indented ASCII tree.
///
/// Notation: `[m]` mandatory, `[o]` optional, `<xor>`/`<or>` group headers,
/// trailing `[1..*]` style instance cardinalities, and a footer listing
/// cross-tree constraints.
pub fn ascii(model: &FeatureModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} (concept)", model.root().title);
    render_children(model, FeatureId::ROOT, &mut out, String::new());
    if !model.constraints().is_empty() {
        let _ = writeln!(out, "constraints:");
        for c in model.constraints() {
            let (a, b) = c.endpoints();
            let verb = match c {
                crate::model::Constraint::Requires(..) => "requires",
                crate::model::Constraint::Excludes(..) => "excludes",
            };
            let _ = writeln!(
                out,
                "  {} {} {}",
                model.feature(a).name,
                verb,
                model.feature(b).name
            );
        }
    }
    out
}

/// One renderable row under a parent: either a solitary child or a group.
enum Row {
    Solitary(FeatureId),
    Group(usize),
}

fn rows_of(model: &FeatureModel, parent: FeatureId) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut seen_groups = Vec::new();
    for &child in &model.feature(parent).children {
        match model.feature(child).group {
            None => rows.push(Row::Solitary(child)),
            Some(g) => {
                if !seen_groups.contains(&g) {
                    seen_groups.push(g);
                    rows.push(Row::Group(g));
                }
            }
        }
    }
    rows
}

fn feature_label(model: &FeatureModel, id: FeatureId, mark: &str) -> String {
    let f = model.feature(id);
    let card = f
        .cardinality
        .map(|c| format!(" {c}"))
        .unwrap_or_default();
    format!("{mark} {}{card}", f.title)
}

fn render_children(model: &FeatureModel, parent: FeatureId, out: &mut String, prefix: String) {
    let rows = rows_of(model, parent);
    let n = rows.len();
    for (i, row) in rows.iter().enumerate() {
        let last = i + 1 == n;
        let branch = if last { "`-- " } else { "|-- " };
        let child_prefix = format!("{prefix}{}", if last { "    " } else { "|   " });
        match row {
            Row::Solitary(id) => {
                let mark = match model.feature(*id).optionality {
                    Optionality::Mandatory => "[m]",
                    Optionality::Optional => "[o]",
                };
                let _ = writeln!(out, "{prefix}{branch}{}", feature_label(model, *id, mark));
                render_children(model, *id, out, child_prefix);
            }
            Row::Group(g) => {
                let group = &model.groups()[*g];
                let _ = writeln!(out, "{prefix}{branch}<{}>", group.kind);
                let members = &group.members;
                for (j, &m) in members.iter().enumerate() {
                    let mlast = j + 1 == members.len();
                    let mbranch = if mlast { "`-- " } else { "|-- " };
                    let _ = writeln!(
                        out,
                        "{child_prefix}{mbranch}{}",
                        feature_label(model, m, "( )")
                    );
                    let mprefix =
                        format!("{child_prefix}{}", if mlast { "    " } else { "|   " });
                    render_children(model, m, out, mprefix);
                }
            }
        }
    }
}

/// Render the diagram as Graphviz DOT.
pub fn dot(model: &FeatureModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", model.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for (id, f) in model.iter() {
        let style = match (id == FeatureId::ROOT, f.optionality) {
            (true, _) => "bold",
            (_, Optionality::Mandatory) => "solid",
            (_, Optionality::Optional) => "dashed",
        };
        let card = f
            .cardinality
            .map(|c| format!("\\n{c}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  n{} [label=\"{}{}\", style={}];",
            id.index(),
            f.title,
            card,
            style
        );
    }
    for (id, f) in model.iter() {
        if let Some(parent) = f.parent {
            let label = match f.group.map(|g| model.groups()[g].kind) {
                Some(GroupKind::Or) => " [label=\"or\", arrowhead=odot]",
                Some(GroupKind::Xor) => " [label=\"xor\", arrowhead=odiamond]",
                Some(GroupKind::Card { .. }) => " [label=\"card\"]",
                None => match f.optionality {
                    Optionality::Mandatory => " [arrowhead=dot]",
                    Optionality::Optional => " [arrowhead=odot]",
                },
            };
            let _ = writeln!(out, "  n{} -> n{}{};", parent.index(), id.index(), label);
        }
    }
    for c in model.constraints() {
        let (a, b) = c.endpoints();
        let (style, label) = match c {
            crate::model::Constraint::Requires(..) => ("dotted", "requires"),
            crate::model::Constraint::Excludes(..) => ("dotted", "excludes"),
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={}, label=\"{}\", constraint=false];",
            a.index(),
            b.index(),
            style,
            label
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cardinality, ModelBuilder};

    /// Figure 1 of the paper.
    fn figure1() -> FeatureModel {
        let mut b = ModelBuilder::new("query_specification");
        let root = b.root();
        let sq = b.optional(root, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let sl = b.mandatory(root, "select_list");
        b.or(sl, &["select_sublist", "asterisk"]);
        let ss = b.by_name_id("select_sublist");
        b.with_cardinality(ss, Cardinality::ONE_OR_MORE);
        let dc = b.optional(ss, "derived_column");
        b.optional(dc, "as_clause");
        b.mandatory(root, "table_expression");
        b.build().unwrap()
    }

    #[test]
    fn ascii_contains_all_features() {
        let m = figure1();
        let a = ascii(&m);
        for (_, f) in m.iter() {
            assert!(
                a.contains(f.title.as_str()),
                "missing {} in:\n{a}",
                f.title
            );
        }
    }

    #[test]
    fn ascii_marks_optionality_and_groups() {
        let m = figure1();
        let a = ascii(&m);
        assert!(a.contains("[o] Set Quantifier"));
        assert!(a.contains("[m] Table Expression"));
        assert!(a.contains("<xor>"));
        assert!(a.contains("<or>"));
        assert!(a.contains("[1..*]"));
    }

    #[test]
    fn dot_is_well_formed() {
        let m = figure1();
        let d = dot(&m);
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
        assert!(d.matches("->").count() >= m.len() - 1);
        // every node declared
        for (id, _) in m.iter() {
            assert!(d.contains(&format!("n{} [label=", id.index())));
        }
    }

    #[test]
    fn constraints_rendered() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        assert!(ascii(&m).contains("a requires b"));
        assert!(dot(&m).contains("label=\"requires\""));
    }
}

//! Exact counting and bounded enumeration of valid configurations.
//!
//! Counting uses a dynamic program over the feature tree. Groups are handled
//! with a subset-size polynomial: each member `m` contributes a factor
//! `(1 + count(m)·x)`; the group's contribution is the sum of coefficients of
//! `x^k` for `k` within the group bounds. Cross-tree constraints are handled
//! by *splitting*: the features mentioned in constraints are enumerated over
//! all constraint-consistent true/false assignments, and the tree DP is run
//! with those features forced. This is exact and fast as long as the number
//! of constraint-involved features is modest (it is small in every SQL
//! diagram of this product line; the implementation caps it at
//! [`MAX_SPLIT_FEATURES`]).

use crate::config::Configuration;
use crate::model::{Constraint, FeatureId, FeatureModel};
use crate::validate::validate;
use std::collections::BTreeSet;

/// Upper bound on distinct features referenced by constraints before
/// [`count_configurations`] refuses to split (2^n assignments).
pub const MAX_SPLIT_FEATURES: usize = 24;

/// Tri-state forcing for the DP.
type Forced = Vec<Option<bool>>;

/// Number of valid subtree configurations of `f`, **given `f` is selected**,
/// honoring `forced`.
fn count_subtree(model: &FeatureModel, f: FeatureId, forced: &Forced) -> u128 {
    if forced[f.index()] == Some(false) {
        return 0;
    }
    let feat = model.feature(f);
    let mut total: u128 = 1;

    // Solitary children.
    for &child in &feat.children {
        let c = model.feature(child);
        if c.group.is_some() {
            continue;
        }
        let child_count = count_subtree(model, child, forced);
        let factor = if c.optionality.is_mandatory() {
            child_count
        } else {
            match forced[child.index()] {
                Some(true) => child_count,
                Some(false) => 1,
                None => 1 + child_count,
            }
        };
        total = total.saturating_mul(factor);
        if total == 0 {
            return 0;
        }
    }

    // Groups owned by this feature.
    for group in model.groups().iter().filter(|g| g.parent == f) {
        // poly[k] = number of ways to select exactly k members (with their
        // subtrees configured).
        let mut poly: Vec<u128> = vec![1];
        for &m in &group.members {
            let m_count = count_subtree(model, m, forced);
            let (can_skip, can_take) = match forced[m.index()] {
                Some(true) => (false, true),
                Some(false) => (true, false),
                None => (true, true),
            };
            let mut next = vec![0u128; poly.len() + 1];
            for (k, &ways) in poly.iter().enumerate() {
                if can_skip {
                    next[k] = next[k].saturating_add(ways);
                }
                if can_take {
                    next[k + 1] = next[k + 1].saturating_add(ways.saturating_mul(m_count));
                }
            }
            poly = next;
        }
        let (min, max) = group.kind.bounds(group.members.len());
        let mut group_ways: u128 = 0;
        for (k, &ways) in poly.iter().enumerate() {
            if k as u32 >= min && k as u32 <= max {
                group_ways = group_ways.saturating_add(ways);
            }
        }
        total = total.saturating_mul(group_ways);
        if total == 0 {
            return 0;
        }
    }
    total
}

/// Count configurations of the whole model under a forcing vector,
/// ignoring cross-tree constraints (callers handle those by splitting).
pub(crate) fn count_subtree_forced(model: &FeatureModel, forced: &Forced) -> u128 {
    count_subtree(model, FeatureId::ROOT, forced)
}

/// `true` if the assignment over constraint features is internally
/// consistent with every constraint whose endpoints are both assigned.
fn assignment_consistent(model: &FeatureModel, forced: &Forced) -> bool {
    model.constraints().iter().all(|&c| match c {
        Constraint::Requires(a, b) => {
            !(forced[a.index()] == Some(true) && forced[b.index()] == Some(false))
        }
        Constraint::Excludes(a, b) => {
            !(forced[a.index()] == Some(true) && forced[b.index()] == Some(true))
        }
    })
}

/// Exact number of valid configurations of `model`.
///
/// Saturates at `u128::MAX` on (astronomically) large models. Panics if more
/// than [`MAX_SPLIT_FEATURES`] distinct features appear in constraints; use
/// [`try_count_configurations`] to handle that case gracefully.
pub fn count_configurations(model: &FeatureModel) -> u128 {
    try_count_configurations(model, MAX_SPLIT_FEATURES).unwrap_or_else(|| {
        panic!(
            "model `{}` has too many constraint-involved features; counting would need 2^n splits beyond the cap",
            model.name()
        )
    })
}

/// Exact counting with an explicit split cap: returns `None` when more than
/// `max_split` distinct features appear in constraints (2^n assignments
/// would be required).
pub fn try_count_configurations(model: &FeatureModel, max_split: usize) -> Option<u128> {
    let base: Forced = vec![None; model.len()];
    count_with_splitting(model, &base, max_split)
}

/// Exact counting with extra forced feature assignments (e.g. "feature `a`
/// selected, feature `b` deselected"), splitting over constraint-involved
/// features as [`try_count_configurations`] does.
///
/// `Some(0)` is a *proof* that no valid configuration satisfies the
/// assignment; `Some(n > 0)` proves `n` do. Returns `None` when counting
/// would need more than `max_split` splits.
pub fn try_count_with_forced(
    model: &FeatureModel,
    assignments: &[(FeatureId, bool)],
    max_split: usize,
) -> Option<u128> {
    let mut base: Forced = vec![None; model.len()];
    for &(f, v) in assignments {
        match base[f.index()] {
            Some(old) if old != v => return Some(0),
            _ => base[f.index()] = Some(v),
        }
    }
    count_with_splitting(model, &base, max_split)
}

/// Shared core of the counting entry points: close the base assignment
/// upward, then split over constraint-involved features.
fn count_with_splitting(model: &FeatureModel, base: &Forced, max_split: usize) -> Option<u128> {
    let mut base = base.clone();
    if !propagate_selected_up(model, &mut base) {
        return Some(0);
    }

    let involved: BTreeSet<FeatureId> = model
        .constraints()
        .iter()
        .flat_map(|c| {
            let (a, b) = c.endpoints();
            [a, b]
        })
        .collect();
    let involved: Vec<FeatureId> = involved
        .into_iter()
        .filter(|f| base[f.index()].is_none())
        .collect();
    if involved.len() > max_split.min(MAX_SPLIT_FEATURES) {
        return None;
    }

    if involved.is_empty() {
        if !assignment_consistent(model, &base) {
            return Some(0);
        }
        return Some(count_subtree(model, FeatureId::ROOT, &base));
    }

    let mut total: u128 = 0;
    for mask in 0u64..(1u64 << involved.len()) {
        let mut forced: Forced = base.clone();
        for (bit, &fid) in involved.iter().enumerate() {
            forced[fid.index()] = Some(mask & (1 << bit) != 0);
        }
        if !propagate_selected_up(model, &mut forced) {
            continue;
        }
        if !assignment_consistent(model, &forced) {
            continue;
        }
        total = total.saturating_add(count_subtree(model, FeatureId::ROOT, &forced));
    }
    Some(total)
}

/// Force the ancestors of every forced-true feature to true (a selected
/// feature implies its whole ancestor chain). Returns `false` on
/// contradiction (an ancestor already forced false).
///
/// Without this closure the tree DP would count the "parent absent" branch
/// of an optional ancestor as compatible with a forced-true descendant,
/// double-counting those configurations across split assignments.
fn propagate_selected_up(model: &FeatureModel, forced: &mut Forced) -> bool {
    for (id, _) in model.iter() {
        if forced[id.index()] != Some(true) {
            continue;
        }
        let mut cur = id;
        while let Some(parent) = model.feature(cur).parent {
            match forced[parent.index()] {
                Some(false) => return false,
                Some(true) => break,
                None => forced[parent.index()] = Some(true),
            }
            cur = parent;
        }
    }
    true
}

/// Enumerate valid configurations, stopping after `limit` results.
///
/// # Limit semantics
///
/// The tree's choice points (optional solitary features and group member
/// subsets) are explored in a fixed depth-first order — children in
/// declaration order, "taken" before "skipped", group subsets in ascending
/// bitmask order — and every structurally complete selection is filtered by
/// full validation (which applies cross-tree constraints). Exploration
/// stops as soon as `limit` valid configurations have been found, so cost
/// is proportional to the part of the space actually visited rather than
/// its total size: a model with 2^200 configurations and `limit = 3`
/// returns promptly.
///
/// # Guarantees
///
/// The result is deterministic, free of duplicates, and **sorted** by each
/// configuration's canonical rendering. Whenever
/// `count_configurations(model) <= limit` the result is exactly the whole
/// configuration space (the enumeration's length equals the count), making
/// this a complete family enumeration for small models.
pub fn enumerate_configurations(model: &FeatureModel, limit: usize) -> Vec<Configuration> {
    let mut out: Vec<Configuration> = Vec::new();
    if limit > 0 {
        let mut selected = vec![false; model.len()];
        selected[FeatureId::ROOT.index()] = true;
        let mut emit = |model: &FeatureModel, sel: &mut Vec<bool>| {
            let config = Configuration::of(
                model
                    .iter()
                    .filter(|(id, _)| sel[id.index()])
                    .map(|(_, feat)| feat.name.clone()),
            );
            if validate(model, &config).is_ok() {
                out.push(config);
            }
            out.len() < limit
        };
        expand_feature_children(model, FeatureId::ROOT, &mut selected, &mut emit);
    }
    out.sort_by_key(|c| c.to_string());
    out
}

/// Explore every completion of `f`'s children (`f` itself must already be
/// marked selected), invoking `k` at each structurally complete point.
/// `k` returns `false` to stop the whole exploration; the stop propagates
/// through the return value.
fn expand_feature_children(
    model: &FeatureModel,
    f: FeatureId,
    selected: &mut Vec<bool>,
    k: &mut dyn FnMut(&FeatureModel, &mut Vec<bool>) -> bool,
) -> bool {
    let feat = model.feature(f);
    let solitary: Vec<FeatureId> = feat
        .children
        .iter()
        .copied()
        .filter(|&c| model.feature(c).group.is_none())
        .collect();
    let groups: Vec<usize> = model
        .groups()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.parent == f)
        .map(|(i, _)| i)
        .collect();
    expand_children(model, &solitary, &groups, 0, 0, selected, k)
}

/// Expand choice points of one feature: first solitary children (index
/// `si`), then groups (index `gi`). When both are exhausted, the current
/// `selected` is one completion and `k` is invoked on it.
fn expand_children(
    model: &FeatureModel,
    solitary: &[FeatureId],
    groups: &[usize],
    si: usize,
    gi: usize,
    selected: &mut Vec<bool>,
    k: &mut dyn FnMut(&FeatureModel, &mut Vec<bool>) -> bool,
) -> bool {
    if si < solitary.len() {
        let child = solitary[si];
        let mandatory = model.feature(child).optionality.is_mandatory();
        // Take the child: expand its own subtree, and at each of its
        // completion points, continue with the remaining siblings.
        {
            let kk = &mut *k;
            let mut cont = |model: &FeatureModel, selected: &mut Vec<bool>| {
                expand_children(model, solitary, groups, si + 1, gi, selected, kk)
            };
            if !with_child_taken(model, child, selected, &mut cont) {
                return false;
            }
        }
        // Skip the child if optional.
        if !mandatory {
            return expand_children(model, solitary, groups, si + 1, gi, selected, k);
        }
        return true;
    }
    if gi < groups.len() {
        let g = &model.groups()[groups[gi]];
        let members = g.members.clone();
        let (min, max) = g.kind.bounds(members.len());
        for mask in 0u64..(1u64 << members.len()) {
            let count = mask.count_ones();
            if count < min || count > max {
                continue;
            }
            let kk = &mut *k;
            let mut cont = |model: &FeatureModel, selected: &mut Vec<bool>| {
                expand_children(model, solitary, groups, si, gi + 1, selected, kk)
            };
            if !take_masked_members(model, &members, mask, 0, selected, &mut cont) {
                return false;
            }
        }
        return true;
    }
    k(model, selected)
}

/// Mark `child` selected, expand its subtree (invoking `k` at each
/// completion point), then clear its mark again. Descendant marks are
/// cleared by their own expansion frames on unwind.
fn with_child_taken(
    model: &FeatureModel,
    child: FeatureId,
    selected: &mut Vec<bool>,
    k: &mut dyn FnMut(&FeatureModel, &mut Vec<bool>) -> bool,
) -> bool {
    selected[child.index()] = true;
    let go = expand_feature_children(model, child, selected, k);
    selected[child.index()] = false;
    go
}

/// Take exactly the members of `members` whose bit is set in `mask`
/// (expanding each taken member's subtree), then invoke `k`.
fn take_masked_members(
    model: &FeatureModel,
    members: &[FeatureId],
    mask: u64,
    i: usize,
    selected: &mut Vec<bool>,
    k: &mut dyn FnMut(&FeatureModel, &mut Vec<bool>) -> bool,
) -> bool {
    if i == members.len() {
        return k(model, selected);
    }
    if mask & (1 << i) != 0 {
        let kk = &mut *k;
        let mut cont = |model: &FeatureModel, selected: &mut Vec<bool>| {
            take_masked_members(model, members, mask, i + 1, selected, kk)
        };
        with_child_taken(model, members[i], selected, &mut cont)
    } else {
        take_masked_members(model, members, mask, i + 1, selected, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBuilder;

    /// Figure 2: from mandatory; where/group_by/having/window optional,
    /// having requires group_by.
    fn table_expression() -> FeatureModel {
        let mut b = ModelBuilder::new("table_expression");
        let root = b.root();
        b.mandatory(root, "from");
        b.optional(root, "where");
        b.optional(root, "group_by");
        b.optional(root, "having");
        b.optional(root, "window");
        b.requires("having", "group_by");
        b.build().unwrap()
    }

    #[test]
    fn count_simple_optionals() {
        // root + 3 optionals, no constraints: 2^3 = 8.
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.optional(r, "x");
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 8);
    }

    #[test]
    fn count_mandatory_is_neutral() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.mandatory(r, "m");
        b.optional(r, "o");
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 2);
    }

    #[test]
    fn count_xor_group() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.xor(r, &["a", "b", "x"]);
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 3);
    }

    #[test]
    fn count_or_group() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.or(r, &["a", "b", "x"]);
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 7); // 2^3 - 1
    }

    #[test]
    fn count_card_group() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.group(r, crate::GroupKind::Card { min: 2, max: Some(2) }, &["a", "b", "x"]);
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 3); // C(3,2)
    }

    #[test]
    fn count_with_requires() {
        // where: 2 choices; window: 2; (group_by, having): having requires
        // group_by -> 3 combos (00, 10, 11). Total 2*2*3 = 12.
        let m = table_expression();
        assert_eq!(count_configurations(&m), 12);
    }

    #[test]
    fn count_with_excludes() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.excludes("a", "b");
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 3); // {}, {a}, {b}
    }

    #[test]
    fn count_nested_optional_subtree() {
        // optional parent with an XOR group: 1 (absent) + 2 (present w/ choice).
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        let sq = b.optional(r, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 3);
    }

    #[test]
    fn enumeration_matches_count() {
        let m = table_expression();
        let configs = enumerate_configurations(&m, 1000);
        assert_eq!(configs.len() as u128, count_configurations(&m));
        // all distinct and valid
        for c in &configs {
            assert!(m.validate(c).is_ok(), "invalid enumerated config {c}");
        }
        let set: std::collections::BTreeSet<String> =
            configs.iter().map(|c| c.to_string()).collect();
        assert_eq!(set.len(), configs.len());
    }

    #[test]
    fn enumeration_respects_limit() {
        let m = table_expression();
        let configs = enumerate_configurations(&m, 5);
        assert_eq!(configs.len(), 5);
    }

    #[test]
    fn enumeration_with_nested_groups_matches_count() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        let sq = b.optional(r, "q");
        b.xor(sq, &["all", "distinct"]);
        let sl = b.mandatory(r, "sl");
        b.or(sl, &["col", "star"]);
        b.optional(r, "w");
        let m = b.build().unwrap();
        // q: 1+2=3; sl: 3 (or of 2); w: 2 => 18
        assert_eq!(count_configurations(&m), 18);
        assert_eq!(enumerate_configurations(&m, 10_000).len(), 18);
    }

    #[test]
    fn enumeration_is_sorted_and_deterministic() {
        let m = table_expression();
        let configs = enumerate_configurations(&m, 1000);
        let mut rendered: Vec<String> = configs.iter().map(|c| c.to_string()).collect();
        let mut sorted = rendered.clone();
        sorted.sort();
        assert_eq!(rendered, sorted, "enumeration must come back sorted");
        rendered.dedup();
        assert_eq!(rendered.len(), configs.len());
        assert_eq!(configs, enumerate_configurations(&m, 1000));
    }

    /// 160 independent optionals: 2^160 configurations. The count saturates
    /// instead of overflowing, and enumeration with a small limit must
    /// early-terminate rather than materialize the space.
    #[test]
    fn count_saturates_and_enumeration_early_terminates_on_huge_models() {
        let mut b = ModelBuilder::new("huge");
        let r = b.root();
        for i in 0..160 {
            b.optional(r, &format!("f{i:03}"));
        }
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), u128::MAX, "count must saturate");
        let configs = enumerate_configurations(&m, 3);
        assert_eq!(configs.len(), 3);
        for c in &configs {
            assert!(m.validate(c).is_ok());
        }
    }

    /// Regression: constraint features under an *optional* parent. The
    /// split over constraint assignments must force the ancestor chain of
    /// each forced-true feature, or the "parent absent" DP branch is
    /// counted once per assignment (6 instead of 4 here).
    #[test]
    fn split_counting_forces_ancestors_of_constraint_features() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        let p = b.optional(r, "p");
        b.optional(p, "a");
        b.optional(p, "b");
        b.requires("a", "b");
        let m = b.build().unwrap();
        // Valid: {}, {p}, {p,b}, {p,a,b}.
        assert_eq!(count_configurations(&m), 4);
        assert_eq!(enumerate_configurations(&m, 100).len(), 4);
    }

    #[test]
    fn forced_counting_proves_pair_validity() {
        let m = table_expression();
        let id = |n: &str| m.id_of(n).unwrap();
        // having without group_by is impossible...
        assert_eq!(
            try_count_with_forced(&m, &[(id("having"), true), (id("group_by"), false)], 24),
            Some(0)
        );
        // ...but co-selecting them leaves where/window free: 4 configs.
        assert_eq!(
            try_count_with_forced(&m, &[(id("having"), true), (id("group_by"), true)], 24),
            Some(4)
        );
        // Contradictory assignment is proven empty outright.
        assert_eq!(
            try_count_with_forced(&m, &[(id("where"), true), (id("where"), false)], 24),
            Some(0)
        );
        // Unconstrained call agrees with the plain count.
        assert_eq!(try_count_with_forced(&m, &[], 24), Some(12));
    }

    #[test]
    fn deep_nesting_count() {
        // chain of optional features 5 deep: each level present only if the
        // previous is. counts: 1 + 1*(1 + (1 + (1 + (1 + 1)))) telescoping:
        // f(leaf)=1; each optional wrap: 1+f. depth 5 -> 6.
        let mut b = ModelBuilder::new("c");
        let mut cur = b.root();
        for i in 0..5 {
            cur = b.optional(cur, &format!("lvl{i}"));
        }
        let m = b.build().unwrap();
        assert_eq!(count_configurations(&m), 6);
        assert_eq!(enumerate_configurations(&m, 100).len(), 6);
    }
}

//! Core feature-diagram data types.
//!
//! A [`FeatureModel`] is an immutable tree of [`Feature`]s. Child features of
//! a parent are either *solitary* (individually mandatory or optional) or
//! members of exactly one [`Group`] (OR, alternative/XOR, or an explicit
//! `[m..n]` group cardinality). Cross-tree [`Constraint`]s (`requires`,
//! `excludes`) restrict which selections are valid.

use std::collections::HashMap;
use std::fmt;

/// Index of a feature inside its [`FeatureModel`].
///
/// Ids are dense (`0..model.len()`), with id `0` always the root concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureId(pub(crate) u32);

impl FeatureId {
    /// The root concept of every model.
    pub const ROOT: FeatureId = FeatureId(0);

    /// The dense index of this feature.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Whether a solitary feature must be selected whenever its parent is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Optionality {
    /// Selected in every configuration that selects the parent.
    Mandatory,
    /// May be freely included or omitted.
    Optional,
}

impl Optionality {
    /// `true` for [`Optionality::Mandatory`].
    pub fn is_mandatory(self) -> bool {
        matches!(self, Optionality::Mandatory)
    }
}

/// Instance cardinality annotation on a feature, e.g. the paper's
/// `Select Sublist [1..*]`.
///
/// Cardinality is *metadata* interpreted by the grammar layer (it selects a
/// list-shaped sub-grammar); it does not change configuration semantics,
/// which are per-feature boolean selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cardinality {
    /// Minimum number of instances.
    pub min: u32,
    /// Maximum number of instances; `None` means unbounded (`*`).
    pub max: Option<u32>,
}

impl Cardinality {
    /// `[1..*]` — one or more instances.
    pub const ONE_OR_MORE: Cardinality = Cardinality { min: 1, max: None };
    /// `[0..*]` — any number of instances.
    pub const ANY: Cardinality = Cardinality { min: 0, max: None };

    /// Construct `[min..max]`.
    pub fn new(min: u32, max: Option<u32>) -> Self {
        Cardinality { min, max }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "[{}..{}]", self.min, max),
            None => write!(f, "[{}..*]", self.min),
        }
    }
}

/// How the grouped children of a feature constrain each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// At least one member must be selected (inclusive OR).
    Or,
    /// Exactly one member must be selected (alternative).
    Xor,
    /// Between `min` and `max` members must be selected.
    Card {
        /// Minimum number of selected members.
        min: u32,
        /// Maximum number of selected members; `None` = no upper bound.
        max: Option<u32>,
    },
}

impl GroupKind {
    /// The `(min, max)` selection bounds implied by this kind, where the
    /// effective max is capped by the member count at validation time.
    pub fn bounds(self, members: usize) -> (u32, u32) {
        let members = members as u32;
        match self {
            GroupKind::Or => (1, members),
            GroupKind::Xor => (1, 1),
            GroupKind::Card { min, max } => (min, max.unwrap_or(members).min(members)),
        }
    }
}

impl fmt::Display for GroupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKind::Or => write!(f, "or"),
            GroupKind::Xor => write!(f, "xor"),
            GroupKind::Card { min, max } => match max {
                Some(max) => write!(f, "[{min}..{max}]"),
                None => write!(f, "[{min}..*]"),
            },
        }
    }
}

/// A group of sibling features under one parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// The parent feature owning this group.
    pub parent: FeatureId,
    /// Group semantics.
    pub kind: GroupKind,
    /// The grouped features, in declaration order.
    pub members: Vec<FeatureId>,
}

/// A cross-tree constraint between two features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// Selecting the first feature forces selection of the second.
    Requires(FeatureId, FeatureId),
    /// The two features may never both be selected.
    Excludes(FeatureId, FeatureId),
}

impl Constraint {
    /// Both endpoints of the constraint.
    pub fn endpoints(self) -> (FeatureId, FeatureId) {
        match self {
            Constraint::Requires(a, b) | Constraint::Excludes(a, b) => (a, b),
        }
    }
}

/// One node of a feature diagram.
#[derive(Debug, Clone)]
pub struct Feature {
    /// Unique machine name (snake_case slug), e.g. `set_quantifier`.
    pub name: String,
    /// Human-readable title, e.g. `Set Quantifier`. Defaults to a
    /// title-cased form of `name`.
    pub title: String,
    /// Whether the feature is mandatory or optional relative to its parent.
    /// Members of a group are stored as [`Optionality::Optional`]; the group
    /// governs their selection.
    pub optionality: Optionality,
    /// Optional instance cardinality annotation (`[1..*]` etc.).
    pub cardinality: Option<Cardinality>,
    /// Parent feature, `None` only for the root concept.
    pub parent: Option<FeatureId>,
    /// Children in declaration order (both solitary and grouped).
    pub children: Vec<FeatureId>,
    /// Index into [`FeatureModel::groups`] if this feature is a group member.
    pub group: Option<usize>,
}

impl Feature {
    /// `true` if this feature belongs to an OR/XOR/cardinality group.
    pub fn is_grouped(&self) -> bool {
        self.group.is_some()
    }
}

/// An immutable, structurally valid feature diagram.
///
/// Construct with [`crate::ModelBuilder`]. Invariants guaranteed after
/// `build()`:
///
/// * ids are dense and `FeatureId::ROOT` is the concept node;
/// * names are unique;
/// * every group has ≥ 2 members, all sharing the group's parent;
/// * constraints reference existing features and are not self-referential.
#[derive(Debug, Clone)]
pub struct FeatureModel {
    pub(crate) features: Vec<Feature>,
    pub(crate) groups: Vec<Group>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) by_name: HashMap<String, FeatureId>,
}

impl FeatureModel {
    /// The root concept feature.
    pub fn root(&self) -> &Feature {
        &self.features[0]
    }

    /// Name of the root concept (also used as the diagram name).
    pub fn name(&self) -> &str {
        &self.features[0].name
    }

    /// Number of features, including the root concept.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if the model contains only the root (degenerate but legal).
    pub fn is_empty(&self) -> bool {
        self.features.len() <= 1
    }

    /// Look up a feature by id.
    pub fn feature(&self, id: FeatureId) -> &Feature {
        &self.features[id.index()]
    }

    /// Look up a feature id by name.
    pub fn id_of(&self, name: &str) -> Option<FeatureId> {
        self.by_name.get(name).copied()
    }

    /// Look up a feature by name.
    pub fn by_name(&self, name: &str) -> Option<&Feature> {
        self.id_of(name).map(|id| self.feature(id))
    }

    /// Iterate over `(id, feature)` pairs in id order (which is also a
    /// topological pre-order: parents precede children).
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, &Feature)> {
        self.features
            .iter()
            .enumerate()
            .map(|(i, f)| (FeatureId(i as u32), f))
    }

    /// All groups in the model.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// All cross-tree constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The group a feature belongs to, if any.
    pub fn group_of(&self, id: FeatureId) -> Option<&Group> {
        self.feature(id).group.map(|g| &self.groups[g])
    }

    /// Walk ancestors from `id` (exclusive) up to and including the root.
    pub fn ancestors(&self, id: FeatureId) -> impl Iterator<Item = FeatureId> + '_ {
        let mut cur = self.feature(id).parent;
        std::iter::from_fn(move || {
            let next = cur?;
            cur = self.feature(next).parent;
            Some(next)
        })
    }

    /// All descendant ids of `id` (exclusive), in pre-order.
    pub fn descendants(&self, id: FeatureId) -> Vec<FeatureId> {
        let mut out = Vec::new();
        let mut stack: Vec<FeatureId> = self.feature(id).children.iter().rev().copied().collect();
        while let Some(f) = stack.pop() {
            out.push(f);
            stack.extend(self.feature(f).children.iter().rev().copied());
        }
        out
    }

    /// Depth of a feature (root = 0).
    pub fn depth(&self, id: FeatureId) -> usize {
        self.ancestors(id).count()
    }

    /// Validate a configuration; convenience for [`crate::validate::validate`].
    pub fn validate(
        &self,
        config: &crate::Configuration,
    ) -> Result<(), crate::error::ValidationError> {
        crate::validate::validate(self, config)
    }

    /// Auto-complete a partial selection; convenience for
    /// [`crate::complete::complete`].
    pub fn complete(
        &self,
        config: &crate::Configuration,
    ) -> Result<crate::Configuration, crate::error::ValidationError> {
        crate::complete::complete(self, config)
    }

    /// Exact number of valid configurations; convenience for
    /// [`crate::count::count_configurations`].
    pub fn count_configurations(&self) -> u128 {
        crate::count::count_configurations(self)
    }

    /// Extract the subtree rooted at `root` as a standalone model.
    ///
    /// The subtree feature becomes the new concept; optionality, groups,
    /// cardinalities and titles are preserved, and cross-tree constraints
    /// are kept when both endpoints lie inside the subtree. This is how the
    /// paper's individual feature diagrams (Figures 1, 2, …) are obtained
    /// from the merged SQL:2003 model.
    pub fn subtree(&self, root: FeatureId) -> FeatureModel {
        let mut b = crate::ModelBuilder::new(self.feature(root).name.clone());
        {
            let title = self.feature(root).title.clone();
            b.with_title(FeatureId::ROOT, &title);
            if let Some(card) = self.feature(root).cardinality {
                b.with_cardinality(FeatureId::ROOT, card);
            }
        }
        // Map old ids to new ids, walking in pre-order so parents exist.
        let mut map: HashMap<FeatureId, FeatureId> = HashMap::new();
        map.insert(root, FeatureId::ROOT);
        let members: Vec<FeatureId> = std::iter::once(root)
            .chain(self.descendants(root))
            .collect();
        // Track which groups we've already re-created.
        let mut group_done: Vec<bool> = vec![false; self.groups.len()];
        for &old in &members[1..] {
            if map.contains_key(&old) {
                continue;
            }
            let feat = self.feature(old);
            let new_parent = map[&feat.parent.expect("non-root descendant has parent")];
            match feat.group {
                Some(g) if !group_done[g] => {
                    group_done[g] = true;
                    let group = &self.groups[g];
                    let names: Vec<&str> = group
                        .members
                        .iter()
                        .map(|&m| self.feature(m).name.as_str())
                        .collect();
                    let ids = b.group(new_parent, group.kind, &names);
                    for (&m, &nid) in group.members.iter().zip(ids.iter()) {
                        map.insert(m, nid);
                    }
                }
                Some(_) => unreachable!("group members map together"),
                None => {
                    let nid = match feat.optionality {
                        Optionality::Mandatory => b.mandatory(new_parent, &feat.name),
                        Optionality::Optional => b.optional(new_parent, &feat.name),
                    };
                    map.insert(old, nid);
                }
            }
            let nid = map[&old];
            b.with_title(nid, &feat.title);
            if let Some(card) = feat.cardinality {
                b.with_cardinality(nid, card);
            }
        }
        let inside: std::collections::HashSet<FeatureId> = members.iter().copied().collect();
        for c in &self.constraints {
            let (a, bb) = c.endpoints();
            if inside.contains(&a) && inside.contains(&bb) {
                let an = self.feature(a).name.as_str();
                let bn = self.feature(bb).name.as_str();
                match c {
                    Constraint::Requires(..) => b.requires(an, bn),
                    Constraint::Excludes(..) => b.excludes(an, bn),
                }
            }
        }
        b.build().expect("subtree of a valid model is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBuilder;

    fn sample() -> FeatureModel {
        // Figure 1 shape: query_specification with optional set_quantifier
        // (xor: all | distinct) and mandatory select_list.
        let mut b = ModelBuilder::new("query_specification");
        let root = b.root();
        let sq = b.optional(root, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let sl = b.mandatory(root, "select_list");
        let ss = b.mandatory(sl, "select_sublist");
        b.with_cardinality(ss, Cardinality::ONE_OR_MORE);
        b.build().unwrap()
    }

    #[test]
    fn root_is_id_zero() {
        let m = sample();
        assert_eq!(m.root().name, "query_specification");
        assert_eq!(m.id_of("query_specification"), Some(FeatureId::ROOT));
    }

    #[test]
    fn lookup_by_name() {
        let m = sample();
        let sq = m.by_name("set_quantifier").unwrap();
        assert_eq!(sq.optionality, Optionality::Optional);
        assert!(m.by_name("nonexistent").is_none());
    }

    #[test]
    fn xor_members_are_grouped() {
        let m = sample();
        let all = m.id_of("all").unwrap();
        let g = m.group_of(all).unwrap();
        assert_eq!(g.kind, GroupKind::Xor);
        assert_eq!(g.members.len(), 2);
        assert_eq!(g.parent, m.id_of("set_quantifier").unwrap());
    }

    #[test]
    fn ancestors_walk_to_root() {
        let m = sample();
        let sub = m.id_of("select_sublist").unwrap();
        let anc: Vec<_> = m.ancestors(sub).collect();
        assert_eq!(anc.len(), 2);
        assert_eq!(anc[1], FeatureId::ROOT);
    }

    #[test]
    fn descendants_preorder() {
        let m = sample();
        let d = m.descendants(FeatureId::ROOT);
        assert_eq!(d.len(), m.len() - 1);
        // set_quantifier subtree comes before select_list (declaration order)
        let names: Vec<_> = d.iter().map(|&f| m.feature(f).name.as_str()).collect();
        assert_eq!(
            names,
            ["set_quantifier", "all", "distinct", "select_list", "select_sublist"]
        );
    }

    #[test]
    fn depth() {
        let m = sample();
        assert_eq!(m.depth(FeatureId::ROOT), 0);
        assert_eq!(m.depth(m.id_of("all").unwrap()), 2);
    }

    #[test]
    fn subtree_extraction() {
        let mut b = ModelBuilder::new("sql_2003");
        let root = b.root();
        let qs = b.mandatory(root, "query_specification");
        let sq = b.optional(qs, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let te = b.mandatory(qs, "table_expression");
        b.mandatory(te, "from");
        b.optional(te, "where");
        let gbid = b.optional(te, "group_by");
        b.optional(te, "having");
        b.requires("having", "group_by");
        b.optional(root, "insert_statement");
        let _ = gbid;
        let m = b.build().unwrap();

        let sub = m.subtree(m.id_of("table_expression").unwrap());
        assert_eq!(sub.name(), "table_expression");
        assert_eq!(sub.len(), 5); // te, from, where, group_by, having
        assert!(sub.by_name("insert_statement").is_none());
        assert_eq!(sub.constraints().len(), 1); // having requires group_by
        assert_eq!(
            sub.by_name("from").unwrap().optionality,
            Optionality::Mandatory
        );

        // groups survive extraction
        let sub2 = m.subtree(m.id_of("set_quantifier").unwrap());
        assert_eq!(sub2.groups().len(), 1);
        assert_eq!(sub2.groups()[0].kind, GroupKind::Xor);
        // constraint crossing the subtree boundary is dropped
        let sub3 = m.subtree(m.id_of("query_specification").unwrap());
        assert_eq!(sub3.constraints().len(), 1);
        let sub4 = m.subtree(m.id_of("group_by").unwrap());
        assert_eq!(sub4.constraints().len(), 0);
        // counting works on extracted models
        assert!(sub.count_configurations() > 0);
    }

    #[test]
    fn cardinality_display() {
        assert_eq!(Cardinality::ONE_OR_MORE.to_string(), "[1..*]");
        assert_eq!(Cardinality::new(2, Some(5)).to_string(), "[2..5]");
    }

    #[test]
    fn group_kind_bounds() {
        assert_eq!(GroupKind::Or.bounds(3), (1, 3));
        assert_eq!(GroupKind::Xor.bounds(3), (1, 1));
        assert_eq!(GroupKind::Card { min: 0, max: Some(2) }.bounds(3), (0, 2));
        assert_eq!(GroupKind::Card { min: 1, max: None }.bounds(4), (1, 4));
    }
}

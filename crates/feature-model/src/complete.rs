//! Auto-completion of partial selections.
//!
//! Given a partial feature selection, [`complete`] adds every feature that is
//! *forced* by the selection: the root, ancestors of selected features,
//! mandatory solitary children of selected features, `requires` targets, and
//! sole members of XOR/OR groups when only one member exists to choose (never
//! the case for well-formed groups, but single-choice situations arise when
//! `excludes` constraints eliminate alternatives — handled conservatively by
//! leaving genuine choices open).
//!
//! Completion is a fixpoint computation; it never *removes* features and
//! never resolves genuine variability (an open XOR choice is reported by a
//! subsequent [`crate::validate::validate`] call, which the caller is
//! expected to run).

use crate::config::Configuration;
use crate::error::{ValidationError, Violation};
use crate::model::{Constraint, FeatureModel, Optionality};

/// Close `config` over all forced selections.
///
/// Returns the completed configuration. Fails only if the input names
/// unknown features (completion over a hostile selection is meaningless);
/// constraint conflicts (e.g. completion forcing both sides of an
/// `excludes`) surface when the caller validates the result.
pub fn complete(
    model: &FeatureModel,
    config: &Configuration,
) -> Result<Configuration, ValidationError> {
    let mut unknown_violations = Vec::new();
    let mut unknown_messages = Vec::new();
    let mut selected = vec![false; model.len()];
    for name in config.iter() {
        match model.id_of(name) {
            Some(id) => selected[id.index()] = true,
            None => {
                unknown_violations.push(Violation::UnknownFeature(name.to_string()));
                unknown_messages.push(format!(
                    "cannot complete: `{name}` is not a feature of `{}`",
                    model.name()
                ));
            }
        }
    }
    if !unknown_violations.is_empty() {
        return Err(ValidationError::new(unknown_violations, unknown_messages));
    }

    // Root is always part of any instance description.
    selected[0] = true;

    let mut changed = true;
    while changed {
        changed = false;
        for (id, feat) in model.iter() {
            if !selected[id.index()] {
                continue;
            }
            // Ancestors of a selected feature.
            if let Some(parent) = feat.parent {
                if !selected[parent.index()] {
                    selected[parent.index()] = true;
                    changed = true;
                }
            }
            // Mandatory solitary children of a selected feature.
            for &child in &feat.children {
                let c = model.feature(child);
                if c.group.is_none()
                    && c.optionality == Optionality::Mandatory
                    && !selected[child.index()]
                {
                    selected[child.index()] = true;
                    changed = true;
                }
            }
        }
        // Requires closure.
        for &c in model.constraints() {
            if let Constraint::Requires(a, b) = c {
                if selected[a.index()] && !selected[b.index()] {
                    selected[b.index()] = true;
                    changed = true;
                }
            }
        }
    }

    Ok(Configuration::of(
        model
            .iter()
            .filter(|(id, _)| selected[id.index()])
            .map(|(_, f)| f.name.clone()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, ModelBuilder};

    fn model() -> FeatureModel {
        let mut b = ModelBuilder::new("query_specification");
        let root = b.root();
        let sq = b.optional(root, "set_quantifier");
        b.xor(sq, &["all", "distinct"]);
        let sl = b.mandatory(root, "select_list");
        b.mandatory(sl, "select_sublist");
        let te = b.mandatory(root, "table_expression");
        b.mandatory(te, "from");
        b.optional(te, "where");
        b.optional(te, "group_by");
        b.optional(te, "having");
        b.requires("having", "group_by");
        b.build().unwrap()
    }

    #[test]
    fn empty_completes_to_mandatory_skeleton() {
        let m = model();
        let c = complete(&m, &Configuration::new()).unwrap();
        assert_eq!(
            c,
            Configuration::of([
                "query_specification",
                "select_list",
                "select_sublist",
                "table_expression",
                "from",
            ])
        );
        assert!(m.validate(&c).is_ok());
    }

    #[test]
    fn selecting_leaf_pulls_in_ancestors() {
        let m = model();
        let c = complete(&m, &Configuration::of(["where"])).unwrap();
        assert!(c.contains("table_expression"));
        assert!(c.contains("query_specification"));
        assert!(c.contains("where"));
    }

    #[test]
    fn requires_closure_applied() {
        let m = model();
        let c = complete(&m, &Configuration::of(["having"])).unwrap();
        assert!(c.contains("group_by"), "having requires group_by: {c}");
        assert!(m.validate(&c).is_ok());
    }

    #[test]
    fn xor_choice_left_open() {
        let m = model();
        let c = complete(&m, &Configuration::of(["set_quantifier"])).unwrap();
        // Completion must not pick between `all` and `distinct`...
        assert!(!c.contains("all") && !c.contains("distinct"));
        // ...so the completed config is invalid until the user decides.
        assert!(m.validate(&c).is_err());
        // Deciding makes it valid.
        let decided = c.with("distinct");
        assert!(m.validate(&decided).is_ok());
    }

    #[test]
    fn completion_is_idempotent() {
        let m = model();
        let once = complete(&m, &Configuration::of(["having"])).unwrap();
        let twice = complete(&m, &once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn unknown_feature_rejected() {
        let m = model();
        let err = complete(&m, &Configuration::of(["limit"])).unwrap_err();
        assert!(err.has(|v| matches!(v, Violation::UnknownFeature(_))));
    }

    #[test]
    fn completion_preserves_input() {
        let m = model();
        let input = Configuration::of(["where", "distinct"]);
        let c = complete(&m, &input).unwrap();
        assert!(input.is_subset_of(&c));
    }
}

//! Fluent construction of feature diagrams.
//!
//! ```
//! use sqlweave_feature_model::{ModelBuilder, GroupKind};
//!
//! // Figure 1 of the paper: the Query Specification feature diagram.
//! let mut b = ModelBuilder::new("query_specification");
//! let root = b.root();
//! let sq = b.optional(root, "set_quantifier");
//! b.xor(sq, &["all", "distinct"]);
//! let sl = b.mandatory(root, "select_list");
//! b.or(sl, &["select_sublist", "asterisk"]);
//! b.mandatory(root, "table_expression");
//! let model = b.build().unwrap();
//! assert_eq!(model.len(), 8);
//! ```

use crate::error::ModelError;
use crate::model::{
    Cardinality, Constraint, Feature, FeatureId, FeatureModel, Group, GroupKind, Optionality,
};
use std::collections::HashMap;

/// Pending cross-tree constraint, stored by name until `build()`.
#[derive(Debug, Clone)]
enum PendingConstraint {
    Requires(String, String),
    Excludes(String, String),
}

/// Builder for [`FeatureModel`].
#[derive(Debug)]
pub struct ModelBuilder {
    features: Vec<Feature>,
    groups: Vec<Group>,
    pending: Vec<PendingConstraint>,
    errors: Vec<ModelError>,
}

fn title_case(name: &str) -> String {
    name.split('_')
        .filter(|s| !s.is_empty())
        .map(|word| {
            let mut c = word.chars();
            match c.next() {
                Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

impl ModelBuilder {
    /// Start a diagram whose root concept is named `concept`.
    pub fn new(concept: impl Into<String>) -> Self {
        let name: String = concept.into();
        let root = Feature {
            title: title_case(&name),
            name,
            optionality: Optionality::Mandatory,
            cardinality: None,
            parent: None,
            children: Vec::new(),
            group: None,
        };
        ModelBuilder {
            features: vec![root],
            groups: Vec::new(),
            pending: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Id of the root concept.
    pub fn root(&self) -> FeatureId {
        FeatureId::ROOT
    }

    fn add(&mut self, parent: FeatureId, name: &str, optionality: Optionality) -> FeatureId {
        if parent.index() >= self.features.len() {
            self.errors.push(ModelError::UnknownParent(parent.0));
            return FeatureId::ROOT;
        }
        let id = FeatureId(self.features.len() as u32);
        self.features.push(Feature {
            name: name.to_string(),
            title: title_case(name),
            optionality,
            cardinality: None,
            parent: Some(parent),
            children: Vec::new(),
            group: None,
        });
        self.features[parent.index()].children.push(id);
        id
    }

    /// Add a mandatory solitary child.
    pub fn mandatory(&mut self, parent: FeatureId, name: &str) -> FeatureId {
        self.add(parent, name, Optionality::Mandatory)
    }

    /// Add an optional solitary child.
    pub fn optional(&mut self, parent: FeatureId, name: &str) -> FeatureId {
        self.add(parent, name, Optionality::Optional)
    }

    /// Add a group of children under `parent` with explicit semantics.
    /// Returns the member ids in declaration order.
    pub fn group(&mut self, parent: FeatureId, kind: GroupKind, names: &[&str]) -> Vec<FeatureId> {
        let gi = self.groups.len();
        let members: Vec<FeatureId> = names
            .iter()
            .map(|n| {
                let id = self.add(parent, n, Optionality::Optional);
                self.features[id.index()].group = Some(gi);
                id
            })
            .collect();
        self.groups.push(Group { parent, kind, members: members.clone() });
        if names.len() < 2 {
            self.errors.push(ModelError::GroupTooSmall {
                parent: self.features[parent.index()].name.clone(),
                members: names.len(),
            });
        }
        if let GroupKind::Card { min, max } = kind {
            let bad = max.is_some_and(|m| min > m) || min as usize > names.len();
            if bad {
                self.errors.push(ModelError::BadGroupCardinality {
                    parent: self.features[parent.index()].name.clone(),
                    min,
                    max,
                    members: names.len(),
                });
            }
        }
        members
    }

    /// Add an alternative (exactly-one) group.
    pub fn xor(&mut self, parent: FeatureId, names: &[&str]) -> Vec<FeatureId> {
        self.group(parent, GroupKind::Xor, names)
    }

    /// Add an inclusive OR (at-least-one) group.
    pub fn or(&mut self, parent: FeatureId, names: &[&str]) -> Vec<FeatureId> {
        self.group(parent, GroupKind::Or, names)
    }

    /// Attach an instance-cardinality annotation (e.g. `[1..*]`) to a
    /// feature, returning the same id for chaining.
    pub fn with_cardinality(&mut self, id: FeatureId, card: Cardinality) -> FeatureId {
        self.features[id.index()].cardinality = Some(card);
        id
    }

    /// Override the display title of a feature.
    pub fn with_title(&mut self, id: FeatureId, title: &str) -> FeatureId {
        self.features[id.index()].title = title.to_string();
        id
    }

    /// Record `from requires to` (by feature name; resolved at `build()`).
    pub fn requires(&mut self, from: &str, to: &str) {
        self.pending
            .push(PendingConstraint::Requires(from.to_string(), to.to_string()));
    }

    /// Record `a excludes b` (by feature name; resolved at `build()`).
    pub fn excludes(&mut self, a: &str, b: &str) {
        self.pending
            .push(PendingConstraint::Excludes(a.to_string(), b.to_string()));
    }

    /// Name of an already-added feature (for tests/tools).
    pub fn name_of(&self, id: FeatureId) -> &str {
        &self.features[id.index()].name
    }

    /// Id of an already-added feature, looked up by name.
    ///
    /// # Panics
    /// Panics if no feature with that name has been added; intended for
    /// model-construction code where the name is statically known.
    pub fn by_name_id(&self, name: &str) -> FeatureId {
        self.features
            .iter()
            .position(|f| f.name == name)
            .map(|i| FeatureId(i as u32))
            .unwrap_or_else(|| panic!("feature `{name}` not yet added to builder"))
    }

    /// Finish the diagram, checking structural invariants.
    pub fn build(mut self) -> Result<FeatureModel, ModelError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut by_name = HashMap::with_capacity(self.features.len());
        for (i, feat) in self.features.iter().enumerate() {
            if by_name.insert(feat.name.clone(), FeatureId(i as u32)).is_some() {
                return Err(ModelError::DuplicateName(feat.name.clone()));
            }
        }
        let mut constraints = Vec::with_capacity(self.pending.len());
        for p in self.pending.drain(..) {
            let (a, b, mk): (&str, &str, fn(FeatureId, FeatureId) -> Constraint) = match &p {
                PendingConstraint::Requires(a, b) => (a, b, Constraint::Requires),
                PendingConstraint::Excludes(a, b) => (a, b, Constraint::Excludes),
            };
            let ia = *by_name
                .get(a)
                .ok_or_else(|| ModelError::UnknownConstraintFeature(a.to_string()))?;
            let ib = *by_name
                .get(b)
                .ok_or_else(|| ModelError::UnknownConstraintFeature(b.to_string()))?;
            if ia == ib {
                return Err(ModelError::SelfConstraint(a.to_string()));
            }
            constraints.push(mk(ia, ib));
        }
        Ok(FeatureModel {
            features: self.features,
            groups: self.groups,
            constraints,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn title_casing() {
        assert_eq!(title_case("set_quantifier"), "Set Quantifier");
        assert_eq!(title_case("where"), "Where");
        assert_eq!(title_case("group_by_clause"), "Group By Clause");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.mandatory(r, "x");
        b.optional(r, "x");
        assert!(matches!(b.build(), Err(ModelError::DuplicateName(n)) if n == "x"));
    }

    #[test]
    fn group_needs_two_members() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.xor(r, &["only"]);
        assert!(matches!(b.build(), Err(ModelError::GroupTooSmall { .. })));
    }

    #[test]
    fn unsatisfiable_group_cardinality_rejected() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.group(r, GroupKind::Card { min: 3, max: Some(2) }, &["a", "b", "x"]);
        assert!(matches!(b.build(), Err(ModelError::BadGroupCardinality { .. })));
    }

    #[test]
    fn constraint_unknown_feature_rejected() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.requires("a", "ghost");
        assert!(matches!(
            b.build(),
            Err(ModelError::UnknownConstraintFeature(n)) if n == "ghost"
        ));
    }

    #[test]
    fn self_constraint_rejected() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.excludes("a", "a");
        assert!(matches!(b.build(), Err(ModelError::SelfConstraint(_))));
    }

    #[test]
    fn constraints_resolved_to_ids() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.optional(r, "a");
        b.optional(r, "b");
        b.requires("a", "b");
        b.excludes("a", "b"); // contradictory but structurally fine
        let m = b.build().unwrap();
        assert_eq!(m.constraints().len(), 2);
    }

    #[test]
    fn children_recorded_in_declaration_order() {
        let mut b = ModelBuilder::new("c");
        let r = b.root();
        b.mandatory(r, "first");
        b.optional(r, "second");
        b.or(r, &["third", "fourth"]);
        let m = b.build().unwrap();
        let names: Vec<_> = m
            .root()
            .children
            .iter()
            .map(|&c| m.feature(c).name.as_str())
            .collect();
        assert_eq!(names, ["first", "second", "third", "fourth"]);
    }
}

//! LL(k) grammar substrate for `sqlweave`.
//!
//! The paper expresses each SQL feature as an LL(k) sub-grammar in ANTLR
//! notation plus a token file. This crate provides:
//!
//! * [`ir`] — the grammar intermediate representation: productions with
//!   labeled alternatives over sequences of terms (tokens, nonterminals,
//!   optional `?`, star `*`, plus `+`, and grouped alternation `(a | b)`).
//! * [`dsl`] — a textual grammar language in that ANTLR-ish notation, and a
//!   token-file language, so sub-grammars are written the way the paper
//!   writes them.
//! * [`analysis`] — nullable/FIRST/FOLLOW computation, LL(1) conflict
//!   reporting, left-recursion detection, and reachability/usefulness
//!   diagnostics.
//! * [`lookahead`] — static LL(k) analysis: FIRST_k/FOLLOW_k sequence
//!   sets, per-conflict dispatch tables, and shortest ambiguity witnesses.
//! * [`lower`] — flattening of EBNF operators into plain BNF with synthetic
//!   nonterminals (what table-driven LL(1) parsing consumes).
//! * [`mod@print`] — pretty-printing back to DSL text (round-trip stable).
//! * [`sentence`] — grammar-driven random sentence generation, the workload
//!   generator for benchmarks and property tests.
//!
//! # Example
//!
//! ```
//! use sqlweave_grammar::dsl;
//!
//! let g = dsl::parse_grammar(r#"
//!     grammar select_stmt;
//!     start query;
//!     query : SELECT column_list FROM IDENT ;
//!     column_list : IDENT (COMMA IDENT)* ;
//! "#).unwrap();
//! assert_eq!(g.start(), "query");
//! assert_eq!(g.productions().len(), 2);
//! ```

pub mod analysis;
pub mod dsl;
pub mod ir;
pub mod lookahead;
pub mod lower;
pub mod print;
pub mod sentence;

pub use analysis::GrammarAnalysis;
pub use ir::{Alternative, Grammar, Production, Term};

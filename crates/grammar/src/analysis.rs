//! Grammar analyses: nullable / FIRST / FOLLOW, LL(1) table construction
//! with conflict reporting, left-recursion detection, and reachability /
//! productivity diagnostics.
//!
//! All set computations run on the [`crate::lower::flatten`]ed form of the
//! grammar; original nonterminal names are preserved by lowering, so
//! results are directly addressable by the caller's names.

use crate::ir::{Grammar, Term};
use crate::lower::flatten;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Synthetic token name representing end of input in FOLLOW sets.
pub const EOF: &str = "$";

/// An LL(1) prediction conflict: two alternatives of `nonterminal` are both
/// predicted on `token`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ll1Conflict {
    /// The ambiguous nonterminal.
    pub nonterminal: String,
    /// The lookahead token both alternatives claim.
    pub token: String,
    /// Indices of the clashing alternatives (first two found).
    pub alternatives: (usize, usize),
}

impl Ll1Conflict {
    /// Render the conflict naming the two offending alternatives by their
    /// DSL text, resolved against the flattened grammar the analysis ran
    /// on. Falls back to indices when the production cannot be found (e.g.
    /// a conflict recorded against a different grammar).
    pub fn describe(&self, flat: &Grammar) -> String {
        let alt_text = |i: usize| -> String {
            flat.production(&self.nonterminal)
                .and_then(|p| p.alternatives.get(i))
                .map(|a| a.to_string())
                .unwrap_or_else(|| format!("#{i}"))
        };
        format!(
            "LL(1) conflict in `{}` on token {}: `{}` vs `{}`",
            self.nonterminal,
            self.token,
            alt_text(self.alternatives.0),
            alt_text(self.alternatives.1)
        )
    }
}

impl fmt::Display for Ll1Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LL(1) conflict in `{}` on token {}: alternatives {} and {}",
            self.nonterminal, self.token, self.alternatives.0, self.alternatives.1
        )
    }
}

/// A left-recursion cycle through the named productions, closed back onto
/// its first element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeftRecursionCycle(pub Vec<String>);

impl LeftRecursionCycle {
    /// The productions on the cycle, in discovery order.
    pub fn productions(&self) -> &[String] {
        &self.0
    }

    /// `true` for `a : a ...`-style self-recursion.
    pub fn is_direct(&self) -> bool {
        self.0.len() == 1
    }
}

impl fmt::Display for LeftRecursionCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_direct() {
            write!(f, "`{}` is directly left-recursive", self.0[0])
        } else {
            write!(
                f,
                "left-recursive cycle `{}` -> `{}`",
                self.0.join("` -> `"),
                self.0[0]
            )
        }
    }
}

/// Errors that make a grammar unanalyzable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Referenced nonterminals with no production.
    Undefined(Vec<String>),
    /// The start symbol has no production.
    UndefinedStart(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Undefined(names) => {
                write!(f, "undefined nonterminals: {}", names.join(", "))
            }
            AnalysisError::UndefinedStart(s) => write!(f, "undefined start symbol `{s}`"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Complete analysis results over the flattened grammar.
#[derive(Debug, Clone)]
pub struct GrammarAnalysis {
    /// The flattened (plain BNF) grammar the analysis describes.
    pub flat: Grammar,
    /// Nullable nonterminals.
    pub nullable: BTreeSet<String>,
    /// FIRST sets (token names) per nonterminal.
    pub first: BTreeMap<String, BTreeSet<String>>,
    /// FOLLOW sets (token names, possibly [`EOF`]) per nonterminal.
    pub follow: BTreeMap<String, BTreeSet<String>>,
    /// LL(1) prediction table: `(nonterminal, token) -> alternative index`.
    /// On conflicts the *first* (lowest-index) alternative is stored, making
    /// table-driven parsing deterministic with declaration-order priority.
    pub table: HashMap<(String, String), usize>,
    /// All LL(1) conflicts found.
    pub conflicts: Vec<Ll1Conflict>,
    /// Left-recursive cycles (each as the chain of nonterminal names).
    pub left_recursion: Vec<Vec<String>>,
    /// Nonterminals unreachable from the start symbol.
    pub unreachable: Vec<String>,
    /// Nonterminals that derive no terminal string.
    pub unproductive: Vec<String>,
}

impl GrammarAnalysis {
    /// `true` if the grammar is LL(1) (no conflicts, no left recursion).
    pub fn is_ll1(&self) -> bool {
        self.conflicts.is_empty() && self.left_recursion.is_empty()
    }

    /// FIRST set of an arbitrary sequence under this analysis.
    pub fn first_of_seq(&self, seq: &[Term]) -> (BTreeSet<String>, bool) {
        let mut set = BTreeSet::new();
        for term in seq {
            match term {
                Term::Token(t) => {
                    set.insert(t.clone());
                    return (set, false);
                }
                Term::NonTerminal(n) => {
                    if let Some(f) = self.first.get(n) {
                        set.extend(f.iter().cloned());
                    }
                    if !self.nullable.contains(n) {
                        return (set, false);
                    }
                }
                // Analysis operates on flattened grammars; nested terms can
                // only appear if the caller passes an unflattened sequence.
                Term::Optional(body) | Term::Star(body) => {
                    let (inner, _) = self.first_of_seq(body);
                    set.extend(inner);
                }
                Term::Plus(body) => {
                    let (inner, nullable) = self.first_of_seq(body);
                    set.extend(inner);
                    if !nullable {
                        return (set, false);
                    }
                }
                Term::Group(alts) => {
                    let mut any_nullable = false;
                    for alt in alts {
                        let (inner, nullable) = self.first_of_seq(alt);
                        set.extend(inner);
                        any_nullable |= nullable;
                    }
                    if !any_nullable {
                        return (set, false);
                    }
                }
            }
        }
        (set, true)
    }

    /// Number of populated LL(1) table cells (size metric, Experiment B3).
    pub fn table_cells(&self) -> usize {
        self.table.len()
    }

    /// The full LL(1) conflict list (what [`GrammarAnalysis::is_ll1`]
    /// summarizes as a boolean), for diagnostic consumers like the linter.
    pub fn conflicts(&self) -> &[Ll1Conflict] {
        &self.conflicts
    }

    /// Every conflict rendered with the offending alternatives' DSL text.
    pub fn conflict_details(&self) -> Vec<String> {
        self.conflicts.iter().map(|c| c.describe(&self.flat)).collect()
    }

    /// Left-recursion cycle paths as displayable values.
    pub fn left_recursion_cycles(&self) -> Vec<LeftRecursionCycle> {
        self.left_recursion
            .iter()
            .map(|c| LeftRecursionCycle(c.clone()))
            .collect()
    }
}

/// Analyze `g`. The grammar must be *closed*: every referenced nonterminal
/// defined, including the start symbol.
pub fn analyze(g: &Grammar) -> Result<GrammarAnalysis, AnalysisError> {
    let undefined: Vec<String> = g
        .undefined_nonterminals()
        .into_iter()
        .map(str::to_string)
        .collect();
    if !undefined.is_empty() {
        return Err(AnalysisError::Undefined(undefined));
    }
    if g.production(g.start()).is_none() {
        return Err(AnalysisError::UndefinedStart(g.start().to_string()));
    }

    let flat = flatten(g);

    // --- nullable (fixpoint) ---
    let mut nullable: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for p in flat.productions() {
            if nullable.contains(&p.name) {
                continue;
            }
            let is_nullable = p.alternatives.iter().any(|alt| {
                alt.seq.iter().all(|t| match t {
                    Term::NonTerminal(n) => nullable.contains(n),
                    Term::Token(_) => false,
                    _ => unreachable!("flattened grammar has no nested terms"),
                })
            });
            if is_nullable {
                nullable.insert(p.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- FIRST (fixpoint) ---
    let mut first: BTreeMap<String, BTreeSet<String>> = flat
        .productions()
        .iter()
        .map(|p| (p.name.clone(), BTreeSet::new()))
        .collect();
    loop {
        let mut changed = false;
        for p in flat.productions() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for alt in &p.alternatives {
                for term in &alt.seq {
                    match term {
                        Term::Token(t) => {
                            add.insert(t.clone());
                            break;
                        }
                        Term::NonTerminal(n) => {
                            add.extend(first[n].iter().cloned());
                            if !nullable.contains(n) {
                                break;
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
            let entry = first.get_mut(&p.name).unwrap();
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- FOLLOW (fixpoint) ---
    let mut follow: BTreeMap<String, BTreeSet<String>> = flat
        .productions()
        .iter()
        .map(|p| (p.name.clone(), BTreeSet::new()))
        .collect();
    follow
        .get_mut(flat.start())
        .expect("start defined")
        .insert(EOF.to_string());
    loop {
        let mut changed = false;
        for p in flat.productions() {
            for alt in &p.alternatives {
                for (i, term) in alt.seq.iter().enumerate() {
                    let Term::NonTerminal(n) = term else { continue };
                    // tokens that can start what follows position i
                    let mut add: BTreeSet<String> = BTreeSet::new();
                    let mut rest_nullable = true;
                    for t in &alt.seq[i + 1..] {
                        match t {
                            Term::Token(tok) => {
                                add.insert(tok.clone());
                                rest_nullable = false;
                                break;
                            }
                            Term::NonTerminal(m) => {
                                add.extend(first[m].iter().cloned());
                                if !nullable.contains(m) {
                                    rest_nullable = false;
                                    break;
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                    if rest_nullable {
                        add.extend(follow[&p.name].iter().cloned());
                    }
                    let entry = follow.get_mut(n).unwrap();
                    let before = entry.len();
                    entry.extend(add);
                    if entry.len() != before {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- LL(1) table + conflicts ---
    let mut table: HashMap<(String, String), usize> = HashMap::new();
    let mut conflicts = Vec::new();
    for p in flat.productions() {
        for (ai, alt) in p.alternatives.iter().enumerate() {
            // predict set of this alternative
            let mut predict: BTreeSet<String> = BTreeSet::new();
            let mut alt_nullable = true;
            for term in &alt.seq {
                match term {
                    Term::Token(t) => {
                        predict.insert(t.clone());
                        alt_nullable = false;
                        break;
                    }
                    Term::NonTerminal(n) => {
                        predict.extend(first[n].iter().cloned());
                        if !nullable.contains(n) {
                            alt_nullable = false;
                            break;
                        }
                    }
                    _ => unreachable!(),
                }
            }
            if alt_nullable {
                predict.extend(follow[&p.name].iter().cloned());
            }
            for tok in predict {
                let key = (p.name.clone(), tok.clone());
                match table.get(&key) {
                    Some(&prev) if prev != ai => {
                        conflicts.push(Ll1Conflict {
                            nonterminal: p.name.clone(),
                            token: tok,
                            alternatives: (prev, ai),
                        });
                        // keep first alternative (declaration priority)
                    }
                    Some(_) => {}
                    None => {
                        table.insert(key, ai);
                    }
                }
            }
        }
    }

    // --- left recursion (cycles in the "can begin with" relation) ---
    let left_recursion = find_left_recursion(&flat, &nullable);

    // --- reachability ---
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![flat.start()];
    while let Some(n) = stack.pop() {
        if !reachable.insert(n) {
            continue;
        }
        if let Some(p) = flat.production(n) {
            for alt in &p.alternatives {
                for t in &alt.seq {
                    if let Term::NonTerminal(m) = t {
                        if !reachable.contains(m.as_str()) {
                            stack.push(m);
                        }
                    }
                }
            }
        }
    }
    let unreachable: Vec<String> = flat
        .productions()
        .iter()
        .filter(|p| !reachable.contains(p.name.as_str()))
        .map(|p| p.name.clone())
        .collect();

    // --- productivity ---
    let mut productive: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for p in flat.productions() {
            if productive.contains(&p.name) {
                continue;
            }
            let ok = p.alternatives.iter().any(|alt| {
                alt.seq.iter().all(|t| match t {
                    Term::Token(_) => true,
                    Term::NonTerminal(n) => productive.contains(n),
                    _ => unreachable!(),
                })
            });
            if ok {
                productive.insert(p.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let unproductive: Vec<String> = flat
        .productions()
        .iter()
        .filter(|p| !productive.contains(&p.name))
        .map(|p| p.name.clone())
        .collect();

    Ok(GrammarAnalysis {
        flat,
        nullable,
        first,
        follow,
        table,
        conflicts,
        left_recursion,
        unreachable,
        unproductive,
    })
}

/// Find cycles in the begins-with graph (A → B when an alternative of A
/// starts with B modulo nullable prefixes).
fn find_left_recursion(flat: &Grammar, nullable: &BTreeSet<String>) -> Vec<Vec<String>> {
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for p in flat.productions() {
        let entry = edges.entry(p.name.as_str()).or_default();
        for alt in &p.alternatives {
            for term in &alt.seq {
                match term {
                    Term::NonTerminal(n) => {
                        entry.insert(n.as_str());
                        if !nullable.contains(n) {
                            break;
                        }
                    }
                    Term::Token(_) => break,
                    _ => unreachable!(),
                }
            }
        }
    }
    // DFS cycle collection; report each cycle once by its smallest member.
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in edges.keys() {
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        dfs_cycles(
            start, &edges, &mut path, &mut on_path, &mut visited, &mut cycles, &mut reported,
        );
    }
    cycles
}

fn dfs_cycles<'a>(
    node: &'a str,
    edges: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    visited: &mut BTreeSet<&'a str>,
    cycles: &mut Vec<Vec<String>>,
    reported: &mut BTreeSet<String>,
) {
    if on_path.contains(node) {
        let pos = path.iter().position(|&n| n == node).unwrap();
        let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
        let key = cycle.iter().min().unwrap().clone();
        if reported.insert(key) {
            cycles.push(cycle);
        }
        return;
    }
    if !visited.insert(node) {
        return;
    }
    path.push(node);
    on_path.insert(node);
    if let Some(succs) = edges.get(node) {
        for &next in succs {
            dfs_cycles(next, edges, path, on_path, visited, cycles, reported);
        }
    }
    path.pop();
    on_path.remove(node);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_grammar;

    fn analyze_src(src: &str) -> GrammarAnalysis {
        analyze(&parse_grammar(src).unwrap()).unwrap()
    }

    #[test]
    fn undefined_nonterminal_is_error() {
        let g = parse_grammar("grammar g; a : X missing ;").unwrap();
        assert!(matches!(analyze(&g), Err(AnalysisError::Undefined(v)) if v == ["missing"]));
    }

    #[test]
    fn nullable_computation() {
        let a = analyze_src("grammar g; a : b c ; b : X | ; c : Y | ;");
        assert!(a.nullable.contains("a"));
        assert!(a.nullable.contains("b"));
        let a = analyze_src("grammar g; a : b X ; b : | Y ;");
        assert!(!a.nullable.contains("a"));
    }

    #[test]
    fn first_sets() {
        let a = analyze_src("grammar g; a : b X | Z ; b : Y | ;");
        let fa = &a.first["a"];
        assert!(fa.contains("Y") && fa.contains("X") && fa.contains("Z"));
        assert_eq!(a.first["b"].iter().collect::<Vec<_>>(), ["Y"]);
    }

    #[test]
    fn follow_sets() {
        let a = analyze_src("grammar g; start s; s : a X ; a : Y | ;");
        assert!(a.follow["a"].contains("X"));
        assert!(a.follow["s"].contains(EOF));
    }

    #[test]
    fn follow_through_nullable_suffix() {
        let a = analyze_src("grammar g; start s; s : a b Z ; a : X ; b : Y | ;");
        // FOLLOW(a) includes FIRST(b)=Y and, because b is nullable, Z.
        assert!(a.follow["a"].contains("Y"));
        assert!(a.follow["a"].contains("Z"));
    }

    #[test]
    fn ll1_grammar_has_no_conflicts() {
        let a = analyze_src(
            "grammar g; start s; s : SELECT list ; list : IDENT (COMMA IDENT)* ;",
        );
        assert!(a.is_ll1(), "conflicts: {:?}", a.conflicts);
        assert!(!a.table.is_empty());
    }

    #[test]
    fn common_prefix_conflict_detected() {
        let a = analyze_src("grammar g; a : X Y | X Z ;");
        assert!(!a.is_ll1());
        assert_eq!(a.conflicts[0].token, "X");
        assert_eq!(a.conflicts[0].alternatives, (0, 1));
        // priority: table keeps the first alternative
        assert_eq!(a.table[&("a".to_string(), "X".to_string())], 0);
    }

    #[test]
    fn direct_left_recursion_detected() {
        let a = analyze_src("grammar g; a : a X | Y ;");
        assert_eq!(a.left_recursion.len(), 1);
        assert_eq!(a.left_recursion[0], ["a"]);
    }

    #[test]
    fn indirect_left_recursion_detected() {
        let a = analyze_src("grammar g; a : b X | Q ; b : c Y | R ; c : a Z | S ;");
        assert_eq!(a.left_recursion.len(), 1);
        assert_eq!(a.left_recursion[0].len(), 3);
    }

    #[test]
    fn left_recursion_through_nullable_prefix() {
        let a = analyze_src("grammar g; a : b a X | Y ; b : Z | ;");
        // b nullable, so `a : b a X` is left-recursive on a.
        assert!(!a.left_recursion.is_empty());
    }

    #[test]
    fn unreachable_reported() {
        let a = analyze_src("grammar g; start s; s : X ; orphan : Y ;");
        assert_eq!(a.unreachable, ["orphan"]);
    }

    #[test]
    fn unproductive_reported() {
        let a = analyze_src("grammar g; start s; s : X | loopy ; loopy : loopy X ;");
        assert_eq!(a.unproductive, ["loopy"]);
    }

    #[test]
    fn ebnf_constructs_analyzable_via_flattening() {
        let a = analyze_src(
            "grammar g; start q; q : SELECT sq? cols FROM IDENT ; sq : DISTINCT | ALL ; cols : IDENT (COMMA IDENT)* | STAR ;",
        );
        assert!(a.is_ll1(), "conflicts: {:?}", a.conflicts);
        assert!(a.first["q"].contains("SELECT"));
        // synthetic opt production is nullable
        assert!(a.nullable.iter().any(|n| n.contains("__opt")));
    }

    #[test]
    fn first_of_seq_over_ebnf_terms() {
        let a = analyze_src("grammar g; a : X ;");
        use crate::ir::Term;
        let (set, nullable) = a.first_of_seq(&[
            Term::Optional(vec![Term::tok("Q")]),
            Term::tok("X"),
        ]);
        assert!(set.contains("Q") && set.contains("X"));
        assert!(!nullable);
    }

    #[test]
    fn first_of_seq_nullable_tail_unions_and_stays_nullable() {
        // Every element nullable ⇒ the whole sequence is nullable (FIRST
        // contains ε), which is what lets FOLLOW — and ultimately EOF —
        // propagate through it.
        let a = analyze_src("grammar g; a : bq cq X ; bq : B? ; cq : C? ;");
        use crate::ir::Term;
        let (set, nullable) =
            a.first_of_seq(&[Term::nt("bq"), Term::nt("cq")]);
        assert_eq!(
            set.iter().map(String::as_str).collect::<Vec<_>>(),
            ["B", "C"]
        );
        assert!(nullable, "all-nullable tail must keep the sequence nullable");
        // A non-nullable tail element cuts the scan and the ε.
        let (set, nullable) =
            a.first_of_seq(&[Term::nt("bq"), Term::tok("X"), Term::nt("cq")]);
        assert!(set.contains("B") && set.contains("X") && !set.contains("C"));
        assert!(!nullable);
    }

    #[test]
    fn first_of_seq_follow_through_repetition() {
        let a = analyze_src("grammar g; a : X ;");
        use crate::ir::Term;
        // `X* Y`: the star can match zero times, so Y's FIRST shines
        // through; the trailing token makes the whole sequence definite.
        let (set, nullable) =
            a.first_of_seq(&[Term::Star(vec![Term::tok("X")]), Term::tok("Y")]);
        assert!(set.contains("X") && set.contains("Y"));
        assert!(!nullable);
        // `X+ Y`: one X is mandatory, Y never reaches FIRST.
        let (set, nullable) =
            a.first_of_seq(&[Term::Plus(vec![Term::tok("X")]), Term::tok("Y")]);
        assert!(set.contains("X") && !set.contains("Y"));
        assert!(!nullable);
        // `(X?)+ Y`: a nullable Plus body keeps the scan going.
        let (set, nullable) = a.first_of_seq(&[
            Term::Plus(vec![Term::Optional(vec![Term::tok("X")])]),
            Term::tok("Y"),
        ]);
        assert!(set.contains("X") && set.contains("Y"));
        assert!(!nullable);
    }

    #[test]
    fn first_of_seq_eof_propagation_through_fully_nullable_sequences() {
        let a = analyze_src("grammar g; a : X ;");
        use crate::ir::Term;
        // The empty sequence derives ε outright: at end of input, EOF is
        // the only lookahead, so nullable=true is the ε/EOF signal.
        let (set, nullable) = a.first_of_seq(&[]);
        assert!(set.is_empty() && nullable);
        // Optionals, stars, and nullable groups all preserve it.
        let (set, nullable) = a.first_of_seq(&[
            Term::Optional(vec![Term::tok("P")]),
            Term::Star(vec![Term::tok("Q")]),
            Term::Group(vec![vec![Term::tok("R")], vec![]]),
        ]);
        assert_eq!(
            set.iter().map(String::as_str).collect::<Vec<_>>(),
            ["P", "Q", "R"]
        );
        assert!(nullable);
        // A group with no nullable alternative blocks the propagation.
        let (_, nullable) = a.first_of_seq(&[Term::Group(vec![
            vec![Term::tok("R")],
            vec![Term::tok("S")],
        ])]);
        assert!(!nullable);
    }

    #[test]
    fn table_cells_metric() {
        let a = analyze_src("grammar g; a : X | Y ;");
        assert_eq!(a.table_cells(), 2);
    }

    #[test]
    fn conflict_details_name_offending_alternatives() {
        let a = analyze_src("grammar g; a : X Y | X Z ;");
        let details = a.conflict_details();
        assert_eq!(details.len(), a.conflicts().len());
        assert!(details[0].contains("`X Y`") && details[0].contains("`X Z`"), "{}", details[0]);
    }

    #[test]
    fn left_recursion_cycles_display() {
        let a = analyze_src("grammar g; a : a X | Y ;");
        let cycles = a.left_recursion_cycles();
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].is_direct());
        assert_eq!(cycles[0].to_string(), "`a` is directly left-recursive");

        let a = analyze_src("grammar g; a : b X | Q ; b : c Y | R ; c : a Z | S ;");
        let cycles = a.left_recursion_cycles();
        assert_eq!(cycles[0].productions().len(), 3);
        assert!(cycles[0].to_string().starts_with("left-recursive cycle"));
    }
}

//! Grammar-driven random sentence generation.
//!
//! Given a closed grammar and the token set it references, the generator
//! produces random strings *in the language of the grammar*. This is the
//! workload generator for the benchmark harness (each dialect generates its
//! own statements) and the engine behind round-trip property tests
//! (generated sentence ⇒ parser must accept).

use crate::ir::{Grammar, Term};
use rand::Rng;
use sqlweave_lexgen::regex::{CharClass, Regex};
use sqlweave_lexgen::tokenset::{RuleKind, TokenSet};
use sqlweave_lexgen::Scanner;
use std::collections::HashMap;
use std::fmt;

/// Effectively-infinite depth for unproductive symbols.
const INF: usize = usize::MAX / 4;

/// Error constructing a generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SentenceError {
    /// The grammar references nonterminals with no production.
    UndefinedNonterminals(Vec<String>),
    /// The grammar references tokens missing from the token set.
    UndefinedTokens(Vec<String>),
    /// The requested start symbol cannot derive any terminal string.
    Unproductive(String),
}

impl fmt::Display for SentenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentenceError::UndefinedNonterminals(v) => {
                write!(f, "undefined nonterminals: {}", v.join(", "))
            }
            SentenceError::UndefinedTokens(v) => {
                write!(f, "tokens not in token set: {}", v.join(", "))
            }
            SentenceError::Unproductive(n) => {
                write!(f, "`{n}` cannot derive any terminal string")
            }
        }
    }
}

impl std::error::Error for SentenceError {}

/// Random sentence generator for one grammar + token set.
pub struct SentenceGenerator<'a> {
    grammar: &'a Grammar,
    tokens: &'a TokenSet,
    /// Minimum derivation depth per nonterminal (for budget-driven choice).
    min_depth: HashMap<String, usize>,
    /// Optional scanner used to validate sampled pattern lexemes (so a
    /// random identifier never collides with a keyword).
    validator: Option<Scanner>,
    /// `[min, max]` repetition range for `*`/`+` inside sampled pattern
    /// lexemes — controls how long generated identifiers, numbers, and
    /// string literals get.
    lexeme_reps: (usize, usize),
    /// Probability of trying the deterministic minimal lexeme first (keeps
    /// fuzz inputs small; zeroed for benchmark corpora).
    minimal_bias: f64,
}

impl<'a> SentenceGenerator<'a> {
    /// Build a generator; the grammar must be closed over `tokens`.
    pub fn new(grammar: &'a Grammar, tokens: &'a TokenSet) -> Result<Self, SentenceError> {
        let undef: Vec<String> = grammar
            .undefined_nonterminals()
            .into_iter()
            .map(str::to_string)
            .collect();
        if !undef.is_empty() {
            return Err(SentenceError::UndefinedNonterminals(undef));
        }
        let missing: Vec<String> = grammar
            .referenced_tokens()
            .into_iter()
            .filter(|t| tokens.get(t).is_none())
            .map(str::to_string)
            .collect();
        if !missing.is_empty() {
            return Err(SentenceError::UndefinedTokens(missing));
        }

        let min_depth = compute_min_depth(grammar);
        if min_depth.get(grammar.start()).copied().unwrap_or(INF) >= INF {
            return Err(SentenceError::Unproductive(grammar.start().to_string()));
        }
        let validator = tokens.build().ok();
        Ok(SentenceGenerator {
            grammar,
            tokens,
            min_depth,
            validator,
            lexeme_reps: (0, 4),
            minimal_bias: 0.3,
        })
    }

    /// Set the `*`/`+` repetition range used when sampling pattern lexemes.
    /// The default `(0, 4)` yields short fuzz-style lexemes; benchmark
    /// corpora use a wider range so identifiers and literals have the
    /// lengths of real-world SQL. Also disables the minimal-lexeme bias —
    /// a corpus asking for realistic lengths does not want one-char
    /// identifiers 30% of the time.
    pub fn with_lexeme_reps(mut self, min: usize, max: usize) -> Self {
        self.lexeme_reps = (min, max.max(min));
        self.minimal_bias = 0.0;
        self
    }

    /// Generate one sentence from the start symbol.
    pub fn generate(&self, rng: &mut impl Rng, max_depth: usize) -> String {
        self.generate_from(self.grammar.start(), rng, max_depth)
    }

    /// Generate one sentence from an arbitrary nonterminal.
    pub fn generate_from(&self, nt: &str, rng: &mut impl Rng, max_depth: usize) -> String {
        let mut lexemes: Vec<String> = Vec::new();
        self.gen_nt(nt, rng, max_depth, &mut lexemes);
        lexemes.join(" ")
    }

    /// Generate one sentence wrapped to roughly `width` columns, with
    /// continuation lines indented four spaces. Line breaks are inserted
    /// only *between* lexemes (never inside a string literal or other
    /// multi-char lexeme), so the result tokenizes identically to the
    /// single-line form whenever whitespace is a skip rule.
    pub fn generate_wrapped(&self, rng: &mut impl Rng, max_depth: usize, width: usize) -> String {
        let mut lexemes: Vec<String> = Vec::new();
        self.gen_nt(self.grammar.start(), rng, max_depth, &mut lexemes);
        let mut out = String::new();
        let mut col = 0usize;
        for lexeme in &lexemes {
            if lexeme.is_empty() {
                continue;
            }
            if col == 0 {
                out.push_str(lexeme);
                col = lexeme.len();
            } else if col + 1 + lexeme.len() > width {
                out.push_str("\n    ");
                out.push_str(lexeme);
                col = 4 + lexeme.len();
            } else {
                out.push(' ');
                out.push_str(lexeme);
                col += 1 + lexeme.len();
            }
        }
        out
    }

    fn depth_of(&self, nt: &str) -> usize {
        self.min_depth.get(nt).copied().unwrap_or(INF)
    }

    fn seq_depth(&self, seq: &[Term]) -> usize {
        seq.iter().map(|t| self.term_depth(t)).max().unwrap_or(0)
    }

    fn term_depth(&self, term: &Term) -> usize {
        match term {
            Term::Token(_) => 0,
            Term::NonTerminal(n) => self.depth_of(n),
            Term::Optional(_) | Term::Star(_) => 0,
            Term::Plus(body) => self.seq_depth(body),
            Term::Group(alts) => alts.iter().map(|a| self.seq_depth(a)).min().unwrap_or(0),
        }
    }

    fn gen_nt(&self, nt: &str, rng: &mut impl Rng, budget: usize, out: &mut Vec<String>) {
        let Some(prod) = self.grammar.production(nt) else {
            out.push(format!("<{nt}?>"));
            return;
        };
        let child_budget = budget.saturating_sub(1);
        // Feasible alternatives within budget; if none, take the shallowest.
        let feasible: Vec<usize> = prod
            .alternatives
            .iter()
            .enumerate()
            .filter(|(_, a)| self.seq_depth(&a.seq) <= child_budget)
            .map(|(i, _)| i)
            .collect();
        let choice = if feasible.is_empty() {
            prod.alternatives
                .iter()
                .enumerate()
                .min_by_key(|(_, a)| self.seq_depth(&a.seq))
                .map(|(i, _)| i)
                .unwrap_or(0)
        } else {
            feasible[rng.gen_range(0..feasible.len())]
        };
        self.gen_seq(&prod.alternatives[choice].seq, rng, child_budget, out);
    }

    fn gen_seq(&self, seq: &[Term], rng: &mut impl Rng, budget: usize, out: &mut Vec<String>) {
        for term in seq {
            self.gen_term(term, rng, budget, out);
        }
    }

    fn gen_term(&self, term: &Term, rng: &mut impl Rng, budget: usize, out: &mut Vec<String>) {
        match term {
            Term::Token(t) => out.push(self.sample_token(t, rng)),
            Term::NonTerminal(n) => self.gen_nt(n, rng, budget, out),
            Term::Optional(body) => {
                if self.seq_depth(body) <= budget && rng.gen_bool(0.5) {
                    self.gen_seq(body, rng, budget, out);
                }
            }
            Term::Star(body) => {
                if self.seq_depth(body) <= budget {
                    let reps = geometric(rng, 0, 3);
                    for _ in 0..reps {
                        self.gen_seq(body, rng, budget, out);
                    }
                }
            }
            Term::Plus(body) => {
                let reps = if self.seq_depth(body) <= budget {
                    geometric(rng, 1, 3)
                } else {
                    1
                };
                for _ in 0..reps {
                    self.gen_seq(body, rng, budget, out);
                }
            }
            Term::Group(alts) => {
                let feasible: Vec<&Vec<Term>> = alts
                    .iter()
                    .filter(|a| self.seq_depth(a) <= budget)
                    .collect();
                let pick = if feasible.is_empty() {
                    alts.iter()
                        .min_by_key(|a| self.seq_depth(a))
                        .expect("group has alternatives")
                } else {
                    feasible[rng.gen_range(0..feasible.len())]
                };
                self.gen_seq(pick, rng, budget, out);
            }
        }
    }

    /// Concrete lexeme for a token reference.
    fn sample_token(&self, name: &str, rng: &mut impl Rng) -> String {
        let Some(rule) = self.tokens.get(name) else {
            return format!("<{name}?>");
        };
        match &rule.kind {
            RuleKind::Keyword => rule.name.clone(),
            RuleKind::Punct(lit) => lit.clone(),
            RuleKind::Skip(_) => String::new(),
            RuleKind::Pattern(p) => {
                let re = sqlweave_lexgen::regex::parse(p).expect("validated at TokenSet::add");
                // Sample until the lexeme scans back as this very token (a
                // random identifier could otherwise spell a keyword).
                let (lo, hi) = self.lexeme_reps;
                for attempt in 0..8 {
                    let s = if attempt == 0 && self.minimal_bias > 0.0 && rng.gen_bool(self.minimal_bias) {
                        sample_regex_minimal(&re)
                    } else {
                        sample_regex_reps(&re, rng, lo, hi)
                    };
                    if s.is_empty() {
                        continue;
                    }
                    match &self.validator {
                        Some(scanner) => {
                            if let Ok(toks) = scanner.scan(&s) {
                                if toks.len() == 1 && scanner.name(toks[0].kind) == name {
                                    return s;
                                }
                            }
                        }
                        None => return s,
                    }
                }
                sample_regex_minimal(&re)
            }
        }
    }
}

/// Geometric-ish small random count in `[min, max]`.
fn geometric(rng: &mut impl Rng, min: usize, max: usize) -> usize {
    let mut n = min;
    while n < max && rng.gen_bool(0.4) {
        n += 1;
    }
    n
}

fn sample_class(class: &CharClass, rng: &mut impl Rng) -> char {
    let ranges = class.ranges();
    if ranges.is_empty() {
        return '?';
    }
    // Prefer printable ASCII ranges for readable workloads.
    let printable: Vec<(char, char)> = ranges
        .iter()
        .copied()
        .map(|(lo, hi)| (lo.max(' '), hi.min('~')))
        .filter(|(lo, hi)| lo <= hi)
        .collect();
    let pool = if printable.is_empty() { ranges } else { &printable[..] };
    let (lo, hi) = pool[rng.gen_range(0..pool.len())];
    let span = hi as u32 - lo as u32 + 1;
    char::from_u32(lo as u32 + rng.gen_range(0..span)).unwrap_or(lo)
}

/// Random string in the language of `re` (fuzz-sized repetitions).
pub fn sample_regex(re: &Regex, rng: &mut impl Rng) -> String {
    sample_regex_reps(re, rng, 0, 4)
}

/// Random string in the language of `re` with `*`/`+` repetition counts
/// drawn uniformly from `[min, max]` (`+` never below 1).
pub fn sample_regex_reps(re: &Regex, rng: &mut impl Rng, min: usize, max: usize) -> String {
    match re {
        Regex::Empty => String::new(),
        Regex::Class(c) => sample_class(c, rng).to_string(),
        Regex::Concat(items) => items
            .iter()
            .map(|i| sample_regex_reps(i, rng, min, max))
            .collect(),
        Regex::Alt(alts) => sample_regex_reps(&alts[rng.gen_range(0..alts.len())], rng, min, max),
        Regex::Star(inner) => (0..rng.gen_range(min..max + 1))
            .map(|_| sample_regex_reps(inner, rng, min, max))
            .collect(),
        Regex::Plus(inner) => (0..rng.gen_range(min.max(1)..max.max(1) + 1))
            .map(|_| sample_regex_reps(inner, rng, min, max))
            .collect(),
        Regex::Opt(inner) => {
            if rng.gen_bool(0.5) {
                sample_regex_reps(inner, rng, min, max)
            } else {
                String::new()
            }
        }
    }
}

/// Deterministic shortest-ish member of the language of `re`.
pub fn sample_regex_minimal(re: &Regex) -> String {
    match re {
        Regex::Empty => String::new(),
        Regex::Class(c) => c.sample().unwrap_or('?').to_string(),
        Regex::Concat(items) => items.iter().map(sample_regex_minimal).collect(),
        Regex::Alt(alts) => alts
            .iter()
            .map(sample_regex_minimal)
            .min_by_key(String::len)
            .unwrap_or_default(),
        Regex::Star(_) => String::new(),
        Regex::Plus(inner) => sample_regex_minimal(inner),
        Regex::Opt(_) => String::new(),
    }
}

/// Minimum derivation depth per nonterminal (tokens cost 0, each
/// nonterminal expansion costs 1); [`INF`] for unproductive symbols.
fn compute_min_depth(grammar: &Grammar) -> HashMap<String, usize> {
    let mut depth: HashMap<String, usize> = grammar
        .productions()
        .iter()
        .map(|p| (p.name.clone(), INF))
        .collect();

    fn seq_depth(seq: &[Term], depth: &HashMap<String, usize>) -> usize {
        seq.iter().map(|t| term_depth(t, depth)).max().unwrap_or(0)
    }
    fn term_depth(term: &Term, depth: &HashMap<String, usize>) -> usize {
        match term {
            Term::Token(_) => 0,
            Term::NonTerminal(n) => depth.get(n).copied().unwrap_or(INF),
            Term::Optional(_) | Term::Star(_) => 0,
            Term::Plus(body) => seq_depth(body, depth),
            Term::Group(alts) => alts
                .iter()
                .map(|a| seq_depth(a, depth))
                .min()
                .unwrap_or(0),
        }
    }

    loop {
        let mut changed = false;
        for p in grammar.productions() {
            let best = p
                .alternatives
                .iter()
                .map(|a| seq_depth(&a.seq, &depth).saturating_add(1))
                .min()
                .unwrap_or(INF);
            if best < depth[&p.name] {
                depth.insert(p.name.clone(), best);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_grammar, parse_tokens};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Grammar, TokenSet) {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT quant? select_list FROM IDENT (WHERE cond)? ;
            quant : DISTINCT | ALL ;
            select_list : IDENT (COMMA IDENT)* | STAR ;
            cond : IDENT EQ value ;
            value : IDENT | NUMBER ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; WHERE = kw; DISTINCT = kw; ALL = kw;
            COMMA = ","; STAR = "*"; EQ = "=";
            IDENT = /[a-z][a-z0-9_]*/;
            NUMBER = /[0-9]+/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        (g, t)
    }

    #[test]
    fn generated_sentences_lex_cleanly() {
        let (g, t) = setup();
        let gen = SentenceGenerator::new(&g, &t).unwrap();
        let scanner = t.build().unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let s = gen.generate(&mut rng, 8);
            assert!(s.to_uppercase().starts_with("SELECT"), "{s}");
            scanner.scan(&s).unwrap_or_else(|e| panic!("lex {s:?}: {e}"));
        }
    }

    #[test]
    fn sampled_identifiers_never_collide_with_keywords() {
        let (g, t) = setup();
        let gen = SentenceGenerator::new(&g, &t).unwrap();
        let scanner = t.build().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let s = gen.generate(&mut rng, 8);
            let toks = scanner.scan(&s).unwrap();
            // Count FROM tokens: must be exactly 1 (an identifier that
            // sampled as "from" would add more).
            let from_count = toks
                .iter()
                .filter(|t| scanner.name(t.kind) == "FROM")
                .count();
            assert_eq!(from_count, 1, "on {s:?}");
        }
    }

    #[test]
    fn depth_budget_bounds_length() {
        let (g, t) = setup();
        let gen = SentenceGenerator::new(&g, &t).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = gen.generate(&mut rng, 4);
            assert!(s.split(' ').count() < 60, "unexpectedly long: {s}");
        }
    }

    #[test]
    fn generate_from_inner_nonterminal() {
        let (g, t) = setup();
        let gen = SentenceGenerator::new(&g, &t).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = gen.generate_from("cond", &mut rng, 5);
        assert!(s.contains('='), "{s}");
    }

    #[test]
    fn undefined_nonterminal_rejected() {
        let g = parse_grammar("grammar g; a : X missing ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(
            SentenceGenerator::new(&g, &t),
            Err(SentenceError::UndefinedNonterminals(_))
        ));
    }

    #[test]
    fn missing_token_rejected() {
        let g = parse_grammar("grammar g; a : X GHOST ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(
            SentenceGenerator::new(&g, &t),
            Err(SentenceError::UndefinedTokens(v)) if v == ["GHOST"]
        ));
    }

    #[test]
    fn unproductive_start_rejected() {
        let g = parse_grammar("grammar g; a : a X ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(
            SentenceGenerator::new(&g, &t),
            Err(SentenceError::Unproductive(_))
        ));
    }

    #[test]
    fn minimal_regex_samples() {
        use sqlweave_lexgen::regex::parse;
        assert_eq!(sample_regex_minimal(&parse("[a-z]+").unwrap()), "a");
        assert_eq!(sample_regex_minimal(&parse("abc?").unwrap()), "ab");
        assert_eq!(sample_regex_minimal(&parse("x|yy").unwrap()), "x");
    }

    #[test]
    fn random_regex_samples_match_language() {
        use sqlweave_lexgen::nfa::Nfa;
        use sqlweave_lexgen::regex::parse;
        let pat = "[a-z][a-z0-9_]*";
        let re = parse(pat).unwrap();
        let mut nfa = Nfa::new();
        nfa.add_pattern(&re, 0);
        nfa.finish();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = sample_regex(&re, &mut rng);
            assert_eq!(nfa.simulate(&s), Some((s.len(), 0)), "sample {s:?}");
        }
    }
}

//! Pretty-printing grammars back to DSL text.
//!
//! The output re-parses to an identical grammar ([`crate::dsl`] round-trip),
//! which the composition engine uses to emit human-readable composed
//! grammars for inspection and golden tests.

use crate::ir::{seq_to_string, Grammar};
use std::fmt::Write as _;

/// Render a grammar as DSL text.
pub fn to_dsl(g: &Grammar) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "grammar {};", g.name());
    let _ = writeln!(out, "start {};", g.start());
    let _ = writeln!(out);
    for p in g.productions() {
        if p.alternatives.len() == 1 && p.alternatives[0].label.is_none() {
            let _ = writeln!(out, "{} : {} ;", p.name, seq_to_string(&p.alternatives[0].seq));
            continue;
        }
        let _ = writeln!(out, "{}", p.name);
        for (i, alt) in p.alternatives.iter().enumerate() {
            let lead = if i == 0 { ':' } else { '|' };
            let mut line = format!("  {lead} {}", seq_to_string(&alt.seq));
            if let Some(l) = &alt.label {
                let _ = write!(line, " #{l}");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        let _ = writeln!(out, "  ;");
    }
    out
}

/// One-line summary used in diagnostics: `name(start): N productions,
/// M alternatives`.
pub fn summary(g: &Grammar) -> String {
    format!(
        "{}({}): {} productions, {} alternatives",
        g.name(),
        g.start(),
        g.productions().len(),
        g.alternative_count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_grammar;

    #[test]
    fn single_alternative_prints_on_one_line() {
        let g = parse_grammar("grammar g; a : X Y ;").unwrap();
        let out = to_dsl(&g);
        assert!(out.contains("a : X Y ;"), "{out}");
    }

    #[test]
    fn multi_alternative_layout() {
        let g = parse_grammar("grammar g; a : X #x | Y #y ;").unwrap();
        let out = to_dsl(&g);
        assert!(out.contains("  : X #x"), "{out}");
        assert!(out.contains("  | Y #y"), "{out}");
    }

    #[test]
    fn epsilon_alternative_roundtrips() {
        let src = "grammar g; a : X | ;";
        let g1 = parse_grammar(src).unwrap();
        let g2 = parse_grammar(&to_dsl(&g1)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn nested_constructs_roundtrip() {
        let src = "grammar g; a : b? (COMMA (X | Y))* (Z W)+ ;";
        let g1 = parse_grammar(src).unwrap();
        let g2 = parse_grammar(&to_dsl(&g1)).unwrap();
        assert_eq!(g1, g2, "printed:\n{}", to_dsl(&g1));
    }

    #[test]
    fn summary_format() {
        let g = parse_grammar("grammar g; a : X | Y ; b : Z ;").unwrap();
        assert_eq!(summary(&g), "g(a): 2 productions, 3 alternatives");
    }
}

//! Lowering EBNF operators to plain BNF.
//!
//! Table-driven LL(1) parsing wants productions whose alternatives are flat
//! sequences of tokens and nonterminals. [`flatten`] rewrites `?`, `*`, `+`
//! and inline groups into synthetic right-recursive nonterminals named
//! `<owner>__<kind><n>`. The `__` infix marks synthetic nodes; the CST
//! builder in `sqlweave-parser-rt` splices their children into the parent
//! node so parse trees look identical for both engines.

use crate::ir::{Alternative, Grammar, Production, Term};

/// `true` if `name` names a synthetic nonterminal introduced by [`flatten`].
pub fn is_synthetic(name: &str) -> bool {
    name.contains("__")
}

struct Lowerer {
    new_productions: Vec<Production>,
    counter: usize,
}

impl Lowerer {
    fn fresh(&mut self, owner: &str, kind: &str) -> String {
        self.counter += 1;
        format!("{owner}__{kind}{}", self.counter)
    }

    /// Flatten one sequence, emitting synthetic productions as needed.
    fn lower_seq(&mut self, owner: &str, seq: &[Term]) -> Vec<Term> {
        let mut out = Vec::with_capacity(seq.len());
        for term in seq {
            match term {
                Term::NonTerminal(_) | Term::Token(_) => out.push(term.clone()),
                Term::Optional(body) => {
                    let body = self.lower_seq(owner, body);
                    let name = self.fresh(owner, "opt");
                    self.new_productions.push(Production {
                        name: name.clone(),
                        alternatives: vec![Alternative::new(body), Alternative::new(vec![])],
                    });
                    out.push(Term::NonTerminal(name));
                }
                Term::Star(body) => {
                    let body = self.lower_seq(owner, body);
                    let name = self.fresh(owner, "star");
                    let mut rec = body.clone();
                    rec.push(Term::NonTerminal(name.clone()));
                    self.new_productions.push(Production {
                        name: name.clone(),
                        alternatives: vec![Alternative::new(rec), Alternative::new(vec![])],
                    });
                    out.push(Term::NonTerminal(name));
                }
                Term::Plus(body) => {
                    // x+ = x x*
                    let body_flat = self.lower_seq(owner, body);
                    let star = self.fresh(owner, "star");
                    let mut rec = body_flat.clone();
                    rec.push(Term::NonTerminal(star.clone()));
                    self.new_productions.push(Production {
                        name: star.clone(),
                        alternatives: vec![Alternative::new(rec), Alternative::new(vec![])],
                    });
                    out.extend(body_flat);
                    out.push(Term::NonTerminal(star));
                }
                Term::Group(alts) => {
                    let lowered: Vec<Alternative> = alts
                        .iter()
                        .map(|a| Alternative::new(self.lower_seq(owner, a)))
                        .collect();
                    if lowered.len() == 1 {
                        out.extend(lowered.into_iter().next().unwrap().seq);
                    } else {
                        let name = self.fresh(owner, "grp");
                        self.new_productions.push(Production {
                            name: name.clone(),
                            alternatives: lowered,
                        });
                        out.push(Term::NonTerminal(name));
                    }
                }
            }
        }
        out
    }
}

/// Rewrite `g` into plain BNF. Alternative labels are preserved on the
/// original productions; synthetic productions are unlabeled.
pub fn flatten(g: &Grammar) -> Grammar {
    let mut lowerer = Lowerer {
        new_productions: Vec::new(),
        counter: 0,
    };
    let mut out = Grammar::new(g.name(), g.start());
    for p in g.productions() {
        let alternatives = p
            .alternatives
            .iter()
            .map(|alt| Alternative {
                label: alt.label.clone(),
                seq: lowerer.lower_seq(&p.name, &alt.seq),
            })
            .collect();
        out.add_production(Production {
            name: p.name.clone(),
            alternatives,
        });
    }
    for p in lowerer.new_productions {
        out.add_production(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_grammar;

    fn is_flat(g: &Grammar) -> bool {
        g.productions().iter().all(|p| {
            p.alternatives.iter().all(|a| {
                a.seq
                    .iter()
                    .all(|t| matches!(t, Term::NonTerminal(_) | Term::Token(_)))
            })
        })
    }

    #[test]
    fn optional_lowered_to_epsilon_alternative() {
        let g = parse_grammar("grammar g; a : X b? Y ;").unwrap();
        let f = flatten(&g);
        assert!(is_flat(&f));
        let synth: Vec<_> = f
            .productions()
            .iter()
            .filter(|p| is_synthetic(&p.name))
            .collect();
        assert_eq!(synth.len(), 1);
        assert_eq!(synth[0].alternatives.len(), 2);
        assert!(synth[0].alternatives[1].is_epsilon());
    }

    #[test]
    fn star_lowered_to_right_recursion() {
        let g = parse_grammar("grammar g; a : X (COMMA X)* ;").unwrap();
        let f = flatten(&g);
        assert!(is_flat(&f));
        let star = f
            .productions()
            .iter()
            .find(|p| p.name.contains("__star"))
            .unwrap();
        // star : COMMA X star | ε
        assert_eq!(star.alternatives.len(), 2);
        let rec = &star.alternatives[0].seq;
        assert_eq!(rec.last(), Some(&Term::nt(&star.name)));
    }

    #[test]
    fn plus_lowered_to_body_then_star() {
        let g = parse_grammar("grammar g; a : X+ ;").unwrap();
        let f = flatten(&g);
        assert!(is_flat(&f));
        let a = f.production("a").unwrap();
        assert_eq!(a.alternatives[0].seq.len(), 2);
        assert_eq!(a.alternatives[0].seq[0], Term::tok("X"));
        assert!(matches!(&a.alternatives[0].seq[1], Term::NonTerminal(n) if n.contains("__star")));
    }

    #[test]
    fn group_lowered_to_alternative_production() {
        let g = parse_grammar("grammar g; a : (ASC | DESC) X ;").unwrap();
        let f = flatten(&g);
        assert!(is_flat(&f));
        let grp = f
            .productions()
            .iter()
            .find(|p| p.name.contains("__grp"))
            .unwrap();
        assert_eq!(grp.alternatives.len(), 2);
    }

    #[test]
    fn nested_constructs_fully_flattened() {
        let g = parse_grammar("grammar g; a : (b (COMMA b)*)? ;").unwrap();
        let f = flatten(&g);
        assert!(is_flat(&f));
        // opt + star synthetics
        assert_eq!(
            f.productions().iter().filter(|p| is_synthetic(&p.name)).count(),
            2
        );
    }

    #[test]
    fn labels_preserved_on_original_productions() {
        let g = parse_grammar("grammar g; a : X #first | Y? #second ;").unwrap();
        let f = flatten(&g);
        let a = f.production("a").unwrap();
        assert_eq!(a.alternatives[0].label.as_deref(), Some("first"));
        assert_eq!(a.alternatives[1].label.as_deref(), Some("second"));
    }

    #[test]
    fn already_flat_grammar_unchanged_in_shape() {
        let g = parse_grammar("grammar g; a : X b ; b : Y | ;").unwrap();
        let f = flatten(&g);
        assert_eq!(f.productions().len(), g.productions().len());
        assert_eq!(f, g);
    }

    #[test]
    fn synthetic_names_unique_across_productions() {
        let g = parse_grammar("grammar g; a : X? Y? ; b : Z? ;").unwrap();
        let f = flatten(&g);
        let mut names: Vec<_> = f
            .productions()
            .iter()
            .filter(|p| is_synthetic(&p.name))
            .map(|p| p.name.clone())
            .collect();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 3);
    }
}

//! Grammar intermediate representation.
//!
//! Conventions (shared with the DSL): token names are `UPPER_SNAKE`,
//! nonterminal names are `lower_snake`. Alternatives may carry `#labels`
//! used by the AST-lowering layer as semantic-action hooks.

use std::collections::HashMap;
use std::fmt;

/// One item in an alternative's sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Reference to another production.
    NonTerminal(String),
    /// Reference to a token rule (terminal).
    Token(String),
    /// `seq?` — zero or one occurrence.
    Optional(Vec<Term>),
    /// `(seq)*` — zero or more occurrences.
    Star(Vec<Term>),
    /// `(seq)+` — one or more occurrences.
    Plus(Vec<Term>),
    /// `(alt | alt | …)` — inline alternation.
    Group(Vec<Vec<Term>>),
}

impl Term {
    /// Shorthand constructor for a nonterminal reference.
    pub fn nt(name: &str) -> Term {
        Term::NonTerminal(name.to_string())
    }

    /// Shorthand constructor for a token reference.
    pub fn tok(name: &str) -> Term {
        Term::Token(name.to_string())
    }

    /// Visit every token and nonterminal name in this term.
    pub fn visit_symbols<'a>(&'a self, f: &mut impl FnMut(&'a str, bool)) {
        match self {
            Term::NonTerminal(n) => f(n, false),
            Term::Token(t) => f(t, true),
            Term::Optional(seq) | Term::Star(seq) | Term::Plus(seq) => {
                for t in seq {
                    t.visit_symbols(f);
                }
            }
            Term::Group(alts) => {
                for alt in alts {
                    for t in alt {
                        t.visit_symbols(f);
                    }
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::NonTerminal(n) | Term::Token(n) => write!(f, "{n}"),
            Term::Optional(seq) => {
                if seq.len() == 1 && matches!(seq[0], Term::NonTerminal(_) | Term::Token(_)) {
                    write!(f, "{}?", seq[0])
                } else {
                    write!(f, "({})?", seq_to_string(seq))
                }
            }
            Term::Star(seq) => write!(f, "({})*", seq_to_string(seq)),
            Term::Plus(seq) => write!(f, "({})+", seq_to_string(seq)),
            Term::Group(alts) => {
                let inner: Vec<String> = alts.iter().map(|a| seq_to_string(a)).collect();
                write!(f, "({})", inner.join(" | "))
            }
        }
    }
}

/// Render a sequence with single spaces.
pub fn seq_to_string(seq: &[Term]) -> String {
    seq.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// One alternative of a production.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alternative {
    /// Optional `#label` naming this alternative for semantic actions.
    pub label: Option<String>,
    /// The sequence of terms; empty = ε.
    pub seq: Vec<Term>,
}

impl Alternative {
    /// Unlabeled alternative.
    pub fn new(seq: Vec<Term>) -> Self {
        Alternative { label: None, seq }
    }

    /// Labeled alternative.
    pub fn labeled(label: &str, seq: Vec<Term>) -> Self {
        Alternative {
            label: Some(label.to_string()),
            seq,
        }
    }

    /// `true` if this alternative is the empty sequence.
    pub fn is_epsilon(&self) -> bool {
        self.seq.is_empty()
    }
}

impl fmt::Display for Alternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.seq.is_empty() {
            write!(f, "/* epsilon */")?;
        } else {
            write!(f, "{}", seq_to_string(&self.seq))?;
        }
        if let Some(l) = &self.label {
            write!(f, " #{l}")?;
        }
        Ok(())
    }
}

/// A production: one nonterminal and its alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Production {
    /// The nonterminal this production defines.
    pub name: String,
    /// Ordered alternatives (order is parse priority for the backtracking
    /// engine and a tiebreak hint for table conflicts).
    pub alternatives: Vec<Alternative>,
}

impl Production {
    /// Construct a production.
    pub fn new(name: &str, alternatives: Vec<Alternative>) -> Self {
        Production {
            name: name.to_string(),
            alternatives,
        }
    }
}

/// A context-free grammar in EBNF form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    name: String,
    start: String,
    productions: Vec<Production>,
    index: HashMap<String, usize>,
}

impl Grammar {
    /// Create a grammar. `start` need not be defined yet (sub-grammars may
    /// reference nonterminals provided by other features; composition
    /// resolves them).
    pub fn new(name: &str, start: &str) -> Self {
        Grammar {
            name: name.to_string(),
            start: start.to_string(),
            productions: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Grammar name (usually the feature name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The start nonterminal.
    pub fn start(&self) -> &str {
        &self.start
    }

    /// Change the start nonterminal.
    pub fn set_start(&mut self, start: &str) {
        self.start = start.to_string();
    }

    /// Rename the grammar.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// All productions in declaration order.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Mutable access (used by the composition engine).
    pub fn productions_mut(&mut self) -> &mut Vec<Production> {
        &mut self.productions
    }

    /// Rebuild the name index after direct mutation of productions.
    pub fn reindex(&mut self) {
        self.index = self
            .productions
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
    }

    /// Look up a production by nonterminal name.
    pub fn production(&self, name: &str) -> Option<&Production> {
        self.index.get(name).map(|&i| &self.productions[i])
    }

    /// Mutable lookup.
    pub fn production_mut(&mut self, name: &str) -> Option<&mut Production> {
        let i = *self.index.get(name)?;
        Some(&mut self.productions[i])
    }

    /// Add a production. If the nonterminal already exists, alternatives are
    /// appended (plain union; the composition engine applies the paper's
    /// smarter rules instead).
    pub fn add_production(&mut self, prod: Production) {
        match self.index.get(&prod.name) {
            Some(&i) => self.productions[i].alternatives.extend(prod.alternatives),
            None => {
                self.index.insert(prod.name.clone(), self.productions.len());
                self.productions.push(prod);
            }
        }
    }

    /// Every nonterminal referenced anywhere (defined or not).
    pub fn referenced_nonterminals(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for p in &self.productions {
            for alt in &p.alternatives {
                for term in &alt.seq {
                    term.visit_symbols(&mut |name, is_token| {
                        if !is_token && !seen.contains(&name) {
                            seen.push(name);
                        }
                    });
                }
            }
        }
        seen
    }

    /// Every token referenced anywhere.
    pub fn referenced_tokens(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for p in &self.productions {
            for alt in &p.alternatives {
                for term in &alt.seq {
                    term.visit_symbols(&mut |name, is_token| {
                        if is_token && !seen.contains(&name) {
                            seen.push(name);
                        }
                    });
                }
            }
        }
        seen
    }

    /// Nonterminals referenced but not defined (to be supplied by other
    /// sub-grammars before parser construction).
    pub fn undefined_nonterminals(&self) -> Vec<&str> {
        self.referenced_nonterminals()
            .into_iter()
            .filter(|n| !self.index.contains_key(*n))
            .collect()
    }

    /// Total number of alternatives across all productions (size metric).
    pub fn alternative_count(&self) -> usize {
        self.productions.iter().map(|p| p.alternatives.len()).sum()
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::print::to_dsl(self))
    }
}

/// Is `name` a token by naming convention (all-caps with digits/underscore)?
pub fn is_token_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && name.chars().any(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_grammar() -> Grammar {
        let mut g = Grammar::new("query_specification", "query_specification");
        g.add_production(Production::new(
            "query_specification",
            vec![Alternative::new(vec![
                Term::tok("SELECT"),
                Term::Optional(vec![Term::nt("set_quantifier")]),
                Term::nt("select_list"),
                Term::nt("table_expression"),
            ])],
        ));
        g.add_production(Production::new(
            "select_list",
            vec![Alternative::new(vec![
                Term::nt("select_sublist"),
                Term::Star(vec![Term::tok("COMMA"), Term::nt("select_sublist")]),
            ])],
        ));
        g
    }

    #[test]
    fn token_name_convention() {
        assert!(is_token_name("SELECT"));
        assert!(is_token_name("GROUP_BY"));
        assert!(is_token_name("IDENT2"));
        assert!(!is_token_name("select"));
        assert!(!is_token_name("Select"));
        assert!(!is_token_name(""));
        assert!(!is_token_name("_"));
    }

    #[test]
    fn referenced_symbols() {
        let g = select_grammar();
        let nts = g.referenced_nonterminals();
        assert!(nts.contains(&"set_quantifier"));
        assert!(nts.contains(&"select_list"));
        assert!(nts.contains(&"table_expression"));
        let toks = g.referenced_tokens();
        assert_eq!(toks, ["SELECT", "COMMA"]);
    }

    #[test]
    fn undefined_nonterminals_listed() {
        let g = select_grammar();
        let undef = g.undefined_nonterminals();
        assert!(undef.contains(&"set_quantifier"));
        assert!(undef.contains(&"table_expression"));
        assert!(undef.contains(&"select_sublist"));
        assert!(!undef.contains(&"select_list"));
    }

    #[test]
    fn add_production_merges_alternatives() {
        let mut g = Grammar::new("g", "a");
        g.add_production(Production::new("a", vec![Alternative::new(vec![Term::tok("X")])]));
        g.add_production(Production::new("a", vec![Alternative::new(vec![Term::tok("Y")])]));
        assert_eq!(g.productions().len(), 1);
        assert_eq!(g.production("a").unwrap().alternatives.len(), 2);
    }

    #[test]
    fn display_of_terms() {
        let t = Term::Optional(vec![Term::nt("set_quantifier")]);
        assert_eq!(t.to_string(), "set_quantifier?");
        let t = Term::Star(vec![Term::tok("COMMA"), Term::nt("x")]);
        assert_eq!(t.to_string(), "(COMMA x)*");
        let t = Term::Group(vec![vec![Term::tok("ASC")], vec![Term::tok("DESC")]]);
        assert_eq!(t.to_string(), "(ASC | DESC)");
    }

    #[test]
    fn reindex_after_mutation() {
        let mut g = select_grammar();
        g.productions_mut().retain(|p| p.name != "select_list");
        g.reindex();
        assert!(g.production("select_list").is_none());
        assert!(g.production("query_specification").is_some());
    }

    #[test]
    fn alternative_count_metric() {
        let g = select_grammar();
        assert_eq!(g.alternative_count(), 2);
    }
}

//! Static LL(k) lookahead analysis over the flattened grammar.
//!
//! The seed pipeline computes FIRST/FOLLOW at k=1 ([`crate::analysis`]) and
//! leaves every LL(1) prediction conflict to the backtracking engine. This
//! module closes the gap with the paper's LL(k) parser-generation model:
//! for each conflicted decision point it computes capped FIRST_k/FOLLOW_k
//! *sequence* sets (k ≤ [`K_MAX`]) and classifies the conflict as
//!
//! * [`Outcome::Resolved`] — some k' ≤ k makes the alternatives' lookahead
//!   sets pairwise disjoint; a k'-token dispatch table is emitted (filtered
//!   so a table hit can never diverge from the engine's ordered-PEG
//!   semantics, see below);
//! * [`Outcome::Residual`] — the alternatives still intersect at k; the
//!   shortest shared token sequence is emitted as a concrete witness;
//! * [`Outcome::Saturated`] — a set overflowed its cap and no witness was
//!   found among the retained words, so neither claim can be certified.
//!
//! # Words
//!
//! A *word* is a sequence of ≤ k token ids packed into a `u64`
//! (`len << 48 | t0 << 32 | t1 << 16 | t2`). Words shorter than the set's
//! depth mean the input *ends* there (EOF inside the window), so no
//! explicit end marker is needed, and the natural `u64` order is exactly
//! (length, lexicographic) — the minimum of an intersection is the
//! shortest witness. Sets under-approximate when capped (`complete`
//! false): word *presence* is always a real derivation, word *absence* is
//! only trustworthy when the set is complete.
//!
//! # PEG safety
//!
//! The backtracking engine commits to the first alternative that locally
//! succeeds; a dispatch hit on alternative `i` may only skip the probes of
//! `j < i` if none of them could have succeeded. Full-window matches are
//! excluded by lookahead-set disjointness; the remaining hazard is a `j`
//! that succeeds consuming *fewer* than k' tokens. [`analyze_lookahead`]
//! therefore drops any entry `(w → i)` for which some earlier alternative
//! has a complete FIRST word shorter than k' that prefixes `w`.

use crate::analysis::{GrammarAnalysis, EOF};
use crate::ir::Term;
use crate::lower::is_synthetic;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Deepest lookahead the packed word representation supports.
pub const K_MAX: usize = 3;

/// Per-set word cap. When a set reaches the cap the largest word is
/// dropped and the set is marked incomplete; keeping the smallest words
/// preserves the shortest-witness property under saturation.
const CAP: usize = 20_000;

type Word = u64;
const EPSILON: Word = 0;

fn w_len(w: Word) -> usize {
    (w >> 48) as usize
}

fn w_tok(w: Word, i: usize) -> u16 {
    (w >> (32 - 16 * i)) as u16
}

fn w_push(w: Word, t: u16) -> Word {
    let l = w_len(w);
    debug_assert!(l < K_MAX);
    (((l + 1) as u64) << 48) | (w & 0x0000_FFFF_FFFF_FFFF) | ((t as u64) << (32 - 16 * l))
}

/// Append `v`'s tokens to `u`, truncating at length `j`.
fn w_concat(j: usize, u: Word, v: Word) -> Word {
    let mut out = u;
    for i in 0..w_len(v) {
        if w_len(out) == j {
            break;
        }
        out = w_push(out, w_tok(v, i));
    }
    out
}

fn w_trunc(j: usize, w: Word) -> Word {
    if w_len(w) <= j {
        return w;
    }
    let mut out = EPSILON;
    for i in 0..j {
        out = w_push(out, w_tok(w, i));
    }
    out
}

fn w_prefix(v: Word, w: Word) -> bool {
    w_len(v) <= w_len(w) && (0..w_len(v)).all(|i| w_tok(v, i) == w_tok(w, i))
}

/// A capped set of packed words plus a completeness flag.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SeqSet {
    words: BTreeSet<Word>,
    complete: bool,
}

impl SeqSet {
    fn new() -> Self {
        SeqSet {
            words: BTreeSet::new(),
            complete: true,
        }
    }

    fn insert(&mut self, w: Word) {
        if self.words.contains(&w) {
            return;
        }
        if self.words.len() >= CAP {
            self.complete = false;
            let &max = self.words.iter().next_back().unwrap();
            if w < max {
                self.words.remove(&max);
                self.words.insert(w);
            }
        } else {
            self.words.insert(w);
        }
    }
}

/// One compiled dispatch-table entry: observing `word` as the next tokens
/// selects alternative `alt` directly. A word shorter than the decision's
/// k means the input must end right after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchEntry {
    /// Token names, in input order; length ≤ the decision's k.
    pub word: Vec<String>,
    /// The alternative index (into the flat production) the word selects.
    pub alt: usize,
}

/// Classification of one conflicted decision point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Disjoint at `k` tokens of lookahead; `entries` is the (PEG-safety
    /// filtered) dispatch table.
    Resolved {
        /// Minimal lookahead depth that separates the alternatives.
        k: usize,
        /// Dispatch entries, sorted shortest-word-first.
        entries: Vec<DispatchEntry>,
    },
    /// Still ambiguous at the analysis depth: `alternatives` share the
    /// lookahead sequence `witness`.
    Residual {
        /// The first alternative pair (by index) sharing the witness.
        alternatives: (usize, usize),
        /// Shortest shared token sequence.
        witness: Vec<String>,
        /// `true` if the witness requires the input to end after it.
        witness_eof: bool,
    },
    /// A lookahead set overflowed its cap and no witness survived among
    /// the retained words — neither resolution nor ambiguity is provable.
    Saturated,
}

/// One conflicted decision point and its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Flat production name (may be a synthetic `owner__optN` etc.).
    pub production: String,
    /// `true` if the production was introduced by EBNF lowering.
    pub synthetic: bool,
    /// The LL(1) conflict tokens at this production, sorted (may include
    /// [`EOF`] when a nullable alternative conflicts at end of input).
    pub conflict_tokens: Vec<String>,
    /// How the conflict classifies at the analysis depth.
    pub outcome: Outcome,
}

impl Decision {
    /// One-line human rendering used by the linter and the CLI report.
    pub fn summary(&self) -> String {
        let toks = self.conflict_tokens.join(", ");
        match &self.outcome {
            Outcome::Resolved { k, entries } => format!(
                "LL(1) conflict on {toks} is resolvable with k={k} lookahead ({} dispatch entries)",
                entries.len()
            ),
            Outcome::Residual {
                alternatives: (i, j),
                witness,
                witness_eof,
            } => format!(
                "residual ambiguity on {toks}: alternatives {i} and {j} share lookahead `{}`",
                witness_display(witness, *witness_eof)
            ),
            Outcome::Saturated => format!(
                "lookahead analysis saturated on {toks} (set cap reached); treated as ambiguous"
            ),
        }
    }
}

/// Render a witness with a trailing `$` when it requires end of input.
pub fn witness_display(witness: &[String], eof: bool) -> String {
    let mut s = witness.join(" ");
    if eof {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push('$');
    }
    s
}

/// Result of [`analyze_lookahead`]: one [`Decision`] per conflicted flat
/// production, in first-conflict order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadAnalysis {
    /// The depth the analysis ran at (clamped to 1..=[`K_MAX`]).
    pub k: usize,
    /// Per-production classifications.
    pub decisions: Vec<Decision>,
}

impl LookaheadAnalysis {
    /// Number of decisions resolved at some k' ≤ k.
    pub fn resolved(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.outcome, Outcome::Resolved { .. }))
            .count()
    }

    /// Number of residual (witnessed) ambiguities.
    pub fn residual(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.outcome, Outcome::Residual { .. }))
            .count()
    }

    /// Number of saturated decisions.
    pub fn saturated(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.outcome, Outcome::Saturated))
            .count()
    }
}

struct La<'a> {
    a: &'a GrammarAnalysis,
    k: usize,
    tok_ids: HashMap<&'a str, u16>,
    tok_names: Vec<&'a str>,
    /// `first[j]` / `follow[j]` are valid for j in 1..=k; index 0 unused.
    /// Level 1 is populated for every nonterminal (derived from the k=1
    /// analysis); deeper levels only for demanded symbols.
    first: Vec<BTreeMap<&'a str, SeqSet>>,
    follow: Vec<BTreeMap<&'a str, SeqSet>>,
    /// Nonterminal occurrences: name → (production idx, alt idx, position).
    occ: HashMap<&'a str, Vec<(usize, usize, usize)>>,
}

impl<'a> La<'a> {
    fn new(a: &'a GrammarAnalysis, k: usize) -> Self {
        let mut tok_ids: HashMap<&'a str, u16> = HashMap::new();
        let mut tok_names: Vec<&'a str> = Vec::new();
        let mut occ: HashMap<&'a str, Vec<(usize, usize, usize)>> = HashMap::new();
        for (pi, p) in a.flat.productions().iter().enumerate() {
            for (ai, alt) in p.alternatives.iter().enumerate() {
                for (pos, term) in alt.seq.iter().enumerate() {
                    match term {
                        Term::Token(t) => {
                            if !tok_ids.contains_key(t.as_str()) {
                                let id = tok_names.len() as u16;
                                tok_ids.insert(t.as_str(), id);
                                tok_names.push(t.as_str());
                            }
                        }
                        Term::NonTerminal(n) => {
                            occ.entry(n.as_str()).or_default().push((pi, ai, pos));
                        }
                        _ => unreachable!("lookahead runs on flattened grammars"),
                    }
                }
            }
        }

        let mut first: Vec<BTreeMap<&'a str, SeqSet>> = vec![BTreeMap::new(); k + 1];
        let mut follow: Vec<BTreeMap<&'a str, SeqSet>> = vec![BTreeMap::new(); k + 1];
        for p in a.flat.productions() {
            let name = p.name.as_str();
            let mut f = SeqSet::new();
            if a.nullable.contains(name) {
                f.insert(EPSILON);
            }
            for t in &a.first[name] {
                f.insert(w_push(EPSILON, tok_ids[t.as_str()]));
            }
            first[1].insert(name, f);
            let mut fo = SeqSet::new();
            for t in &a.follow[name] {
                if t == EOF {
                    fo.insert(EPSILON);
                } else {
                    fo.insert(w_push(EPSILON, tok_ids[t.as_str()]));
                }
            }
            follow[1].insert(name, fo);
        }

        La {
            a,
            k,
            tok_ids,
            tok_names,
            first,
            follow,
            occ,
        }
    }

    fn min_len(&self, n: &str) -> usize {
        usize::from(!self.a.nullable.contains(n))
    }

    /// FIRST_j ⊕-fold of a flat sequence, starting from {ε}.
    fn fold_seq(&self, j: usize, seq: &[Term]) -> SeqSet {
        let mut acc = SeqSet::new();
        acc.insert(EPSILON);
        for term in seq {
            // Minimum element is the shortest word; if even it is full,
            // nothing can be extended any further.
            if acc.words.iter().next().is_none_or(|&w| w_len(w) == j) {
                break;
            }
            let mut next = SeqSet::new();
            next.complete = acc.complete;
            match term {
                Term::Token(t) => {
                    let id = self.tok_ids[t.as_str()];
                    for &u in &acc.words {
                        if w_len(u) == j {
                            next.insert(u);
                        } else {
                            next.insert(w_push(u, id));
                        }
                    }
                }
                Term::NonTerminal(n) => {
                    for &u in &acc.words {
                        let l = w_len(u);
                        if l == j {
                            next.insert(u);
                            continue;
                        }
                        match self.first[j - l].get(n.as_str()) {
                            Some(src) => {
                                next.complete &= src.complete;
                                for &v in &src.words {
                                    next.insert(w_concat(j, u, v));
                                }
                            }
                            // Not demanded — should not happen; treat as
                            // unknown (sound: empty + incomplete).
                            None => next.complete = false,
                        }
                    }
                }
                _ => unreachable!("lookahead runs on flattened grammars"),
            }
            acc = next;
        }
        acc
    }

    /// Register FIRST demands for every symbol contributing to the first
    /// `budget` tokens of `seq`.
    #[allow(clippy::too_many_arguments)]
    fn walk_demand(
        &self,
        seq: &[Term],
        budget: usize,
        fseen: &mut BTreeSet<(&'a str, usize)>,
        fwork: &mut Vec<(&'a str, usize)>,
    ) {
        let mut budget = budget;
        for term in seq {
            if budget == 0 {
                break;
            }
            match term {
                Term::Token(_) => budget -= 1,
                Term::NonTerminal(n) => {
                    let n: &'a str = self
                        .a
                        .flat
                        .production(n)
                        .map(|p| p.name.as_str())
                        .unwrap_or_default();
                    for jj in 2..=budget {
                        if fseen.insert((n, jj)) {
                            fwork.push((n, jj));
                        }
                    }
                    budget = budget.saturating_sub(self.min_len(n));
                }
                _ => unreachable!(),
            }
        }
    }

    /// Demand closure + fixpoint computation of the deep FIRST/FOLLOW
    /// tables needed to classify `conflicted` at depth `self.k`.
    fn compute(&mut self, conflicted: &[&'a str]) {
        let k = self.k;
        let mut fseen: BTreeSet<(&'a str, usize)> = BTreeSet::new();
        let mut fwork: Vec<(&'a str, usize)> = Vec::new();
        let mut wseen: BTreeSet<(&'a str, usize)> = BTreeSet::new();
        let mut wwork: Vec<(&'a str, usize)> = Vec::new();

        for &name in conflicted {
            if let Some(p) = self.a.flat.production(name) {
                for alt in &p.alternatives {
                    self.walk_demand(&alt.seq, k, &mut fseen, &mut fwork);
                }
            }
            for jj in 2..=k {
                if wseen.insert((name, jj)) {
                    wwork.push((name, jj));
                }
            }
        }

        loop {
            if let Some((n, j)) = fwork.pop() {
                if let Some(p) = self.a.flat.production(n) {
                    for alt in &p.alternatives {
                        self.walk_demand(&alt.seq, j, &mut fseen, &mut fwork);
                    }
                }
                continue;
            }
            if let Some((n, j)) = wwork.pop() {
                if let Some(occs) = self.occ.get(n) {
                    let occs = occs.clone();
                    for (pi, ai, pos) in occs {
                        let p = &self.a.flat.productions()[pi];
                        let rest = &p.alternatives[ai].seq[pos + 1..];
                        self.walk_demand(rest, j, &mut fseen, &mut fwork);
                        let restmin: usize = rest
                            .iter()
                            .map(|t| match t {
                                Term::Token(_) => 1,
                                Term::NonTerminal(m) => self.min_len(m),
                                _ => unreachable!(),
                            })
                            .sum();
                        let up = j.saturating_sub(restmin);
                        for jj in 2..=up {
                            if wseen.insert((p.name.as_str(), jj)) {
                                wwork.push((p.name.as_str(), jj));
                            }
                        }
                    }
                }
                continue;
            }
            break;
        }

        // Pre-seed every demanded entry as empty-but-complete so that
        // self-referential lookups during the first fixpoint iteration do
        // not permanently poison completeness flags (the `None` branches
        // below then only fire for genuinely un-demanded symbols). The
        // optimistic seed is sound: flags are recomputed from scratch every
        // iteration and only flip false when a cap is actually hit.
        for &(n, j) in &fseen {
            self.first[j].entry(n).or_insert_with(SeqSet::new);
        }
        for &(n, j) in &wseen {
            self.follow[j].entry(n).or_insert_with(SeqSet::new);
        }

        // FIRST fixpoints, level by level (level j uses levels < j, fixed).
        for j in 2..=k {
            let names: Vec<&'a str> = fseen
                .iter()
                .filter(|(_, jj)| *jj == j)
                .map(|(n, _)| *n)
                .collect();
            loop {
                let mut changed = false;
                for &name in &names {
                    let Some(p) = self.a.flat.production(name) else { continue };
                    let mut acc = SeqSet::new();
                    for alt in &p.alternatives {
                        let s = self.fold_seq(j, &alt.seq);
                        acc.complete &= s.complete;
                        for &w in &s.words {
                            acc.insert(w);
                        }
                    }
                    if self.first[j].get(name) != Some(&acc) {
                        self.first[j].insert(name, acc);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // FOLLOW fixpoints, level by level.
        let start = self.a.flat.start().to_string();
        for j in 2..=k {
            let names: Vec<&'a str> = wseen
                .iter()
                .filter(|(_, jj)| *jj == j)
                .map(|(n, _)| *n)
                .collect();
            loop {
                let mut changed = false;
                for &name in &names {
                    let mut acc = SeqSet::new();
                    if name == start {
                        acc.insert(EPSILON);
                    }
                    if let Some(occs) = self.occ.get(name) {
                        for &(pi, ai, pos) in occs {
                            let p = &self.a.flat.productions()[pi];
                            let rest = &p.alternatives[ai].seq[pos + 1..];
                            let folded = self.fold_seq(j, rest);
                            acc.complete &= folded.complete;
                            for &w in &folded.words {
                                let l = w_len(w);
                                if l == j {
                                    acc.insert(w);
                                } else {
                                    match self.follow[j - l].get(p.name.as_str()) {
                                        Some(fs) => {
                                            acc.complete &= fs.complete;
                                            for &v in &fs.words {
                                                acc.insert(w_concat(j, w, v));
                                            }
                                        }
                                        None => acc.complete = false,
                                    }
                                }
                            }
                        }
                    }
                    if self.follow[j].get(name) != Some(&acc) {
                        self.follow[j].insert(name, acc);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
    }

    fn names_of(&self, w: Word) -> Vec<String> {
        (0..w_len(w))
            .map(|i| self.tok_names[w_tok(w, i) as usize].to_string())
            .collect()
    }

    fn classify(&self, name: &'a str, conflict: &BTreeSet<&str>) -> Decision {
        let conflict_eof = conflict.contains(EOF);
        let cids: BTreeSet<u16> = conflict
            .iter()
            .filter(|t| **t != EOF)
            .map(|t| self.tok_ids[*t])
            .collect();
        let in_conflict = |w: Word| -> bool {
            if w_len(w) == 0 {
                conflict_eof
            } else {
                cids.contains(&w_tok(w, 0))
            }
        };

        let p = self.a.flat.production(name).expect("conflicted production exists");
        // Per alternative: (full FIRST_k fold, conflict-restricted la set).
        let per_alt: Vec<(SeqSet, SeqSet)> = p
            .alternatives
            .iter()
            .map(|alt| {
                let f = self.fold_seq(self.k, &alt.seq);
                let mut lac = SeqSet::new();
                lac.complete = f.complete;
                for &w in &f.words {
                    let l = w_len(w);
                    if l == self.k {
                        if in_conflict(w) {
                            lac.insert(w);
                        }
                    } else {
                        match self.follow[self.k - l].get(name) {
                            Some(fs) => {
                                lac.complete &= fs.complete;
                                for &v in &fs.words {
                                    let w2 = w_concat(self.k, w, v);
                                    if in_conflict(w2) {
                                        lac.insert(w2);
                                    }
                                }
                            }
                            None => lac.complete = false,
                        }
                    }
                }
                (f, lac)
            })
            .collect();

        let decision = |outcome| Decision {
            production: name.to_string(),
            synthetic: is_synthetic(name),
            conflict_tokens: conflict.iter().map(|t| t.to_string()).collect(),
            outcome,
        };

        for k2 in 2..=self.k {
            let tr: Vec<SeqSet> = per_alt
                .iter()
                .map(|(_, lac)| {
                    let mut s = SeqSet::new();
                    s.complete = lac.complete;
                    for &w in &lac.words {
                        s.insert(w_trunc(k2, w));
                    }
                    s
                })
                .collect();
            if tr.iter().any(|s| !s.complete) {
                continue;
            }
            let disjoint = (0..tr.len()).all(|i| {
                (i + 1..tr.len()).all(|j| tr[i].words.intersection(&tr[j].words).next().is_none())
            });
            if !disjoint {
                continue;
            }
            // PEG-safety filter: drop entries an earlier alternative could
            // pre-empt by locally succeeding on fewer than k2 tokens.
            let mut entries = Vec::new();
            for (i, s) in tr.iter().enumerate() {
                'word: for &w in &s.words {
                    for (fj, _) in per_alt.iter().take(i) {
                        for &v in &fj.words {
                            if w_len(v) >= k2 {
                                break;
                            }
                            if w_prefix(v, w) {
                                continue 'word;
                            }
                        }
                    }
                    entries.push((w, i));
                }
            }
            entries.sort_by_key(|&(w, _)| w);
            let entries = entries
                .into_iter()
                .map(|(w, alt)| DispatchEntry {
                    word: self.names_of(w),
                    alt,
                })
                .collect();
            return decision(Outcome::Resolved { k: k2, entries });
        }

        // Residual: shortest word shared by any pair, first pair wins ties.
        let mut best: Option<(Word, (usize, usize))> = None;
        for i in 0..per_alt.len() {
            for j in i + 1..per_alt.len() {
                if let Some(&w) = per_alt[i].1.words.intersection(&per_alt[j].1.words).next() {
                    if best.is_none_or(|(bw, _)| w < bw) {
                        best = Some((w, (i, j)));
                    }
                }
            }
        }
        match best {
            Some((w, pair)) => decision(Outcome::Residual {
                alternatives: pair,
                witness: self.names_of(w),
                witness_eof: w_len(w) < self.k,
            }),
            None => decision(Outcome::Saturated),
        }
    }
}

/// Run the LL(k) analysis at depth `k` (clamped to 1..=[`K_MAX`]) over a
/// completed k=1 analysis. Returns one [`Decision`] per conflicted flat
/// production, in first-conflict order; an LL(1) grammar yields no
/// decisions. Left-recursive grammars are handled (the k-bounded
/// fixpoints terminate) but their classifications are not meaningful for
/// parsing — callers gate on `analysis.left_recursion` being empty.
pub fn analyze_lookahead(a: &GrammarAnalysis, k: usize) -> LookaheadAnalysis {
    let k = k.clamp(1, K_MAX);
    if a.conflicts.is_empty() {
        return LookaheadAnalysis {
            k,
            decisions: Vec::new(),
        };
    }
    let mut order: Vec<&str> = Vec::new();
    let mut tokens_by: HashMap<&str, BTreeSet<&str>> = HashMap::new();
    for c in &a.conflicts {
        if !tokens_by.contains_key(c.nonterminal.as_str()) {
            order.push(&c.nonterminal);
        }
        tokens_by
            .entry(&c.nonterminal)
            .or_default()
            .insert(&c.token);
    }
    let mut la = La::new(a, k);
    la.compute(&order);
    let decisions = order
        .iter()
        .map(|&name| la.classify(name, &tokens_by[name]))
        .collect();
    LookaheadAnalysis { k, decisions }
}

/// Derive the top-level synchronization set for panic-mode error
/// recovery: the union of FOLLOW over every nonterminal referenced from
/// the start production's (flat) alternatives, plus [`EOF`].
///
/// The intuition mirrors the classic panic-mode rule-of-thumb
/// ("synchronize on tokens that can follow the construct being parsed"),
/// specialized to the script skeleton this generator composes: for
/// `sql_script : sql_statement (SEMI sql_statement)* SEMI?` the flat
/// start alternatives reference the statement nonterminals, whose FOLLOW
/// is exactly `{SEMI, $}` — so a failed statement skips to the next
/// statement boundary. The derivation is fully generic: any grammar's
/// recovery points fall out of its own FOLLOW sets, with no SQL-specific
/// token names wired in.
pub fn recovery_sync_set(a: &GrammarAnalysis) -> BTreeSet<String> {
    let mut sync = BTreeSet::new();
    sync.insert(EOF.to_string());
    let mut pending: Vec<&str> = vec![a.flat.start()];
    let mut seen: BTreeSet<&str> = pending.iter().copied().collect();
    while let Some(name) = pending.pop() {
        let Some(prod) = a.flat.production(name) else {
            continue;
        };
        for alt in &prod.alternatives {
            for term in &alt.seq {
                match term {
                    Term::Token(t) => {
                        sync.insert(t.clone());
                    }
                    Term::NonTerminal(n) => {
                        if let Some(follow) = a.follow.get(n) {
                            sync.extend(follow.iter().cloned());
                        }
                        // Synthetic helpers introduced by EBNF lowering
                        // (the `(SEMI sql_statement)*` loop body) are part
                        // of the start skeleton, not user constructs —
                        // recurse through them so the tokens they mention
                        // still count as statement boundaries.
                        if is_synthetic(n) && seen.insert(n) {
                            pending.push(n);
                        }
                    }
                    // Flat grammars carry only tokens and nonterminals.
                    _ => {}
                }
            }
        }
    }
    sync
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::dsl::parse_grammar;

    fn run(src: &str, k: usize) -> LookaheadAnalysis {
        analyze_lookahead(&analyze(&parse_grammar(src).unwrap()).unwrap(), k)
    }

    fn entry(word: &[&str], alt: usize) -> DispatchEntry {
        DispatchEntry {
            word: word.iter().map(|s| s.to_string()).collect(),
            alt,
        }
    }

    #[test]
    fn packed_word_roundtrip_and_order() {
        let w = w_push(w_push(EPSILON, 7), 3);
        assert_eq!(w_len(w), 2);
        assert_eq!(w_tok(w, 0), 7);
        assert_eq!(w_tok(w, 1), 3);
        // (length, lex) order: shorter sorts first, then position 0 major.
        assert!(w_push(EPSILON, 9) < w);
        assert!(w < w_push(w_push(EPSILON, 8), 0));
        assert!(w_prefix(w_push(EPSILON, 7), w));
        assert!(!w_prefix(w_push(EPSILON, 3), w));
        assert_eq!(w_trunc(1, w), w_push(EPSILON, 7));
        assert_eq!(w_concat(3, w, w_push(EPSILON, 5)), w_push(w, 5));
        assert_eq!(w_concat(2, w, w_push(EPSILON, 5)), w);
    }

    #[test]
    fn seqset_cap_keeps_smallest_and_flags_incomplete() {
        let mut s = SeqSet::new();
        for t in 0..CAP as u64 + 5 {
            s.insert((1 << 48) | ((t % 60_000) << 32));
        }
        assert!(!s.complete);
        assert_eq!(s.words.len(), CAP);
        // Smallest word survives.
        assert!(s.words.contains(&(1 << 48)));
    }

    #[test]
    fn no_conflicts_no_decisions() {
        let la = run("grammar g; s : A b ; b : B | C ;", 3);
        assert!(la.decisions.is_empty());
        assert_eq!(la.k, 3);
    }

    #[test]
    fn common_prefix_resolved_at_k2() {
        let la = run("grammar g; s : A B | A C ;", 3);
        assert_eq!(la.decisions.len(), 1);
        let d = &la.decisions[0];
        assert_eq!(d.production, "s");
        assert!(!d.synthetic);
        assert_eq!(d.conflict_tokens, ["A"]);
        match &d.outcome {
            Outcome::Resolved { k, entries } => {
                assert_eq!(*k, 2);
                assert_eq!(entries, &[entry(&["A", "B"], 0), entry(&["A", "C"], 1)]);
            }
            o => panic!("expected Resolved, got {o:?}"),
        }
        assert_eq!(la.resolved(), 1);
        assert_eq!(la.residual() + la.saturated(), 0);
    }

    #[test]
    fn deeper_prefix_needs_k3() {
        let la = run("grammar g; s : A A B | A A C ;", 3);
        match &la.decisions[0].outcome {
            Outcome::Resolved { k, entries } => {
                assert_eq!(*k, 3);
                assert_eq!(entries, &[entry(&["A", "A", "B"], 0), entry(&["A", "A", "C"], 1)]);
            }
            o => panic!("expected Resolved at 3, got {o:?}"),
        }
        // At k=2 the same grammar is residual with the shared prefix.
        let la = run("grammar g; s : A A B | A A C ;", 2);
        match &la.decisions[0].outcome {
            Outcome::Residual { witness, witness_eof, alternatives } => {
                assert_eq!(witness, &["A", "A"]);
                assert!(!witness_eof);
                assert_eq!(*alternatives, (0, 1));
            }
            o => panic!("expected Residual at 2, got {o:?}"),
        }
    }

    #[test]
    fn star_exit_resolved_through_follow() {
        // Pico-style script: trailing SEMI conflicts the star's continue
        // (SEMI stmt …) with its exit (SEMI? then EOF).
        let la = run(
            "grammar g; start script; script : stmt (SEMI stmt)* SEMI? ; stmt : A ;",
            3,
        );
        let d = la
            .decisions
            .iter()
            .find(|d| d.production.contains("__star"))
            .expect("star decision");
        assert!(d.synthetic);
        assert_eq!(d.conflict_tokens, ["SEMI"]);
        match &d.outcome {
            Outcome::Resolved { k, entries } => {
                assert_eq!(*k, 2);
                // Exit entry: SEMI then end of input (word shorter than k).
                assert!(entries.contains(&entry(&["SEMI"], 1)), "{entries:?}");
                // Continue entry: SEMI then another statement.
                assert!(entries.contains(&entry(&["SEMI", "A"], 0)), "{entries:?}");
            }
            o => panic!("expected Resolved, got {o:?}"),
        }
    }

    #[test]
    fn unbounded_common_prefix_is_residual_with_witness() {
        let la = run("grammar g; s : a B | a C ; a : A | A a ;", 3);
        match &la.decisions[0].outcome {
            Outcome::Residual { witness, witness_eof, .. } => {
                assert_eq!(witness, &["A", "A", "A"]);
                assert!(!witness_eof);
            }
            o => panic!("expected Residual, got {o:?}"),
        }
        assert_eq!(la.residual(), 1);
    }

    #[test]
    fn k1_reports_conflicts_as_residual_single_token() {
        let la = run("grammar g; s : A B | A C ;", 1);
        assert_eq!(la.k, 1);
        match &la.decisions[0].outcome {
            Outcome::Residual { witness, .. } => assert_eq!(witness, &["A"]),
            o => panic!("expected Residual at k=1, got {o:?}"),
        }
    }

    #[test]
    fn peg_safety_filter_drops_preemptable_entries() {
        // `p : A | A B` — the first alternative locally succeeds on `A`
        // alone, so the engine commits to it and never parses `A B` via
        // alternative 1 ("A B" as a whole statement is rejected by PEG
        // semantics even though the CFG accepts it). The dispatch table
        // must not "fix" that, or trees would diverge from the oracle.
        let la = run("grammar g; start s; s : p X ; p : A | A B ;", 3);
        match &la.decisions[0].outcome {
            Outcome::Resolved { k, entries } => {
                assert_eq!(*k, 2);
                assert_eq!(entries, &[entry(&["A", "X"], 0)], "A B entry must be filtered");
            }
            o => panic!("expected Resolved, got {o:?}"),
        }
    }

    #[test]
    fn nullable_alternative_resolved_against_eof() {
        // `a : X | ε` inside `s : a X` — the ε-alternative is predicted on
        // FOLLOW; at k=2 "X then EOF" would pick ε, but the PEG filter
        // drops it because alternative 0 completes on a bare `X`.
        let la = run("grammar g; start s; s : a X ; a : X | ;", 2);
        let d = &la.decisions[0];
        assert_eq!(d.production, "a");
        match &d.outcome {
            Outcome::Resolved { k, entries } => {
                assert_eq!(*k, 2);
                assert_eq!(entries, &[entry(&["X", "X"], 0)], "short EOF entry must be filtered");
            }
            o => panic!("expected Resolved, got {o:?}"),
        }
    }

    #[test]
    fn conflict_token_list_aggregates_and_sorts() {
        let la = run("grammar g; s : A B | A C | D | D E ;", 3);
        assert_eq!(la.decisions.len(), 1);
        assert_eq!(la.decisions[0].conflict_tokens, ["A", "D"]);
        match &la.decisions[0].outcome {
            Outcome::Resolved { entries, .. } => {
                // Entry for the D/D-E conflict: bare `D` (EOF) → alt 2 is
                // kept (no earlier alternative can pre-empt it), `D E` → 3
                // is dropped by the PEG filter (alt 2 completes on `D`).
                assert!(entries.contains(&entry(&["D"], 2)), "{entries:?}");
                assert!(!entries.iter().any(|e| e.alt == 3), "{entries:?}");
            }
            o => panic!("expected Resolved, got {o:?}"),
        }
    }

    #[test]
    fn summary_lines_render() {
        let la = run("grammar g; s : A B | A C ;", 3);
        let s = la.decisions[0].summary();
        assert!(s.contains("k=2"), "{s}");
        let la = run("grammar g; s : a B | a C ; a : A | A a ;", 3);
        let s = la.decisions[0].summary();
        assert!(s.contains("`A A A`"), "{s}");
        assert_eq!(witness_display(&["A".into()], true), "A $");
        assert_eq!(witness_display(&[], true), "$");
    }

    #[test]
    fn recovery_sync_set_of_script_skeleton_is_semi_and_eof() {
        // The composed sql_script skeleton every dialect shares.
        let a = analyze(
            &parse_grammar(
                "grammar g; start script; script : stmt (SEMI stmt)* SEMI? ; stmt : SELECT IDENT ;",
            )
            .unwrap(),
        )
        .unwrap();
        let sync = recovery_sync_set(&a);
        let sync: Vec<&str> = sync.iter().map(|s| s.as_str()).collect();
        assert_eq!(sync, [EOF, "SEMI"]);
    }

    #[test]
    fn recovery_sync_set_uses_follow_of_start_level_nonterminals() {
        let a = analyze(
            &parse_grammar("grammar g; start s; s : a END ; a : X | Y a ;").unwrap(),
        )
        .unwrap();
        let sync = recovery_sync_set(&a);
        let sync: Vec<&str> = sync.iter().map(|s| s.as_str()).collect();
        // FOLLOW(a) = {END}, plus the literal END token and EOF itself.
        assert_eq!(sync, [EOF, "END"]);
    }

    #[test]
    fn recovery_sync_set_always_contains_eof() {
        let a = analyze(&parse_grammar("grammar g; start s; s : X ;").unwrap()).unwrap();
        assert!(recovery_sync_set(&a).contains(EOF));
    }
}

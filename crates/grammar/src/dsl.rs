//! Textual grammar and token-file languages.
//!
//! The grammar DSL follows the "LL(k) grammars with additional options used
//! by the ANTLR parser generator" notation the paper settles on:
//!
//! ```text
//! grammar query_specification;
//! start query_specification;
//!
//! // Alternatives may carry #labels used as semantic-action hooks.
//! query_specification
//!   : SELECT set_quantifier? select_list table_expression  #select
//!   ;
//! select_list : select_sublist (COMMA select_sublist)* | ASTERISK ;
//! ```
//!
//! Conventions: `UPPER_SNAKE` names are tokens, `lower_snake` names are
//! nonterminals; `?`/`*`/`+` are postfix; `(…|…)` groups inline
//! alternation; `//` and `/* */` comments are skipped.
//!
//! The token-file DSL mirrors the paper's per-feature token files:
//!
//! ```text
//! tokens query_specification;
//! SELECT = kw;            // case-insensitive keyword, spelled as named
//! COMMA  = ",";           // literal punctuation
//! IDENT  = /[A-Za-z_][A-Za-z0-9_]*/;
//! WS     = skip /[ \t\r\n]+/;
//! ```

use crate::ir::{is_token_name, Alternative, Grammar, Production, Term};
use sqlweave_lexgen::tokenset::TokenSet;
use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DSL error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

/// Lexical items of the DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Colon,
    Semi,
    Pipe,
    LParen,
    RParen,
    Quest,
    Star,
    Plus,
    Hash,
    Eq,
    StringLit(String),
    RegexLit(String),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> DslError {
        DslError { line: self.line, message: message.into() }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn bump(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
    }

    fn skip_trivia(&mut self) -> Result<(), DslError> {
        loop {
            let rest = self.rest();
            let Some(c) = rest.chars().next() else { return Ok(()) };
            if c.is_whitespace() {
                self.bump(c);
            } else if rest.starts_with("//") {
                for c in rest.chars() {
                    if c == '\n' {
                        break;
                    }
                    self.bump(c);
                }
            } else if rest.starts_with("/*") {
                let start_line = self.line;
                self.bump('/');
                self.bump('*');
                loop {
                    if self.rest().starts_with("*/") {
                        self.bump('*');
                        self.bump('/');
                        break;
                    }
                    match self.rest().chars().next() {
                        Some(c) => self.bump(c),
                        None => {
                            return Err(DslError {
                                line: start_line,
                                message: "unterminated block comment".into(),
                            })
                        }
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Next token; regex literals `/…/` are only valid where `allow_regex`.
    fn next(&mut self, allow_regex: bool) -> Result<Option<(Tok, usize)>, DslError> {
        self.skip_trivia()?;
        let line = self.line;
        let rest = self.rest();
        let Some(c) = rest.chars().next() else { return Ok(None) };
        let tok = match c {
            ':' => {
                self.bump(c);
                Tok::Colon
            }
            ';' => {
                self.bump(c);
                Tok::Semi
            }
            '|' => {
                self.bump(c);
                Tok::Pipe
            }
            '(' => {
                self.bump(c);
                Tok::LParen
            }
            ')' => {
                self.bump(c);
                Tok::RParen
            }
            '?' => {
                self.bump(c);
                Tok::Quest
            }
            '*' => {
                self.bump(c);
                Tok::Star
            }
            '+' => {
                self.bump(c);
                Tok::Plus
            }
            '#' => {
                self.bump(c);
                Tok::Hash
            }
            '=' => {
                self.bump(c);
                Tok::Eq
            }
            '"' => {
                self.bump(c);
                let mut s = String::new();
                loop {
                    let Some(c) = self.rest().chars().next() else {
                        return Err(self.error("unterminated string literal"));
                    };
                    self.bump(c);
                    if c == '"' {
                        break;
                    }
                    if c == '\\' {
                        let Some(e) = self.rest().chars().next() else {
                            return Err(self.error("dangling escape in string"));
                        };
                        self.bump(e);
                        s.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        });
                    } else {
                        s.push(c);
                    }
                }
                Tok::StringLit(s)
            }
            '/' if allow_regex => {
                self.bump(c);
                let mut s = String::new();
                loop {
                    let Some(c) = self.rest().chars().next() else {
                        return Err(self.error("unterminated regex literal"));
                    };
                    self.bump(c);
                    if c == '/' {
                        break;
                    }
                    if c == '\\' {
                        let Some(e) = self.rest().chars().next() else {
                            return Err(self.error("dangling escape in regex"));
                        };
                        self.bump(e);
                        if e == '/' {
                            s.push('/');
                        } else {
                            s.push('\\');
                            s.push(e);
                        }
                    } else {
                        s.push(c);
                    }
                }
                Tok::RegexLit(s)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(c) = self.rest().chars().next() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        self.bump(c);
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => return Err(self.error(format!("unexpected character {other:?}"))),
        };
        Ok(Some((tok, line)))
    }
}

struct GrammarParser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl GrammarParser {
    fn error_at(&self, message: impl Into<String>) -> DslError {
        let line = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |&(_, l)| l);
        DslError { line, message: message.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), DslError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error_at(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DslError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_at(format!("expected {what}")))
            }
        }
    }

    fn parse(&mut self) -> Result<Grammar, DslError> {
        // header: `grammar NAME ;` then optional `start NT ;`
        let kw = self.ident("`grammar` header")?;
        if kw != "grammar" {
            return Err(self.error_at("grammar file must begin with `grammar <name>;`"));
        }
        let name = self.ident("grammar name")?;
        self.expect(&Tok::Semi, "`;` after grammar name")?;

        let mut start: Option<String> = None;
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == "start" {
                self.bump();
                start = Some(self.ident("start nonterminal")?);
                self.expect(&Tok::Semi, "`;` after start declaration")?;
            }
        }

        let mut productions: Vec<Production> = Vec::new();
        while self.peek().is_some() {
            productions.push(self.production()?);
        }
        let start = start
            .or_else(|| productions.first().map(|p| p.name.clone()))
            .ok_or_else(|| self.error_at("grammar has no productions and no start"))?;

        let mut g = Grammar::new(&name, &start);
        for p in productions {
            g.add_production(p);
        }
        Ok(g)
    }

    fn production(&mut self) -> Result<Production, DslError> {
        let name = self.ident("production name")?;
        if is_token_name(&name) {
            return Err(self.error_at(format!(
                "`{name}` is a token name; productions must be lower_snake"
            )));
        }
        self.expect(&Tok::Colon, "`:` after production name")?;
        let mut alternatives = vec![self.alternative()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.bump();
            alternatives.push(self.alternative()?);
        }
        self.expect(&Tok::Semi, "`;` terminating production")?;
        Ok(Production { name, alternatives })
    }

    fn alternative(&mut self) -> Result<Alternative, DslError> {
        let seq = self.sequence()?;
        let label = if self.peek() == Some(&Tok::Hash) {
            self.bump();
            Some(self.ident("label after `#`")?)
        } else {
            None
        };
        Ok(Alternative { label, seq })
    }

    fn sequence(&mut self) -> Result<Vec<Term>, DslError> {
        let mut seq = Vec::new();
        while matches!(self.peek(), Some(Tok::Ident(_)) | Some(Tok::LParen)) {
            seq.push(self.term()?);
        }
        Ok(seq)
    }

    fn term(&mut self) -> Result<Term, DslError> {
        let base = match self.bump() {
            Some(Tok::Ident(name)) => {
                if is_token_name(&name) {
                    Term::Token(name)
                } else {
                    Term::NonTerminal(name)
                }
            }
            Some(Tok::LParen) => {
                let mut alts = vec![self.sequence()?];
                while self.peek() == Some(&Tok::Pipe) {
                    self.bump();
                    alts.push(self.sequence()?);
                }
                self.expect(&Tok::RParen, "`)` closing group")?;
                if alts.len() == 1 {
                    // A pure group `(a b)` — keep as single-alt group so the
                    // suffix operators below have something to attach to.
                    Term::Group(alts)
                } else {
                    Term::Group(alts)
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_at("expected a term"));
            }
        };
        Ok(match self.peek() {
            Some(Tok::Quest) => {
                self.bump();
                Term::Optional(group_body(base))
            }
            Some(Tok::Star) => {
                self.bump();
                Term::Star(group_body(base))
            }
            Some(Tok::Plus) => {
                self.bump();
                Term::Plus(group_body(base))
            }
            _ => match base {
                // An un-suffixed single-alternative group degrades to its body
                // inline only when it has exactly one term; otherwise keep it.
                Term::Group(alts) if alts.len() == 1 && alts[0].len() == 1 => {
                    alts.into_iter().next().unwrap().into_iter().next().unwrap()
                }
                other => other,
            },
        })
    }
}

/// The sequence a suffix operator applies to: a single-alternative group's
/// body, a multi-alternative group wrapped as one term, or the bare term.
fn group_body(base: Term) -> Vec<Term> {
    match base {
        Term::Group(alts) if alts.len() == 1 => alts.into_iter().next().unwrap(),
        Term::Group(alts) => vec![Term::Group(alts)],
        other => vec![other],
    }
}

/// Parse grammar DSL text.
pub fn parse_grammar(src: &str) -> Result<Grammar, DslError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next(false)? {
        toks.push(t);
    }
    GrammarParser { toks, pos: 0 }.parse()
}

/// Parse token-file DSL text into a [`TokenSet`].
pub fn parse_tokens(src: &str) -> Result<TokenSet, DslError> {
    let mut lexer = Lexer::new(src);
    let mut toks: Vec<(Tok, usize)> = Vec::new();
    while let Some(t) = lexer.next(true)? {
        toks.push(t);
    }
    let mut p = GrammarParser { toks, pos: 0 };

    let kw = p.ident("`tokens` header")?;
    if kw != "tokens" {
        return Err(p.error_at("token file must begin with `tokens <name>;`"));
    }
    let _name = p.ident("token file name")?;
    p.expect(&Tok::Semi, "`;` after token file name")?;

    let mut set = TokenSet::new();
    while p.peek().is_some() {
        let name = p.ident("token name")?;
        p.expect(&Tok::Eq, "`=` after token name")?;
        let result = match p.bump() {
            Some(Tok::Ident(k)) if k == "kw" => set.keyword(&name),
            Some(Tok::Ident(k)) if k == "skip" => match p.bump() {
                Some(Tok::RegexLit(r)) => set.skip(&name, &r),
                _ => return Err(p.error_at("expected /regex/ after `skip`")),
            },
            Some(Tok::StringLit(s)) => set.punct(&name, &s),
            Some(Tok::RegexLit(r)) => set.pattern(&name, &r),
            _ => return Err(p.error_at("expected `kw`, `skip /…/`, \"literal\", or /regex/")),
        };
        result.map_err(|e| p.error_at(e.to_string()))?;
        p.expect(&Tok::Semi, "`;` terminating token rule")?;
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Term;

    #[test]
    fn parse_minimal_grammar() {
        let g = parse_grammar("grammar g; start a; a : X ;").unwrap();
        assert_eq!(g.name(), "g");
        assert_eq!(g.start(), "a");
        assert_eq!(g.productions().len(), 1);
        assert_eq!(g.production("a").unwrap().alternatives[0].seq, vec![Term::tok("X")]);
    }

    #[test]
    fn start_defaults_to_first_production() {
        let g = parse_grammar("grammar g; a : X ; b : Y ;").unwrap();
        assert_eq!(g.start(), "a");
    }

    #[test]
    fn alternatives_and_labels() {
        let g = parse_grammar(
            "grammar g; a : X Y #pair | Z #single | ;",
        )
        .unwrap();
        let p = g.production("a").unwrap();
        assert_eq!(p.alternatives.len(), 3);
        assert_eq!(p.alternatives[0].label.as_deref(), Some("pair"));
        assert_eq!(p.alternatives[1].label.as_deref(), Some("single"));
        assert!(p.alternatives[2].is_epsilon());
    }

    #[test]
    fn ebnf_suffixes() {
        let g = parse_grammar("grammar g; a : b? (COMMA b)* X+ ;").unwrap();
        let seq = &g.production("a").unwrap().alternatives[0].seq;
        assert_eq!(seq[0], Term::Optional(vec![Term::nt("b")]));
        assert_eq!(
            seq[1],
            Term::Star(vec![Term::tok("COMMA"), Term::nt("b")])
        );
        assert_eq!(seq[2], Term::Plus(vec![Term::tok("X")]));
    }

    #[test]
    fn inline_group_alternation() {
        let g = parse_grammar("grammar g; a : (ASC | DESC)? ;").unwrap();
        let seq = &g.production("a").unwrap().alternatives[0].seq;
        assert_eq!(
            seq[0],
            Term::Optional(vec![Term::Group(vec![
                vec![Term::tok("ASC")],
                vec![Term::tok("DESC")]
            ])])
        );
    }

    #[test]
    fn bare_group_with_one_term_unwraps() {
        let g = parse_grammar("grammar g; a : (X) ;").unwrap();
        assert_eq!(g.production("a").unwrap().alternatives[0].seq, vec![Term::tok("X")]);
    }

    #[test]
    fn group_without_suffix_kept_for_alternation() {
        let g = parse_grammar("grammar g; a : (X | Y) Z ;").unwrap();
        let seq = &g.production("a").unwrap().alternatives[0].seq;
        assert!(matches!(seq[0], Term::Group(_)));
        assert_eq!(seq[1], Term::tok("Z"));
    }

    #[test]
    fn comments_skipped() {
        let g = parse_grammar(
            "grammar g; // line comment\n/* block\ncomment */ a : X ; ",
        )
        .unwrap();
        assert_eq!(g.productions().len(), 1);
    }

    #[test]
    fn case_convention_enforced_for_production_names() {
        let err = parse_grammar("grammar g; FOO : X ;").unwrap_err();
        assert!(err.message.contains("token name"), "{err}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_grammar("grammar g;\n\na : X\n").unwrap_err();
        assert!(err.line >= 3, "{err:?}");
    }

    #[test]
    fn missing_header_rejected() {
        assert!(parse_grammar("a : X ;").is_err());
    }

    #[test]
    fn parse_token_file() {
        let ts = parse_tokens(
            r#"
            tokens query_specification;
            SELECT = kw;
            AS = kw;
            COMMA = ",";
            IDENT = /[A-Za-z_][A-Za-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        assert_eq!(ts.len(), 5);
        assert!(ts.get("SELECT").is_some());
        assert!(ts.get("WS").unwrap().is_skip());
        let scanner = ts.build().unwrap();
        let toks = scanner.scan("select a, b").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn token_file_regex_with_escaped_slash() {
        let ts = parse_tokens(r"tokens t; SLASHY = /a\/b/;").unwrap();
        let s = ts.build().unwrap();
        assert_eq!(s.scan("a/b").unwrap().len(), 1);
    }

    #[test]
    fn token_file_errors() {
        assert!(parse_tokens("SELECT = kw;").is_err()); // missing header
        assert!(parse_tokens("tokens t; SELECT kw;").is_err()); // missing =
        assert!(parse_tokens("tokens t; X = bogus;").is_err());
    }

    #[test]
    fn roundtrip_through_printer() {
        let src = r#"
            grammar table_expression;
            start table_expression;
            table_expression : from_clause where_clause? group_by_clause? ;
            from_clause : FROM table_reference (COMMA table_reference)* ;
            where_clause : WHERE search_condition ;
        "#;
        let g1 = parse_grammar(src).unwrap();
        let printed = crate::print::to_dsl(&g1);
        let g2 = parse_grammar(&printed).unwrap();
        assert_eq!(g1, g2, "printed form:\n{printed}");
    }
}

//! Property-based tests over the grammar workbench: DSL print/parse
//! round-trips for random grammar IR, flattening preserves analyzability,
//! and generated sentences stay inside their grammar's language.

use proptest::prelude::*;
use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};
use sqlweave_grammar::ir::{Alternative, Grammar, Production, Term};
use sqlweave_grammar::lower::flatten;
use sqlweave_grammar::print::to_dsl;
use sqlweave_grammar::sentence::SentenceGenerator;

/// Strategy for a random term over a fixed symbol/token vocabulary.
fn arb_term(depth: u32) -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Term::nt),
        prop::sample::select(vec!["X", "Y", "Z"]).prop_map(Term::tok),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_term(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => prop::collection::vec(inner.clone(), 1..3).prop_map(Term::Optional),
        1 => prop::collection::vec(inner.clone(), 1..3).prop_map(Term::Star),
        1 => prop::collection::vec(inner.clone(), 1..3).prop_map(Term::Plus),
        1 => prop::collection::vec(prop::collection::vec(inner, 1..3), 2..3)
            .prop_map(Term::Group),
    ]
    .boxed()
}

/// Random grammar defining nonterminals a, b, c over tokens X, Y, Z.
fn arb_grammar() -> impl Strategy<Value = Grammar> {
    let alt = prop::collection::vec(arb_term(2), 0..4).prop_map(Alternative::new);
    let prod_a = prop::collection::vec(alt.clone(), 1..3);
    let prod_b = prop::collection::vec(alt.clone(), 1..3);
    let prod_c = prop::collection::vec(alt, 1..3);
    (prod_a, prod_b, prod_c).prop_map(|(a, b, c)| {
        let mut g = Grammar::new("random", "a");
        g.add_production(Production::new("a", a));
        g.add_production(Production::new("b", b));
        g.add_production(Production::new("c", c));
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on the IR.
    #[test]
    fn dsl_roundtrip(g in arb_grammar()) {
        let printed = to_dsl(&g);
        let reparsed = parse_grammar(&printed)
            .unwrap_or_else(|e| panic!("printed DSL failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&g, &reparsed, "printed:\n{}", printed);
    }

    /// Flattening produces plain BNF that re-flattens to itself.
    #[test]
    fn flatten_is_idempotent(g in arb_grammar()) {
        let f1 = flatten(&g);
        let f2 = flatten(&f1);
        prop_assert_eq!(f1, f2);
    }
}

#[test]
fn sentences_of_a_recursive_grammar_parse_back() {
    // Round-trip through the whole workbench with a deliberately recursive
    // grammar (expression-like), driving the sentence generator deep.
    let g = parse_grammar(
        "grammar expr;
         start e;
         e : t ((PLUS | MINUS) t)* ;
         t : f ((STAR) f)* ;
         f : NUM | LPAREN e RPAREN ;",
    )
    .unwrap();
    let toks = parse_tokens(
        r#"tokens expr;
           PLUS = "+"; MINUS = "-"; STAR = "*"; LPAREN = "("; RPAREN = ")";
           NUM = /[0-9]+/;
           WS = skip /[ ]+/;"#,
    )
    .unwrap();
    let generator = SentenceGenerator::new(&g, &toks).unwrap();
    let parser = sqlweave_parser_rt::engine::Parser::new(g.clone(), &toks).unwrap();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for depth in [2usize, 4, 6, 10, 14] {
        for _ in 0..40 {
            let s = generator.generate(&mut rng, depth);
            parser
                .parse(&s)
                .unwrap_or_else(|e| panic!("generated {s:?} rejected: {e}"));
        }
    }
}

//! Reusable parse sessions and the batched parse API.
//!
//! [`ParseSession`] owns every buffer a parse needs — the token vector,
//! interned kind ids, the event buffer, the failure-memo bitmap, and the
//! tree arena — and recycles all of them across parses. After the first
//! few statements of a workload the buffers reach their high-water mark
//! and parsing allocates nothing, which is the property the grammar-
//! coverage/fuzzing workloads (millions of small statements) need.
//! Lexing runs on the scanner's compiled byte-class tables
//! (`sqlweave_lexgen::compiled`) — the session, [`Parser::parse_many`],
//! and [`Parser::parse_many_parallel`] all inherit that fast path through
//! [`sqlweave_lexgen::Scanner::scan_into`].
//!
//! [`Parser::parse_many`] drives one session over a batch;
//! [`Parser::parse_many_parallel`] shards a batch over `std::thread`
//! scoped workers, one session per worker (a [`Parser`] is shareable by
//! reference across threads).

use crate::engine::{EngineMode, EvCtx, FailureMemo, Notes, Parser, ParserStats, RunCounters};
use crate::errors::ParseError;
use crate::events::Event;
use crate::tree::{SyntaxTree, TreeBuffers};
use sqlweave_lexgen::Token;
use std::collections::BTreeSet;

/// A reusable parsing workspace bound to one [`Parser`].
pub struct ParseSession<'p> {
    parser: &'p Parser,
    toks: Vec<Token>,
    kind_ids: Vec<u32>,
    events: Vec<Event>,
    memo: FailureMemo,
    notes: Notes,
    counters: RunCounters,
    tree: TreeBuffers,
}

impl<'p> ParseSession<'p> {
    /// Create an empty session (buffers grow on first use).
    pub fn new(parser: &'p Parser) -> ParseSession<'p> {
        ParseSession {
            parser,
            toks: Vec::new(),
            kind_ids: Vec::new(),
            events: Vec::new(),
            memo: FailureMemo::default(),
            notes: Notes::new(parser.n_tokens),
            counters: RunCounters::default(),
            tree: TreeBuffers::default(),
        }
    }

    /// The parser this session drives.
    pub fn parser(&self) -> &'p Parser {
        self.parser
    }

    /// Cumulative failure-memo hits across all parses of this session
    /// (backtracking engine only; each hit is a whole nonterminal
    /// re-derivation skipped).
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Cumulative backtracking-engine counters (dispatch hits, speculative
    /// probes, truncations) across all parses of this session.
    pub fn counters(&self) -> RunCounters {
        self.counters
    }

    /// Static parser metrics with this session's dynamic counters filled in.
    pub fn stats(&self) -> ParserStats {
        let mut s = self.parser.stats();
        s.decision_table_hits = self.counters.decision_hits;
        s.alt_attempts = self.counters.alt_attempts;
        s.backtracks = self.counters.backtracks;
        s.failure_memo_hits = self.memo.hits();
        s
    }

    /// Parse one statement into a [`SyntaxTree`] view borrowing this
    /// session's buffers (so the next `parse_tree` call recycles them —
    /// convert with [`SyntaxTree::to_cst`] to keep a tree).
    pub fn parse_tree<'s>(&'s mut self, input: &'s str) -> Result<SyntaxTree<'s>, ParseError> {
        let parser = self.parser;
        self.toks.clear();
        self.kind_ids.clear();
        self.events.clear();
        self.notes.reset();
        parser
            .scanner
            .scan_into(input, &mut self.toks)
            .map_err(|e| ParseError {
                at: e.at,
                line: e.line,
                column: e.column,
                expected: BTreeSet::new(),
                found: e.found.map(|c| ("CHAR".to_string(), c.to_string())),
                lexical: Some(e.to_string()),
            })?;
        self.kind_ids.extend(self.toks.iter().map(|t| t.kind.0));
        if parser.mode() == EngineMode::Backtracking {
            self.memo.reset(parser.cprods.len(), self.toks.len() + 1);
        }
        let use_tables = parser.mode() == EngineMode::Backtracking && parser.tables_active();
        let mut result = parser.run_events(&mut EvCtx {
            kind_ids: &self.kind_ids,
            events: &mut self.events,
            memo: &mut self.memo,
            notes: &mut self.notes,
            counters: &mut self.counters,
            use_tables,
        });
        if use_tables && !matches!(result, Ok(next) if next == self.toks.len()) {
            // A dispatch hit skips probes whose failure notes feed the
            // error message, so any failing outcome (hard error or
            // trailing input) is re-derived with tables disabled: the
            // accept/reject outcome is provably identical, and the
            // diagnostics become byte-identical to the seed engine.
            self.events.clear();
            self.notes.reset();
            self.memo.reset(parser.cprods.len(), self.toks.len() + 1);
            result = parser.run_events(&mut EvCtx {
                kind_ids: &self.kind_ids,
                events: &mut self.events,
                memo: &mut self.memo,
                notes: &mut self.notes,
                counters: &mut self.counters,
                use_tables: false,
            });
        }
        match result {
            Ok(next) if next == self.toks.len() => {
                let root = self.tree.build(&self.events);
                Ok(SyntaxTree {
                    parser,
                    mode: parser.mode(),
                    input,
                    toks: &self.toks,
                    nodes: &self.tree.nodes,
                    elems: &self.tree.elems,
                    root,
                })
            }
            Ok(next) => {
                self.notes.note_eof(next);
                Err(parser.error_from(input, &self.toks, &self.notes))
            }
            Err(()) => Err(parser.error_from(input, &self.toks, &self.notes)),
        }
    }
}

/// Size measurements of one accepted statement in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedStats {
    /// Scanned (non-skip) tokens.
    pub tokens: usize,
    /// Tree nodes in the seed counting convention (rules + token leaves).
    pub nodes: usize,
}

impl Parser {
    /// Parse a batch of statements with one recycled session, returning
    /// per-statement outcomes in input order.
    pub fn parse_many(&self, inputs: &[&str]) -> Vec<Result<ParsedStats, ParseError>> {
        let mut session = self.session();
        inputs
            .iter()
            .map(|input| {
                session.parse_tree(input).map(|tree| ParsedStats {
                    tokens: tree.tokens().len(),
                    nodes: tree.node_count(),
                })
            })
            .collect()
    }

    /// Parse a batch across `threads` scoped worker threads (each with its
    /// own recycled session), returning outcomes in input order. Falls
    /// back to the sequential driver for trivial thread counts or batches.
    pub fn parse_many_parallel(
        &self,
        inputs: &[&str],
        threads: usize,
    ) -> Vec<Result<ParsedStats, ParseError>> {
        let threads = threads.min(inputs.len());
        if threads <= 1 {
            return self.parse_many(inputs);
        }
        let chunk = inputs.len().div_ceil(threads);
        let mut results: Vec<Vec<Result<ParsedStats, ParseError>>> =
            Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .map(|shard| scope.spawn(move || self.parse_many(shard)))
                .collect();
            for h in handles {
                results.push(h.join().expect("batch worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT select_list FROM IDENT where_clause? #select ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ IDENT ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; WHERE = kw;
            COMMA = ","; STAR = "*"; EQ = "=";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn session_recycles_across_statements() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        for input in ["SELECT a FROM t", "SELECT * FROM u", "SELECT a, b FROM t WHERE a = b"] {
            let tree = s.parse_tree(input).unwrap();
            assert_eq!(tree.root().name(), "query");
            assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap());
        }
        // errors don't poison the session
        assert!(s.parse_tree("SELECT FROM t").is_err());
        assert!(s.parse_tree("SELECT a FROM t").is_ok());
    }

    #[test]
    fn parse_many_reports_per_statement_outcomes() {
        let p = parser(EngineMode::Backtracking);
        let out = p.parse_many(&["SELECT a FROM t", "SELECT FROM", "SELECT * FROM u"]);
        assert_eq!(out.len(), 3);
        let first = out[0].as_ref().unwrap();
        assert_eq!(first.tokens, 4);
        assert_eq!(first.nodes, p.parse("SELECT a FROM t").unwrap().node_count());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let p = parser(EngineMode::Ll1Table);
        let inputs: Vec<String> = (0..97)
            .map(|i| {
                if i % 7 == 0 {
                    "SELECT FROM t".to_string() // rejected
                } else {
                    format!("SELECT a{i}, b FROM t{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let seq = p.parse_many(&refs);
        for threads in [1, 2, 3, 8, 200] {
            let par = p.parse_many_parallel(&refs, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn utf8_literals_parse_identically_to_reference() {
        // String contents route multi-byte scalars through the scanner's
        // interval fallback; the CST must match the seed engine exactly.
        let g = parse_grammar("grammar s; start q; q : SELECT STRING FROM IDENT ;").unwrap();
        let t = parse_tokens(
            r#"
            tokens s;
            SELECT = kw; FROM = kw;
            IDENT = /[a-z][a-z0-9_]*/;
            STRING = /'([^'])*'/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        let p = Parser::new(g, &t).unwrap();
        let mut s = p.session();
        let input = "SELECT 'héllo — 中文 🦀' FROM t";
        let tree = s.parse_tree(input).unwrap();
        assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap());
        // lexical errors stay byte-identical too
        let fast = s.parse_tree("SELECT é FROM t").unwrap_err();
        let seed = p.parse_reference("SELECT é FROM t").unwrap_err();
        assert_eq!(fast.to_string(), seed.to_string());
    }

    #[test]
    fn empty_batch() {
        let p = parser(EngineMode::Backtracking);
        assert!(p.parse_many(&[]).is_empty());
        assert!(p.parse_many_parallel(&[], 4).is_empty());
    }
}

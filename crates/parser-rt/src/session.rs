//! Reusable parse sessions and the batched parse API.
//!
//! [`ParseSession`] owns every buffer a parse needs — the token vector,
//! interned kind ids, the event buffer, the failure-memo bitmap, and the
//! tree arena — and recycles all of them across parses. After the first
//! few statements of a workload the buffers reach their high-water mark
//! and parsing allocates nothing, which is the property the grammar-
//! coverage/fuzzing workloads (millions of small statements) need.
//! Lexing runs on the scanner's compiled byte-class tables
//! (`sqlweave_lexgen::compiled`) — the session, [`Parser::parse_many`],
//! and [`Parser::parse_many_parallel`] all inherit that fast path through
//! [`sqlweave_lexgen::Scanner::scan_into`].
//!
//! [`Parser::parse_many`] drives one session over a batch;
//! [`Parser::parse_many_parallel`] shards a batch over `std::thread`
//! scoped workers, one session per worker (a [`Parser`] is shareable by
//! reference across threads).

use crate::engine::{
    EngineMode, EvCtx, FailureMemo, Notes, Parser, ParserStats, RunCounters, NO_PROD,
};
use crate::errors::ParseError;
use crate::events::{Event, ERROR_NODE};
use crate::tree::{SyntaxTree, TreeBuffers};
use sqlweave_lexgen::{LexError, LineIndex, Token};
use std::collections::BTreeSet;

/// A reusable parsing workspace bound to one [`Parser`].
pub struct ParseSession<'p> {
    parser: &'p Parser,
    toks: Vec<Token>,
    kind_ids: Vec<u32>,
    events: Vec<Event>,
    /// Accumulated output stream of a resilient parse: spliced chunks of
    /// successful strict attempts plus error nodes, wrapped in one root.
    revents: Vec<Event>,
    memo: FailureMemo,
    notes: Notes,
    counters: RunCounters,
    tree: TreeBuffers,
}

/// The result of a resilient parse: a tree covering every scanned token
/// (skipped stretches folded into `error` nodes) plus every diagnostic in
/// source order. Well-formed input yields an empty `errors` and a tree
/// identical to the strict parse.
pub struct ParseOutcome<'s> {
    /// Full-coverage syntax tree (borrowing the session's buffers).
    pub tree: SyntaxTree<'s>,
    /// Lexical and syntax diagnostics, sorted by byte offset.
    pub errors: Vec<ParseError>,
}

/// Convert a lexical error into the [`ParseError`] shape the strict path
/// produces (shared by `parse_tree` and `parse_resilient` so messages
/// stay byte-identical between the two).
fn lex_to_parse(e: &LexError) -> ParseError {
    ParseError {
        at: e.at,
        line: e.line,
        column: e.column,
        expected: BTreeSet::new(),
        found: e.found.map(|c| ("CHAR".to_string(), c.to_string())),
        lexical: Some(e.to_string()),
    }
}

/// Splice one successful strict chunk (a single balanced `Open … Close`
/// tree over a token *slice*) into the resilient output stream: the
/// chunk's root wrapper is stripped (the final assembly re-wraps
/// everything in one root) and token indices are rebased from
/// slice-relative to absolute.
fn splice_chunk(
    revents: &mut Vec<Event>,
    chunk: &[Event],
    offset: usize,
    root: &mut Option<(u32, u32)>,
) {
    debug_assert!(chunk.len() >= 2, "a successful parse opens and closes a root");
    if root.is_none() {
        if let Event::Open { prod, alt } = chunk[0] {
            *root = Some((prod, alt));
        }
    }
    for ev in &chunk[1..chunk.len() - 1] {
        revents.push(match *ev {
            Event::Token { index } => Event::Token {
                index: index + offset as u32,
            },
            other => other,
        });
    }
}

/// The parser-independent buffers of a [`ParseSession`], detached from the
/// parser borrow so [`Parser::parse`]-style conveniences can recycle them
/// through the parser's internal pool instead of reallocating every call.
/// Only meaningful for the parser that produced them (the failure-memo and
/// expectation bitsets are sized to its token universe), which the
/// per-parser pool guarantees.
pub(crate) struct SessionBuffers {
    toks: Vec<Token>,
    kind_ids: Vec<u32>,
    events: Vec<Event>,
    revents: Vec<Event>,
    memo: FailureMemo,
    notes: Notes,
    counters: RunCounters,
    tree: TreeBuffers,
}

impl<'p> ParseSession<'p> {
    /// Create an empty session (buffers grow on first use).
    pub fn new(parser: &'p Parser) -> ParseSession<'p> {
        ParseSession {
            parser,
            toks: Vec::new(),
            kind_ids: Vec::new(),
            events: Vec::new(),
            revents: Vec::new(),
            memo: FailureMemo::default(),
            notes: Notes::new(parser.n_tokens),
            counters: RunCounters::default(),
            tree: TreeBuffers::default(),
        }
    }

    /// Rehydrate a session from pooled buffers (capacity preserved).
    pub(crate) fn from_buffers(parser: &'p Parser, b: SessionBuffers) -> ParseSession<'p> {
        ParseSession {
            parser,
            toks: b.toks,
            kind_ids: b.kind_ids,
            events: b.events,
            revents: b.revents,
            memo: b.memo,
            notes: b.notes,
            counters: b.counters,
            tree: b.tree,
        }
    }

    /// Detach the buffers for pooling (capacity preserved).
    pub(crate) fn into_buffers(self) -> SessionBuffers {
        SessionBuffers {
            toks: self.toks,
            kind_ids: self.kind_ids,
            events: self.events,
            revents: self.revents,
            memo: self.memo,
            notes: self.notes,
            counters: self.counters,
            tree: self.tree,
        }
    }

    /// The parser this session drives.
    pub fn parser(&self) -> &'p Parser {
        self.parser
    }

    /// Cumulative failure-memo hits across all parses of this session
    /// (backtracking engine only; each hit is a whole nonterminal
    /// re-derivation skipped).
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Cumulative backtracking-engine counters (dispatch hits, speculative
    /// probes, truncations) across all parses of this session.
    pub fn counters(&self) -> RunCounters {
        self.counters
    }

    /// Static parser metrics with this session's dynamic counters filled in.
    pub fn stats(&self) -> ParserStats {
        let mut s = self.parser.stats();
        s.decision_table_hits = self.counters.decision_hits;
        s.alt_attempts = self.counters.alt_attempts;
        s.backtracks = self.counters.backtracks;
        s.failure_memo_hits = self.memo.hits();
        s.error_recoveries = self.counters.recoveries;
        s.recovery_skipped_tokens = self.counters.skipped_tokens;
        s
    }

    /// Parse one statement into a [`SyntaxTree`] view borrowing this
    /// session's buffers (so the next `parse_tree` call recycles them —
    /// convert with [`SyntaxTree::to_cst`] to keep a tree).
    pub fn parse_tree<'s>(&'s mut self, input: &'s str) -> Result<SyntaxTree<'s>, ParseError> {
        let parser = self.parser;
        self.toks.clear();
        self.kind_ids.clear();
        parser
            .scanner
            .scan_into(input, &mut self.toks)
            .map_err(|e| lex_to_parse(&e))?;
        self.kind_ids.extend(self.toks.iter().map(|t| t.kind.0));
        let n = self.toks.len();
        match self.run_strict(0, n) {
            Ok(next) if next == n => {
                let root = self.tree.build(&self.events);
                Ok(SyntaxTree {
                    parser,
                    mode: parser.mode(),
                    input,
                    toks: &self.toks,
                    nodes: &self.tree.nodes,
                    elems: &self.tree.elems,
                    root,
                })
            }
            Ok(next) => {
                self.notes.note_eof(next);
                Err(parser.error_from(input, &self.toks, &self.notes))
            }
            Err(()) => Err(parser.error_from(input, &self.toks, &self.notes)),
        }
    }

    /// One strict engine attempt over the token slice `lo..hi`, into this
    /// session's `events` buffer (cleared first). Notes, memo, and the
    /// diagnostics rerun all behave exactly as the strict path always has;
    /// positions inside `notes` are relative to `lo`.
    fn run_strict(&mut self, lo: usize, hi: usize) -> Result<usize, ()> {
        let parser = self.parser;
        let n = hi - lo;
        self.events.clear();
        self.notes.reset();
        if parser.mode() == EngineMode::Backtracking {
            self.memo.reset(parser.cprods.len(), n + 1);
        }
        let use_tables = parser.mode() == EngineMode::Backtracking && parser.tables_active();
        let mut result = parser.run_events(&mut EvCtx {
            kind_ids: &self.kind_ids[lo..hi],
            events: &mut self.events,
            memo: &mut self.memo,
            notes: &mut self.notes,
            counters: &mut self.counters,
            use_tables,
        });
        if use_tables && !matches!(result, Ok(next) if next == n) {
            // A dispatch hit skips probes whose failure notes feed the
            // error message, so any failing outcome (hard error or
            // trailing input) is re-derived with tables disabled: the
            // accept/reject outcome is provably identical, and the
            // diagnostics become byte-identical to the seed engine.
            self.events.clear();
            self.notes.reset();
            self.memo.reset(parser.cprods.len(), n + 1);
            result = parser.run_events(&mut EvCtx {
                kind_ids: &self.kind_ids[lo..hi],
                events: &mut self.events,
                memo: &mut self.memo,
                notes: &mut self.notes,
                counters: &mut self.counters,
                use_tables: false,
            });
        }
        result
    }

    /// Parse with panic-mode error recovery (see
    /// [`Parser::parse_resilient`] for the contract). The driver:
    ///
    /// 1. lexes resiliently (bad characters become lexical diagnostics,
    ///    scanning continues);
    /// 2. repeatedly runs the strict engine on the remaining tokens;
    ///    a full parse splices in and finishes, a partial/failed parse
    ///    records one diagnostic, splices whatever prefix committed, and
    ///    *panics*: tokens are skipped until a synchronization token
    ///    (statement level, consumed into the error node) or a token in
    ///    FOLLOW of the failing production (left for the resumed parse);
    /// 3. skipped stretches become `error` nodes, so every scanned token
    ///    appears in the final tree exactly once.
    ///
    /// A fuel bound (each iteration strictly advances, and fuel is
    /// 2·tokens + 4) guarantees termination on any input.
    pub fn parse_resilient<'s>(&'s mut self, input: &'s str) -> ParseOutcome<'s> {
        let parser = self.parser;
        let mode = parser.mode();
        self.toks.clear();
        self.kind_ids.clear();
        self.revents.clear();
        let index = LineIndex::new(input);
        let mut errors: Vec<ParseError> = parser
            .scanner
            .scan_resilient_into(input, &mut self.toks)
            .iter()
            .map(lex_to_parse)
            .collect();
        self.kind_ids.extend(self.toks.iter().map(|t| t.kind.0));
        let n = self.toks.len();

        // Root production observed on the first spliced chunk; error-only
        // parses fall back to an `error` root in the final assembly.
        let mut root: Option<(u32, u32)> = None;
        let mut pos = 0usize;
        // Where the previous panic skip resumed, and whether it resumed by
        // consuming a statement-level sync token. A resumed attempt that
        // fails with zero progress after a *non-statement* resume is a
        // cascade of the same underlying error: its diagnostic is merged
        // (suppressed) and the error node extended instead.
        let mut prev_resume: Option<usize> = None;
        let mut prev_was_sync = false;
        let mut last_is_error = false;
        let mut fuel = 2 * n + 4;

        if n == 0 {
            match self.run_strict(0, 0) {
                Ok(_) => splice_chunk(&mut self.revents, &self.events, 0, &mut root),
                Err(()) => {
                    errors.push(parser.error_from_with(input, &[], &self.notes, &index));
                    self.counters.recoveries += 1;
                }
            }
        }
        while pos < n {
            if fuel == 0 {
                // Unreachable in practice (every iteration advances), but
                // the hard bound makes termination unconditional: dump the
                // remainder into one error node and stop.
                self.emit_error_node(pos, n, &mut last_is_error);
                break;
            }
            fuel -= 1;
            let remaining = n - pos;
            let result = self.run_strict(pos, n);
            if let Ok(next) = result {
                if next == remaining {
                    splice_chunk(&mut self.revents, &self.events, pos, &mut root);
                    break;
                }
                self.notes.note_eof(next);
            }
            // Committed failure: capture the diagnostic (and the failure
            // frontier) before any retry clobbers the notes.
            let diag = parser.error_from_with(input, &self.toks[pos..], &self.notes, &index);
            let fail_abs = pos + self.notes.farthest.min(remaining);
            let fail_prod = self.notes.at_prod;

            // How far did this attempt commit? The backtracking skeleton
            // accepts a statement prefix directly (`Ok(next)` short of the
            // input); the predictive engine fails hard instead, so retry
            // the parse cut at the last statement boundary before the
            // failure — both engines then agree on the segmentation.
            let mut good = pos;
            match result {
                Ok(next) if next > 0 => {
                    splice_chunk(&mut self.revents, &self.events, pos, &mut root);
                    good = pos + next;
                    last_is_error = false;
                }
                _ => {
                    let boundary = (pos + 1..=fail_abs)
                        .rev()
                        .find(|&b| parser.is_sync_token(self.kind_ids[b - 1]));
                    if let Some(b) = boundary {
                        // Retry with the separator included, then without:
                        // the predictive engine's LL(1) table commits the
                        // trailing `SEMI` to the repetition (expecting
                        // another statement), so `stmt SEMI` only parses
                        // with the separator cut off.
                        for cut in [b, b - 1] {
                            if cut > pos && self.run_strict(pos, cut) == Ok(cut - pos) {
                                splice_chunk(&mut self.revents, &self.events, pos, &mut root);
                                good = cut;
                                last_is_error = false;
                                break;
                            }
                        }
                    }
                }
            }

            let is_merge = good == pos && prev_resume == Some(pos) && !prev_was_sync;
            if !is_merge {
                errors.push(diag);
                self.counters.recoveries += 1;
            }

            // Panic: skip tokens until a statement-level sync token (taken
            // into the error node — the separator belongs to the broken
            // statement) or a token in FOLLOW of the production that owned
            // the failure (left in place for the resumed parse).
            let follow = (fail_prod != NO_PROD)
                .then(|| parser.follow_bits(mode, fail_prod))
                .flatten();
            let mut resume = n;
            let mut was_sync = false;
            for i in good.max(fail_abs)..n {
                let k = self.kind_ids[i];
                if parser.is_sync_token(k) {
                    resume = i + 1;
                    was_sync = true;
                    break;
                }
                if follow.is_some_and(|f| f.contains(k)) {
                    resume = i;
                    break;
                }
            }
            if resume == pos {
                // A FOLLOW stop at the failure position itself would spin;
                // force progress by sacrificing one token.
                resume = pos + 1;
            }
            if resume > good {
                self.emit_error_node(good, resume, &mut last_is_error);
            }
            prev_resume = Some(resume);
            prev_was_sync = was_sync;
            pos = resume;
        }

        // Final assembly: wrap the accumulated children in a single root —
        // the first successfully spliced chunk's production, or an `error`
        // root when nothing ever parsed.
        let (rp, ra) = root.unwrap_or((ERROR_NODE, 0));
        self.events.clear();
        self.events.push(Event::Open { prod: rp, alt: ra });
        self.events.extend_from_slice(&self.revents);
        self.events.push(Event::Close);
        errors.sort_by_key(|e| e.at);
        let tree_root = self.tree.build(&self.events);
        ParseOutcome {
            tree: SyntaxTree {
                parser,
                mode,
                input,
                toks: &self.toks,
                nodes: &self.tree.nodes,
                elems: &self.tree.elems,
                root: tree_root,
            },
            errors,
        }
    }

    /// Fold the tokens `lo..hi` into an `error` node at the end of the
    /// resilient stream. Adjacent error nodes coalesce: if the stream
    /// already ends with one, its `Close` is popped and the new tokens
    /// extend it, keeping one node (and one contiguous span) per skipped
    /// stretch.
    fn emit_error_node(&mut self, lo: usize, hi: usize, last_is_error: &mut bool) {
        if *last_is_error {
            debug_assert_eq!(self.revents.last(), Some(&Event::Close));
            self.revents.pop();
        } else {
            self.revents.push(Event::Open {
                prod: ERROR_NODE,
                alt: 0,
            });
        }
        for i in lo..hi {
            self.revents.push(Event::Token { index: i as u32 });
        }
        self.revents.push(Event::Close);
        self.counters.skipped_tokens += (hi - lo) as u64;
        *last_is_error = true;
    }
}

/// Size measurements of one accepted statement in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedStats {
    /// Scanned (non-skip) tokens.
    pub tokens: usize,
    /// Tree nodes in the seed counting convention (rules + token leaves).
    pub nodes: usize,
}

/// Size measurements and diagnostics of one resiliently parsed statement
/// in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientStats {
    /// Scanned (non-skip) tokens covered by the tree.
    pub tokens: usize,
    /// Tree nodes in the seed counting convention (rules + token leaves).
    pub nodes: usize,
    /// Diagnostics recovered past, in source order.
    pub errors: Vec<ParseError>,
}

/// Render a panic payload for diagnostics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// The lexical-style [`ParseError`] a crashed batch worker's inputs
/// report instead of aborting the whole batch.
fn worker_panic_error(msg: &str) -> ParseError {
    ParseError {
        at: 0,
        line: 1,
        column: 1,
        expected: BTreeSet::new(),
        found: None,
        lexical: Some(format!("internal error: batch worker panicked: {msg}")),
    }
}

/// Shard `inputs` over `threads` scoped workers, each running `work` on
/// its chunk. A panicking worker is caught (instead of poisoning the
/// whole batch via `join().expect(..)`) and its shard's results are
/// synthesized by `on_panic`; every other shard's results survive.
/// Results are returned flattened in input order.
pub(crate) fn run_sharded<T: Send>(
    inputs: &[&str],
    threads: usize,
    work: impl Fn(&[&str]) -> Vec<T> + Sync,
    on_panic: impl Fn(&[&str], &str) -> Vec<T>,
) -> Vec<T> {
    let chunk = inputs.len().div_ceil(threads);
    let work = &work;
    let mut results: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(shard)))
                })
            })
            .collect();
        for (h, shard) in handles.into_iter().zip(inputs.chunks(chunk)) {
            let out = match h.join() {
                Ok(Ok(v)) => v,
                Ok(Err(payload)) => on_panic(shard, &panic_message(payload.as_ref())),
                Err(payload) => on_panic(shard, &panic_message(payload.as_ref())),
            };
            results.push(out);
        }
    });
    results.into_iter().flatten().collect()
}

impl Parser {
    /// Parse a batch of statements with one recycled session, returning
    /// per-statement outcomes in input order.
    pub fn parse_many(&self, inputs: &[&str]) -> Vec<Result<ParsedStats, ParseError>> {
        let mut session = self.session();
        inputs
            .iter()
            .map(|input| {
                session.parse_tree(input).map(|tree| ParsedStats {
                    tokens: tree.tokens().len(),
                    nodes: tree.node_count(),
                })
            })
            .collect()
    }

    /// Resiliently parse a batch of statements with one recycled session
    /// (see [`ParseSession::parse_resilient`]), returning per-statement
    /// measurements and diagnostics in input order.
    pub fn parse_many_resilient(&self, inputs: &[&str]) -> Vec<ResilientStats> {
        let mut session = self.session();
        inputs
            .iter()
            .map(|input| {
                let outcome = session.parse_resilient(input);
                ResilientStats {
                    tokens: outcome.tree.tokens().len(),
                    nodes: outcome.tree.node_count(),
                    errors: outcome.errors,
                }
            })
            .collect()
    }

    /// Parse a batch across `threads` scoped worker threads (each with its
    /// own recycled session), returning outcomes in input order. Falls
    /// back to the sequential driver for trivial thread counts or batches.
    /// A worker that panics no longer aborts the whole batch: its shard's
    /// statements report a lexical-style internal error and every other
    /// shard's results are returned normally.
    pub fn parse_many_parallel(
        &self,
        inputs: &[&str],
        threads: usize,
    ) -> Vec<Result<ParsedStats, ParseError>> {
        let threads = threads.min(inputs.len());
        if threads <= 1 {
            return self.parse_many(inputs);
        }
        run_sharded(
            inputs,
            threads,
            |shard| self.parse_many(shard),
            |shard, msg| {
                let err = worker_panic_error(msg);
                shard.iter().map(|_| Err(err.clone())).collect()
            },
        )
    }

    /// [`Parser::parse_many_resilient`] sharded across `threads` scoped
    /// workers, with the same panic containment as
    /// [`Parser::parse_many_parallel`].
    pub fn parse_many_parallel_resilient(
        &self,
        inputs: &[&str],
        threads: usize,
    ) -> Vec<ResilientStats> {
        let threads = threads.min(inputs.len());
        if threads <= 1 {
            return self.parse_many_resilient(inputs);
        }
        run_sharded(
            inputs,
            threads,
            |shard| self.parse_many_resilient(shard),
            |shard, msg| {
                shard
                    .iter()
                    .map(|_| ResilientStats {
                        tokens: 0,
                        nodes: 0,
                        errors: vec![worker_panic_error(msg)],
                    })
                    .collect()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT select_list FROM IDENT where_clause? #select ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ IDENT ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; WHERE = kw;
            COMMA = ","; STAR = "*"; EQ = "=";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn session_recycles_across_statements() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        for input in ["SELECT a FROM t", "SELECT * FROM u", "SELECT a, b FROM t WHERE a = b"] {
            let tree = s.parse_tree(input).unwrap();
            assert_eq!(tree.root().name(), "query");
            assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap());
        }
        // errors don't poison the session
        assert!(s.parse_tree("SELECT FROM t").is_err());
        assert!(s.parse_tree("SELECT a FROM t").is_ok());
    }

    #[test]
    fn parse_many_reports_per_statement_outcomes() {
        let p = parser(EngineMode::Backtracking);
        let out = p.parse_many(&["SELECT a FROM t", "SELECT FROM", "SELECT * FROM u"]);
        assert_eq!(out.len(), 3);
        let first = out[0].as_ref().unwrap();
        assert_eq!(first.tokens, 4);
        assert_eq!(first.nodes, p.parse("SELECT a FROM t").unwrap().node_count());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let p = parser(EngineMode::Ll1Table);
        let inputs: Vec<String> = (0..97)
            .map(|i| {
                if i % 7 == 0 {
                    "SELECT FROM t".to_string() // rejected
                } else {
                    format!("SELECT a{i}, b FROM t{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let seq = p.parse_many(&refs);
        for threads in [1, 2, 3, 8, 200] {
            let par = p.parse_many_parallel(&refs, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn utf8_literals_parse_identically_to_reference() {
        // String contents route multi-byte scalars through the scanner's
        // interval fallback; the CST must match the seed engine exactly.
        let g = parse_grammar("grammar s; start q; q : SELECT STRING FROM IDENT ;").unwrap();
        let t = parse_tokens(
            r#"
            tokens s;
            SELECT = kw; FROM = kw;
            IDENT = /[a-z][a-z0-9_]*/;
            STRING = /'([^'])*'/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        let p = Parser::new(g, &t).unwrap();
        let mut s = p.session();
        let input = "SELECT 'héllo — 中文 🦀' FROM t";
        let tree = s.parse_tree(input).unwrap();
        assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap());
        // lexical errors stay byte-identical too
        let fast = s.parse_tree("SELECT é FROM t").unwrap_err();
        let seed = p.parse_reference("SELECT é FROM t").unwrap_err();
        assert_eq!(fast.to_string(), seed.to_string());
    }

    #[test]
    fn empty_batch() {
        let p = parser(EngineMode::Backtracking);
        assert!(p.parse_many(&[]).is_empty());
        assert!(p.parse_many_parallel(&[], 4).is_empty());
    }

    /// A statement-script grammar (the shape every composed dialect
    /// shares), for recovery tests: sync set = {SEMI, $}.
    fn script_parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar s;
            start script;
            script : query (SEMI query)* SEMI? ;
            query : SELECT select_list FROM IDENT where_clause? #select ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ IDENT ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens s;
            SELECT = kw; FROM = kw; WHERE = kw;
            COMMA = ","; STAR = "*"; EQ = "="; SEMI = ";";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    /// Count how many times each token index appears in the tree.
    fn token_coverage(tree: &SyntaxTree<'_>) -> Vec<usize> {
        fn walk(node: crate::tree::SyntaxNode<'_, '_>, seen: &mut Vec<usize>) {
            for el in node.children() {
                match el {
                    crate::tree::SyntaxElement::Token(t) => seen[t.index()] += 1,
                    crate::tree::SyntaxElement::Node(n) => walk(n, seen),
                }
            }
        }
        let mut seen = vec![0usize; tree.tokens().len()];
        walk(tree.root(), &mut seen);
        seen
    }

    #[test]
    fn resilient_parse_matches_strict_on_clean_input() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut inputs = vec![
                "SELECT a FROM t",
                "SELECT a FROM t; SELECT * FROM u",
                "SELECT a, b FROM t WHERE a = b; SELECT c FROM v",
            ];
            if mode == EngineMode::Backtracking {
                // The LL(1) table resolves the trailing-SEMI conflict in
                // favor of the repetition, so only the backtracking engine
                // accepts a trailing semicolon strictly.
                inputs.push("SELECT a FROM t; SELECT c FROM v;");
            }
            for input in inputs {
                let strict = p.parse(input).unwrap();
                let outcome = s.parse_resilient(input);
                assert!(outcome.errors.is_empty(), "{mode:?} on {input:?}");
                assert_eq!(outcome.tree.to_cst(), strict, "{mode:?} on {input:?}");
            }
        }
    }

    #[test]
    fn resilient_parse_recovers_one_error_per_bad_statement() {
        let input = "SELECT a FROM t; SELECT FROM u; SELECT b FROM v; WHERE; SELECT c FROM w";
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let outcome = s.parse_resilient(input);
            assert_eq!(outcome.errors.len(), 2, "{mode:?}: {:?}", outcome.errors);
            // Errors are ordered and point into the bad statements.
            assert!(outcome.errors[0].at < outcome.errors[1].at);
            // Every scanned token appears exactly once in the tree.
            assert!(token_coverage(&outcome.tree).iter().all(|&c| c == 1), "{mode:?}");
            // The good statements really parsed (error nodes are named
            // "error"; the rest keep their productions).
            let names: Vec<&str> =
                outcome.tree.root().children().filter_map(|e| e.as_node().map(|n| n.name())).collect();
            assert_eq!(names.iter().filter(|n| **n == "error").count(), 2, "{names:?}");
            assert_eq!(names.iter().filter(|n| **n == "query").count(), 3, "{names:?}");
        }
    }

    #[test]
    fn resilient_first_error_matches_strict_error() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            for input in [
                "SELECT FROM t",
                "SELECT a FROM t; SELECT FROM u",
                "SELECT a FROM t WHERE",
                "",
            ] {
                let strict = p.parse(input).unwrap_err();
                let outcome = s.parse_resilient(input);
                assert!(!outcome.errors.is_empty(), "{mode:?} on {input:?}");
                assert_eq!(
                    outcome.errors[0].to_string(),
                    strict.to_string(),
                    "{mode:?} on {input:?}"
                );
            }
        }
    }

    #[test]
    fn resilient_parse_collects_lexical_and_syntax_errors() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        // The `?` is a lexical error; skipping it leaves statement 1
        // well-formed, so statement 2 contributes the only syntax error.
        let input = "SELECT a ? FROM t; SELECT FROM u";
        let outcome = s.parse_resilient(input);
        assert_eq!(outcome.errors.len(), 2, "{:?}", outcome.errors);
        assert!(outcome.errors[0].lexical.is_some());
        assert!(outcome.errors[1].lexical.is_none());
        // The lexical error is byte-identical to the strict path's.
        assert_eq!(
            outcome.errors[0].to_string(),
            p.parse(input).unwrap_err().to_string()
        );
    }

    #[test]
    fn resilient_parse_survives_garbage_and_covers_all_tokens() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            for input in [
                "; ; ;",
                "FROM FROM FROM",
                "SELECT",
                "= = ; = =",
                "SELECT a FROM", // truncated
            ] {
                let outcome = s.parse_resilient(input);
                assert!(!outcome.errors.is_empty(), "{mode:?} on {input:?}");
                assert!(
                    token_coverage(&outcome.tree).iter().all(|&c| c == 1),
                    "{mode:?} on {input:?}"
                );
            }
        }
    }

    #[test]
    fn resilient_counters_surface_through_stats() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        let outcome = s.parse_resilient("SELECT a FROM t; SELECT FROM u; SELECT b FROM v");
        assert_eq!(outcome.errors.len(), 1);
        let stats = s.stats();
        assert_eq!(stats.error_recoveries, 1);
        assert!(stats.recovery_skipped_tokens >= 2, "{stats:?}");
    }

    #[test]
    fn parse_many_resilient_matches_single_statement_outcomes() {
        let p = script_parser(EngineMode::Backtracking);
        let out = p.parse_many_resilient(&[
            "SELECT a FROM t",
            "SELECT FROM u",
            "SELECT b, c FROM v",
        ]);
        assert_eq!(out.len(), 3);
        assert!(out[0].errors.is_empty());
        assert_eq!(out[1].errors.len(), 1);
        assert!(out[2].errors.is_empty());
        assert_eq!(out[0].tokens, 4);
        let par = p.parse_many_parallel_resilient(
            &["SELECT a FROM t", "SELECT FROM u", "SELECT b, c FROM v"],
            2,
        );
        assert_eq!(out, par);
    }

    #[test]
    fn sharded_batches_survive_a_panicking_worker() {
        // A hostile input guard that panics on a marker input, simulating
        // a worker crash mid-shard.
        let inputs: Vec<String> = (0..16)
            .map(|i| if i == 5 { "PANIC".to_string() } else { format!("in{i}") })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let out = run_sharded(
            &refs,
            4,
            |shard| {
                shard
                    .iter()
                    .map(|s| {
                        assert!(*s != "PANIC", "hostile input rejected by guard");
                        Ok::<String, String>(s.to_uppercase())
                    })
                    .collect()
            },
            |shard, msg| shard.iter().map(|_| Err(msg.to_string())).collect(),
        );
        assert_eq!(out.len(), 16);
        // The panicking shard (inputs 4..8) reports the panic message;
        // every other shard's results survive.
        for (i, r) in out.iter().enumerate() {
            if (4..8).contains(&i) {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("hostile input rejected"), "{msg}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &format!("IN{i}"));
            }
        }
    }

    #[test]
    fn worker_panic_error_is_lexical_style() {
        let e = worker_panic_error("boom");
        assert_eq!(
            e.to_string(),
            "internal error: batch worker panicked: boom"
        );
    }
}

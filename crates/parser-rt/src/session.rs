//! Reusable parse sessions and the batched parse API.
//!
//! [`ParseSession`] owns every buffer a parse needs — the token vector,
//! interned kind ids, the event buffer, the failure-memo bitmap, and the
//! tree arena — and recycles all of them across parses. After the first
//! few statements of a workload the buffers reach their high-water mark
//! and parsing allocates nothing, which is the property the grammar-
//! coverage/fuzzing workloads (millions of small statements) need.
//! Lexing runs on the scanner's compiled byte-class tables
//! (`sqlweave_lexgen::compiled`) — the session, [`Parser::parse_many`],
//! and [`Parser::parse_many_parallel`] all inherit that fast path through
//! [`sqlweave_lexgen::Scanner::scan_into`].
//!
//! [`Parser::parse_many`] drives one session over a batch;
//! [`Parser::parse_many_parallel`] shards a batch over `std::thread`
//! scoped workers, one session per worker (a [`Parser`] is shareable by
//! reference across threads).

use crate::engine::{
    EngineMode, EvCtx, FailureMemo, Notes, Parser, ParserStats, RunCounters, NO_PROD,
};
use crate::errors::ParseError;
use crate::events::{split_elements, ElemKind, Event, TopElem, ERROR_NODE};
use crate::tree::{SyntaxTree, TreeBuffers};
use sqlweave_lexgen::{LexError, LineIndex, Token, TokenSource};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// A reusable parsing workspace bound to one [`Parser`].
pub struct ParseSession<'p> {
    parser: &'p Parser,
    toks: Vec<Token>,
    kind_ids: Vec<u32>,
    events: Vec<Event>,
    /// Accumulated output stream of a resilient parse: spliced chunks of
    /// successful strict attempts plus error nodes, wrapped in one root.
    revents: Vec<Event>,
    memo: FailureMemo,
    notes: Notes,
    counters: RunCounters,
    tree: TreeBuffers,
    /// Incrementally maintained document, when one is open
    /// ([`ParseSession::open_document`] / [`ParseSession::apply_edit`]).
    inc: Option<Box<IncDoc>>,
}

/// How local the last [`ParseSession::apply_edit`] repair was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditStats {
    /// Tokens produced by the damage-region relex.
    pub relexed_tokens: usize,
    /// Tokens covered by the reparsed window (`0` for a token-preserving
    /// edit — whitespace/comment-internal — which skips the parser
    /// entirely).
    pub reparsed_tokens: usize,
    /// Total tokens in the document after the edit.
    pub total_tokens: usize,
    /// Bytes between the relex restart point and the point where the new
    /// token stream resynchronized with the old one (the resync distance).
    pub resync_bytes: usize,
    /// The repair gave up and reparsed the whole document (pathological
    /// stream shape, or the damage window grew to cover everything).
    pub full_reparse: bool,
}

/// One top-level element of the maintained document — a parsed statement
/// subtree, a recovery error node, or a bare separator token — stored as
/// its own event slice with *chunk-relative* token indices plus a span
/// base offset. Chunk-relative indices make the event suffix of an edit
/// free to keep (no per-event token-index rebase); the base offset turns
/// the O(total tokens) suffix span shift of an edit into an O(#chunks)
/// base update. Absolute spans are only folded in when the tree is
/// materialized.
struct Chunk {
    kind: ElemKind,
    /// Events of this element. `Event::Token` indices are chunk-relative:
    /// absolute index = relative + the chunk's first token index.
    events: Vec<Event>,
    /// Number of tokens this chunk covers.
    n_toks: usize,
    /// Span rebase: a covered token's true span = the span stored in the
    /// document token buffer + `base`.
    base: isize,
}

/// Persistent state of an incrementally maintained document: the text and
/// every derived artifact [`ParseSession::apply_edit`] repairs in place
/// instead of recomputing — line index, token stream, lexical diagnostics
/// (with the probe frontier of each failed munch, needed to place future
/// relex restarts), syntax diagnostics, and the per-statement event
/// chunks of the whole document.
struct IncDoc {
    /// Document text, spliced in place by each edit (the relex never
    /// needs pre-edit bytes, only pre-edit token positions).
    text: String,
    lines: LineIndex,
    /// Document token stream + interned kind ids. Swapped into the
    /// session's `toks`/`kind_ids` slots while incremental work runs, so
    /// the strict engine and the recovery driver read them unchanged.
    toks: Vec<Token>,
    kind_ids: Vec<u32>,
    lex: Vec<LexError>,
    lex_probes: Vec<usize>,
    /// Exact probe frontiers of the document's probe-unbounded tokens
    /// (ascending `(token_start, frontier)` pairs): the only tokens whose
    /// maximal munch can look past the static per-rule overhang bound, so
    /// the relex restart consults these recorded frontiers instead of
    /// backing up to byte 0 whenever such a rule (typically a quoted
    /// string with doubled-quote escapes) exists in the dialect.
    tok_probes: Vec<(usize, usize)>,
    /// Syntax diagnostics for the whole document, ascending by byte
    /// offset. Shared with [`EditOutcome::errors`] by reference count so a
    /// document full of diagnostics (the predictive engine's resolved
    /// conflicts reject some inputs the backtracking engine accepts) is
    /// delivered per edit without cloning; each edit repairs it in place
    /// through [`Arc::make_mut`], which is free once the previous outcome
    /// is dropped.
    syn: Arc<Vec<ParseError>>,
    /// The document's top-level elements in order, partitioning the token
    /// stream.
    chunks: Vec<Chunk>,
    /// First absolute token index of each chunk (prefix sums of `n_toks`;
    /// same length as `chunks`, first entry 0). Repaired in place by each
    /// chunk splice; rebuilt from scratch only on a full reparse.
    chunk_tok_lo: Vec<usize>,
    /// How many chunks cover zero tokens. Token-less top-level nodes break
    /// the edit window arithmetic, so each edit checks this count (kept
    /// current across splices) instead of rescanning every chunk.
    n_empty_chunks: usize,
    /// Root wrapper (`prod`, `alt`) the chunks assemble under.
    root: (u32, u32),
    /// The session's tree arena currently holds this document's
    /// materialized tree (node/element indices match the chunk events).
    /// Invalidated by any reparse and by standalone `parse_tree` /
    /// `parse_resilient` calls, which share the arena.
    tree_valid: bool,
    /// Root node id of the cached materialized tree (when `tree_valid`).
    tree_root: u32,
    last_edit: EditStats,
}

impl IncDoc {
    fn empty() -> IncDoc {
        IncDoc {
            text: String::new(),
            lines: LineIndex::new(""),
            toks: Vec::new(),
            kind_ids: Vec::new(),
            lex: Vec::new(),
            lex_probes: Vec::new(),
            tok_probes: Vec::new(),
            syn: Arc::new(Vec::new()),
            chunks: Vec::new(),
            chunk_tok_lo: Vec::new(),
            n_empty_chunks: 0,
            root: (ERROR_NODE, 0),
            tree_valid: false,
            tree_root: 0,
            last_edit: EditStats {
                relexed_tokens: 0,
                reparsed_tokens: 0,
                total_tokens: 0,
                resync_bytes: 0,
                full_reparse: true,
            },
        }
    }

    /// Recompute the per-chunk first-token prefix sums.
    fn rebuild_chunk_tok_lo(&mut self) {
        self.chunk_tok_lo.clear();
        let mut lo = 0usize;
        for c in &self.chunks {
            self.chunk_tok_lo.push(lo);
            lo += c.n_toks;
        }
    }
}

/// [`TokenSource`] view of a chunked document token stream: spans stored
/// in the flat buffer are folded with the owning chunk's base offset on
/// access, so the relex sees true (absolute) spans without the suffix
/// ever being rewritten.
struct ChunkedTokens<'a> {
    toks: &'a [Token],
    chunks: &'a [Chunk],
    chunk_tok_lo: &'a [usize],
}

impl TokenSource for ChunkedTokens<'_> {
    fn len(&self) -> usize {
        self.toks.len()
    }

    fn get(&self, i: usize) -> Token {
        // Last chunk whose first token index is ≤ i (zero-token chunks
        // share their successor's `lo` and are correctly skipped).
        let c = self.chunk_tok_lo.partition_point(|&lo| lo <= i) - 1;
        let t = self.toks[i];
        let b = self.chunks[c].base;
        Token {
            kind: t.kind,
            start: (t.start as isize + b) as usize,
            end: (t.end as isize + b) as usize,
        }
    }
}

/// Extract one [`TopElem`] of a drive's output stream into an owned
/// [`Chunk`]: events copied with token indices rebased from absolute to
/// chunk-relative, span base 0 (a fresh drive's spans are absolute).
fn chunk_of_elem(revents: &[Event], e: &TopElem) -> Chunk {
    let events = revents[e.ev_lo..e.ev_hi]
        .iter()
        .map(|ev| match *ev {
            Event::Token { index } => Event::Token { index: index - e.tok_lo as u32 },
            other => other,
        })
        .collect();
    Chunk { kind: e.kind, events, n_toks: e.tok_hi - e.tok_lo, base: 0 }
}

/// Materialize absolute new-text spans for the window tokens `from..to`
/// (post-splice indices) in place: fresh relexed tokens
/// (`fresh_lo..fresh_hi`) already carry absolute spans; prefix tokens fold
/// in their old chunk's base; suffix tokens fold in their old chunk's base
/// plus the edit's byte delta (their chunks have not been rebased yet —
/// this runs before the chunk splice).
#[allow(clippy::too_many_arguments)]
fn normalize_spans(
    toks: &mut [Token],
    chunks: &[Chunk],
    chunk_tok_lo: &[usize],
    from: usize,
    to: usize,
    fresh_lo: usize,
    fresh_hi: usize,
    tok_delta: isize,
    delta: isize,
) {
    for i in from..to {
        if (fresh_lo..fresh_hi).contains(&i) {
            continue;
        }
        let (old_i, extra) = if i < fresh_lo {
            (i, 0)
        } else {
            ((i as isize - tok_delta) as usize, delta)
        };
        let c = chunk_tok_lo.partition_point(|&lo| lo <= old_i) - 1;
        let b = chunks[c].base + extra;
        if b != 0 {
            toks[i].start = (toks[i].start as isize + b) as usize;
            toks[i].end = (toks[i].end as isize + b) as usize;
        }
    }
}

/// What a window-bounded resilient drive reported back.
struct DriveResult {
    /// Root production observed on the first spliced chunk (`None` if the
    /// window produced only error nodes).
    root: Option<(u32, u32)>,
    /// The drive needed tokens past the window end: a strict attempt's
    /// failure frontier reached it, or recovery was still inside an error
    /// node when it ran out of window. Only possible when the window end
    /// is short of the document end; the caller must widen and re-run.
    needs_widening: bool,
}

/// The result of a resilient parse: a tree covering every scanned token
/// (skipped stretches folded into `error` nodes) plus every diagnostic in
/// source order. Well-formed input yields an empty `errors` and a tree
/// identical to the strict parse.
pub struct ParseOutcome<'s> {
    /// Full-coverage syntax tree (borrowing the session's buffers).
    pub tree: SyntaxTree<'s>,
    /// Lexical and syntax diagnostics, sorted by byte offset.
    pub errors: Vec<ParseError>,
}

/// Why an incremental-document operation could not run. Returned by the
/// fallible `try_*` incremental API ([`ParseSession::try_apply_edit`] and
/// friends); the panicking counterparts render the same messages. A
/// failed call never corrupts the session: the document (if any) stays
/// open and editable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// No document is open ([`ParseSession::open_document`] first).
    NoDocument,
    /// The edit range is inverted or reaches past the end of the document.
    OutOfBounds {
        /// The offending byte range.
        range: Range<usize>,
        /// Document length in bytes.
        len: usize,
    },
    /// A range endpoint falls inside a multi-byte `char`.
    NotCharBoundary {
        /// The offending byte range.
        range: Range<usize>,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NoDocument => {
                write!(f, "no document open (call open_document first)")
            }
            EditError::OutOfBounds { range, len } => {
                write!(f, "edit range {range:?} out of bounds for a document of {len} bytes")
            }
            EditError::NotCharBoundary { range } => {
                write!(f, "edit range {range:?} must fall on char boundaries")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// Deferred tree materialization handle of an [`EditOutcome`]: holds the
/// session borrow and only builds the document tree when
/// [`LazyTree::get`] is called. Dropping it without calling `get` keeps
/// the edit O(damage window + #chunks) — the sub-millisecond keystroke
/// path.
pub struct LazyTree<'s, 'p> {
    session: &'s mut ParseSession<'p>,
}

impl LazyTree<'_, '_> {
    /// Materialize (or fetch the cached) document tree. The first call
    /// after an edit is O(document): chunk span bases are folded into
    /// absolute token spans and the node arena is rebuilt from the
    /// chunked event streams. Calls without an intervening edit reuse the
    /// cached arena.
    pub fn get(&mut self) -> SyntaxTree<'_> {
        self.session.materialize_document()
    }
}

/// What [`ParseSession::apply_edit`] and [`ParseSession::open_document`]
/// return: diagnostics and edit statistics immediately, with the tree
/// behind a lazy handle that materializes on first access. Callers that
/// only surface diagnostics per keystroke never pay for tree
/// construction.
pub struct EditOutcome<'s, 'p> {
    /// Lexical and syntax diagnostics for the whole edited document,
    /// sorted by byte offset — identical to what a from-scratch
    /// [`ParseSession::parse_resilient`] of the document text reports.
    ///
    /// Shared with the session's maintained document state: when the
    /// document has no lexical errors (the common case) this is a
    /// reference-counted handle to the in-place-repaired diagnostic list,
    /// so delivery is O(1) regardless of how many diagnostics the
    /// document carries. Holding it across the next edit forces that edit
    /// to copy-on-write; drop it first to keep edits allocation-free.
    pub errors: Arc<Vec<ParseError>>,
    /// Locality measurements of this edit.
    pub stats: EditStats,
    /// Lazy handle to the full-coverage document tree.
    pub tree: LazyTree<'s, 'p>,
}

/// Convert a lexical error into the [`ParseError`] shape the strict path
/// produces (shared by `parse_tree` and `parse_resilient` so messages
/// stay byte-identical between the two).
fn lex_to_parse(e: &LexError) -> ParseError {
    ParseError {
        at: e.at,
        line: e.line,
        column: e.column,
        expected: BTreeSet::new(),
        found: e.found.map(|c| ("CHAR".to_string(), c.to_string())),
        lexical: Some(e.to_string()),
    }
}

/// Repair the syntax diagnostics past an edit's damage boundary in place:
/// positions shift by the byte delta, and line/column are patched without
/// rescanning any text. A diagnostic whose pre-edit position was at or
/// past `old_line_end` (the first pre-edit line start after the edited
/// range) sits on a line the edit never touched: its column survives
/// verbatim and its line moves by exactly `line_delta`, two integer adds.
/// Only the few diagnostics still on the edit's own last line pay a full
/// line/column recomputation. This keeps each edit independent of how
/// many diagnostics the document carries beyond one pass of integer
/// arithmetic — the predictive engine can hold tens of thousands of
/// resolved-conflict diagnostics against a large document.
fn repair_suffix_diags(
    syn: &mut [ParseError],
    text: &str,
    lines: &LineIndex,
    delta: isize,
    line_delta: isize,
    old_line_end: usize,
) {
    for e in syn {
        let old_at = e.at;
        e.at = (old_at as isize + delta) as usize;
        if old_at >= old_line_end {
            e.line = (e.line as isize + line_delta) as usize;
        } else {
            let (line, column) = lines.line_col(text, e.at);
            e.line = line;
            e.column = column;
        }
    }
}

/// Replace the lexical diagnostics covered by a relex: errors before the
/// restart point survive unchanged (the restart rule guarantees their
/// probe frontiers never reached the edit), the relexed window's are
/// fresh, and errors past the resync boundary shift — position and probe
/// frontier both — by the edit's byte delta (line/column recomputed
/// against the repaired line index).
fn splice_lex_diags(doc: &mut IncDoc, relex: &sqlweave_lexgen::Relex, delta: isize) {
    let mut lex = Vec::with_capacity(relex.errors.len());
    let mut probes = Vec::with_capacity(relex.err_probes.len());
    for (e, &p) in doc.lex.iter().zip(&doc.lex_probes) {
        if e.at < relex.start_byte {
            lex.push(e.clone());
            probes.push(p);
        }
    }
    lex.extend(relex.errors.iter().cloned());
    probes.extend_from_slice(&relex.err_probes);
    if let Some(q) = relex.resync_old {
        for (e, &p) in doc.lex.iter().zip(&doc.lex_probes) {
            if e.at >= q {
                let at = (e.at as isize + delta) as usize;
                let (line, column) = doc.lines.line_col(&doc.text, at);
                lex.push(LexError { at, line, column, found: e.found });
                probes.push(if p == usize::MAX { p } else { (p as isize + delta) as usize });
            }
        }
    }
    doc.lex = lex;
    doc.lex_probes = probes;
}

/// Replace the unbounded-token probe cache covered by a relex, mirroring
/// [`splice_lex_diags`]: entries before the restart survive verbatim (the
/// restart rule guarantees their frontiers never reached the edit), the
/// rescanned window's come fresh from the relex (already in new-text
/// coordinates), and entries past the resync boundary shift — token start
/// and frontier both — by the edit's byte delta, with the `usize::MAX`
/// EOF-observation sentinel preserved.
fn splice_tok_probes(doc: &mut IncDoc, relex: &sqlweave_lexgen::Relex, delta: isize) {
    if doc.tok_probes.is_empty() && relex.tok_probes.is_empty() {
        return;
    }
    let mut probes = Vec::with_capacity(doc.tok_probes.len() + relex.tok_probes.len());
    probes.extend(
        doc.tok_probes
            .iter()
            .copied()
            .take_while(|&(at, _)| at < relex.start_byte),
    );
    probes.extend_from_slice(&relex.tok_probes);
    if let Some(q) = relex.resync_old {
        probes.extend(
            doc.tok_probes
                .iter()
                .filter(|&&(at, _)| at >= q)
                .map(|&(at, p)| {
                    let p = if p == usize::MAX { p } else { (p as isize + delta) as usize };
                    ((at as isize + delta) as usize, p)
                }),
        );
    }
    doc.tok_probes = probes;
}

/// Pick the window's first element: walk left to a `Clean` element (error
/// nodes couple to the statement they arose in; a bare separator is not a
/// valid parse start), make sure the element *before* the window is not an
/// error node (the drive could need to coalesce into it), and take one
/// clean statement of margin so the drive's statement-boundary retries
/// resolve inside the window exactly as a full drive would.
fn widen_left(chunks: &[Chunk], mut e: usize) -> usize {
    let mut margin = 1;
    loop {
        while e > 0 && chunks[e].kind != ElemKind::Clean {
            e -= 1;
        }
        if e > 0 && chunks[e - 1].kind == ElemKind::Err {
            e -= 1;
            continue;
        }
        if margin > 0 && e > 0 {
            margin -= 1;
            e -= 1;
            continue;
        }
        break;
    }
    e
}

/// Pick the window's end (exclusive element index), starting from the
/// first candidate: absorb error nodes unconditionally (error clusters
/// coalesce and merge diagnostics across element boundaries) plus one
/// clean statement of margin, and stop *before* the next clean statement
/// or bare separator — the window then ends on a boundary both engines
/// treat as end-of-input (a trailing separator would spuriously fail the
/// predictive engine's strict window parse).
fn widen_right(chunks: &[Chunk], mut e: usize) -> usize {
    let mut margin = 1;
    while e < chunks.len() {
        match chunks[e].kind {
            ElemKind::Err => e += 1,
            ElemKind::Tok | ElemKind::Clean => {
                if margin == 0 {
                    break;
                }
                if chunks[e].kind == ElemKind::Clean {
                    margin -= 1;
                }
                e += 1;
            }
        }
    }
    e
}

/// Splice one successful strict chunk (a single balanced `Open … Close`
/// tree over a token *slice*) into the resilient output stream: the
/// chunk's root wrapper is stripped (the final assembly re-wraps
/// everything in one root) and token indices are rebased from
/// slice-relative to absolute.
fn splice_chunk(
    revents: &mut Vec<Event>,
    chunk: &[Event],
    offset: usize,
    root: &mut Option<(u32, u32)>,
) {
    debug_assert!(chunk.len() >= 2, "a successful parse opens and closes a root");
    if root.is_none() {
        if let Event::Open { prod, alt } = chunk[0] {
            *root = Some((prod, alt));
        }
    }
    for ev in &chunk[1..chunk.len() - 1] {
        revents.push(match *ev {
            Event::Token { index } => Event::Token {
                index: index + offset as u32,
            },
            other => other,
        });
    }
}

/// The parser-independent buffers of a [`ParseSession`], detached from the
/// parser borrow so [`Parser::parse`]-style conveniences can recycle them
/// through the parser's internal pool instead of reallocating every call.
/// Only meaningful for the parser that produced them (the failure-memo and
/// expectation bitsets are sized to its token universe), which the
/// per-parser pool guarantees.
pub(crate) struct SessionBuffers {
    toks: Vec<Token>,
    kind_ids: Vec<u32>,
    events: Vec<Event>,
    revents: Vec<Event>,
    memo: FailureMemo,
    notes: Notes,
    counters: RunCounters,
    tree: TreeBuffers,
}

impl<'p> ParseSession<'p> {
    /// Create an empty session (buffers grow on first use).
    pub fn new(parser: &'p Parser) -> ParseSession<'p> {
        ParseSession {
            parser,
            toks: Vec::new(),
            kind_ids: Vec::new(),
            events: Vec::new(),
            revents: Vec::new(),
            memo: FailureMemo::default(),
            notes: Notes::new(parser.n_tokens),
            counters: RunCounters::default(),
            tree: TreeBuffers::default(),
            inc: None,
        }
    }

    /// Rehydrate a session from pooled buffers (capacity preserved).
    pub(crate) fn from_buffers(parser: &'p Parser, b: SessionBuffers) -> ParseSession<'p> {
        ParseSession {
            parser,
            toks: b.toks,
            kind_ids: b.kind_ids,
            events: b.events,
            revents: b.revents,
            memo: b.memo,
            notes: b.notes,
            counters: b.counters,
            tree: b.tree,
            inc: None,
        }
    }

    /// Detach the buffers for pooling (capacity preserved).
    pub(crate) fn into_buffers(self) -> SessionBuffers {
        SessionBuffers {
            toks: self.toks,
            kind_ids: self.kind_ids,
            events: self.events,
            revents: self.revents,
            memo: self.memo,
            notes: self.notes,
            counters: self.counters,
            tree: self.tree,
        }
    }

    /// The parser this session drives.
    pub fn parser(&self) -> &'p Parser {
        self.parser
    }

    /// Cumulative failure-memo hits across all parses of this session
    /// (backtracking engine only; each hit is a whole nonterminal
    /// re-derivation skipped).
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Cumulative backtracking-engine counters (dispatch hits, speculative
    /// probes, truncations) across all parses of this session.
    pub fn counters(&self) -> RunCounters {
        self.counters
    }

    /// Static parser metrics with this session's dynamic counters filled in.
    pub fn stats(&self) -> ParserStats {
        let mut s = self.parser.stats();
        s.decision_table_hits = self.counters.decision_hits;
        s.alt_attempts = self.counters.alt_attempts;
        s.backtracks = self.counters.backtracks;
        s.failure_memo_hits = self.memo.hits();
        s.error_recoveries = self.counters.recoveries;
        s.recovery_skipped_tokens = self.counters.skipped_tokens;
        s
    }

    /// Parse one statement into a [`SyntaxTree`] view borrowing this
    /// session's buffers (so the next `parse_tree` call recycles them —
    /// convert with [`SyntaxTree::to_cst`] to keep a tree).
    pub fn parse_tree<'s>(&'s mut self, input: &'s str) -> Result<SyntaxTree<'s>, ParseError> {
        let parser = self.parser;
        if let Some(doc) = self.inc.as_deref_mut() {
            // The tree arena is shared; a standalone parse clobbers any
            // cached document materialization.
            doc.tree_valid = false;
        }
        self.toks.clear();
        self.kind_ids.clear();
        parser
            .scanner
            .scan_into(input, &mut self.toks)
            .map_err(|e| lex_to_parse(&e))?;
        self.kind_ids.extend(self.toks.iter().map(|t| t.kind.0));
        let n = self.toks.len();
        match self.run_strict(0, n) {
            Ok(next) if next == n => {
                let root = self.tree.build(&self.events);
                Ok(SyntaxTree {
                    parser,
                    mode: parser.mode(),
                    input,
                    toks: &self.toks,
                    nodes: &self.tree.nodes,
                    elems: &self.tree.elems,
                    root,
                })
            }
            Ok(next) => {
                self.notes.note_eof(next);
                Err(parser.error_from(input, &self.toks, &self.notes))
            }
            Err(()) => Err(parser.error_from(input, &self.toks, &self.notes)),
        }
    }

    /// One strict engine attempt over the token slice `lo..hi`, into this
    /// session's `events` buffer (cleared first). Notes, memo, and the
    /// diagnostics rerun all behave exactly as the strict path always has;
    /// positions inside `notes` are relative to `lo`.
    fn run_strict(&mut self, lo: usize, hi: usize) -> Result<usize, ()> {
        let parser = self.parser;
        let n = hi - lo;
        self.events.clear();
        self.notes.reset();
        if parser.mode() == EngineMode::Backtracking {
            self.memo.reset(parser.cprods.len(), n + 1);
        }
        let use_tables = parser.mode() == EngineMode::Backtracking && parser.tables_active();
        let mut result = parser.run_events(&mut EvCtx {
            kind_ids: &self.kind_ids[lo..hi],
            events: &mut self.events,
            memo: &mut self.memo,
            notes: &mut self.notes,
            counters: &mut self.counters,
            use_tables,
        });
        if use_tables && !matches!(result, Ok(next) if next == n) {
            // A dispatch hit skips probes whose failure notes feed the
            // error message, so any failing outcome (hard error or
            // trailing input) is re-derived with tables disabled: the
            // accept/reject outcome is provably identical, and the
            // diagnostics become byte-identical to the seed engine.
            self.events.clear();
            self.notes.reset();
            self.memo.reset(parser.cprods.len(), n + 1);
            result = parser.run_events(&mut EvCtx {
                kind_ids: &self.kind_ids[lo..hi],
                events: &mut self.events,
                memo: &mut self.memo,
                notes: &mut self.notes,
                counters: &mut self.counters,
                use_tables: false,
            });
        }
        result
    }

    /// The panic-mode recovery driver over the token window `lo..hi` of a
    /// `doc_end`-token stream, appending spliced chunks and error nodes to
    /// `self.revents` and diagnostics to `errors`. A full parse passes
    /// `lo = 0, hi = doc_end`; the incremental reparser passes a damage
    /// window, for which the drive additionally watches for evidence that
    /// the window is too small to parse in isolation (a failure frontier
    /// or an unfinished error node at the window end while more of the
    /// document follows) and reports `needs_widening` with `errors` and
    /// the recovery counters rolled back — the caller re-drives a wider
    /// window (`self.revents` is the caller's to clear).
    fn drive_resilient(
        &mut self,
        input: &str,
        index: &LineIndex,
        lo: usize,
        hi: usize,
        doc_end: usize,
        errors: &mut Vec<ParseError>,
    ) -> DriveResult {
        let parser = self.parser;
        let mode = parser.mode();
        let counters_mark = self.counters;
        let errors_mark = errors.len();

        // Root production observed on the first spliced chunk; error-only
        // drives report `None` and the caller falls back to an `error`
        // root.
        let mut root: Option<(u32, u32)> = None;
        let mut pos = lo;
        // Where the previous panic skip resumed, and whether it resumed by
        // consuming a statement-level sync token. A resumed attempt that
        // fails with zero progress after a *non-statement* resume is a
        // cascade of the same underlying error: its diagnostic is merged
        // (suppressed) and the error node extended instead.
        let mut prev_resume: Option<usize> = None;
        let mut prev_was_sync = false;
        let mut last_is_error = false;
        let mut fuel = 2 * (hi - lo) + 4;

        if lo == hi {
            match self.run_strict(lo, hi) {
                Ok(_) => splice_chunk(&mut self.revents, &self.events, lo, &mut root),
                Err(()) => {
                    errors.push(parser.error_from_with(input, &[], &self.notes, index));
                    self.counters.recoveries += 1;
                }
            }
        }
        while pos < hi {
            if fuel == 0 {
                // Unreachable in practice (every iteration advances), but
                // the hard bound makes termination unconditional: dump the
                // remainder into one error node and stop.
                self.emit_error_node(pos, hi, &mut last_is_error);
                break;
            }
            fuel -= 1;
            let remaining = hi - pos;
            let result = self.run_strict(pos, hi);
            if let Ok(next) = result {
                if next == remaining {
                    splice_chunk(&mut self.revents, &self.events, pos, &mut root);
                    last_is_error = false;
                    break;
                }
                self.notes.note_eof(next);
            }
            let fail_abs = pos + self.notes.farthest.min(remaining);
            if fail_abs == hi && hi < doc_end {
                // The failure frontier reached the window end: where this
                // attempt really fails (and where recovery should resume)
                // depends on tokens past `hi`.
                self.counters = counters_mark;
                errors.truncate(errors_mark);
                return DriveResult { root, needs_widening: true };
            }
            // Committed failure: capture the diagnostic (and the failure
            // frontier) before any retry clobbers the notes.
            let diag = parser.error_from_with(input, &self.toks[pos..], &self.notes, index);
            let fail_prod = self.notes.at_prod;

            // How far did this attempt commit? The backtracking skeleton
            // accepts a statement prefix directly (`Ok(next)` short of the
            // input); the predictive engine fails hard instead, so retry
            // the parse cut at the last statement boundary before the
            // failure — both engines then agree on the segmentation.
            let mut good = pos;
            match result {
                Ok(next) if next > 0 => {
                    splice_chunk(&mut self.revents, &self.events, pos, &mut root);
                    good = pos + next;
                    last_is_error = false;
                }
                _ => {
                    let boundary = (pos + 1..=fail_abs)
                        .rev()
                        .find(|&b| parser.is_sync_token(self.kind_ids[b - 1]));
                    if let Some(b) = boundary {
                        // Retry with the separator included, then without:
                        // the predictive engine's LL(1) table commits the
                        // trailing `SEMI` to the repetition (expecting
                        // another statement), so `stmt SEMI` only parses
                        // with the separator cut off.
                        for cut in [b, b - 1] {
                            if cut > pos && self.run_strict(pos, cut) == Ok(cut - pos) {
                                splice_chunk(&mut self.revents, &self.events, pos, &mut root);
                                good = cut;
                                last_is_error = false;
                                break;
                            }
                        }
                    }
                }
            }

            let is_merge = good == pos && prev_resume == Some(pos) && !prev_was_sync;
            if !is_merge {
                errors.push(diag);
                self.counters.recoveries += 1;
            }

            // Panic: skip tokens until a statement-level sync token (taken
            // into the error node — the separator belongs to the broken
            // statement) or a token in FOLLOW of the production that owned
            // the failure (left in place for the resumed parse).
            let follow = (fail_prod != NO_PROD)
                .then(|| parser.follow_bits(mode, fail_prod))
                .flatten();
            let mut resume = hi;
            let mut was_sync = false;
            for i in good.max(fail_abs)..hi {
                let k = self.kind_ids[i];
                if parser.is_sync_token(k) {
                    resume = i + 1;
                    was_sync = true;
                    break;
                }
                if follow.is_some_and(|f| f.contains(k)) {
                    resume = i;
                    break;
                }
            }
            if resume == pos {
                // A FOLLOW stop at the failure position itself would spin;
                // force progress by sacrificing one token.
                resume = pos + 1;
            }
            if resume > good {
                self.emit_error_node(good, resume, &mut last_is_error);
            }
            prev_resume = Some(resume);
            prev_was_sync = was_sync;
            pos = resume;
        }

        if last_is_error && hi < doc_end {
            // The drive ended inside an error node touching the window
            // end; a full parse might extend the node (or resume
            // differently) using tokens past `hi`.
            self.counters = counters_mark;
            errors.truncate(errors_mark);
            return DriveResult { root, needs_widening: true };
        }
        DriveResult { root, needs_widening: false }
    }

    /// Parse with panic-mode error recovery (see
    /// [`Parser::parse_resilient`] for the contract). The driver:
    ///
    /// 1. lexes resiliently (bad characters become lexical diagnostics,
    ///    scanning continues);
    /// 2. repeatedly runs the strict engine on the remaining tokens;
    ///    a full parse splices in and finishes, a partial/failed parse
    ///    records one diagnostic, splices whatever prefix committed, and
    ///    *panics*: tokens are skipped until a synchronization token
    ///    (statement level, consumed into the error node) or a token in
    ///    FOLLOW of the failing production (left for the resumed parse);
    /// 3. skipped stretches become `error` nodes, so every scanned token
    ///    appears in the final tree exactly once.
    ///
    /// A fuel bound (each iteration strictly advances, and fuel is
    /// 2·tokens + 4) guarantees termination on any input.
    pub fn parse_resilient<'s>(&'s mut self, input: &'s str) -> ParseOutcome<'s> {
        let parser = self.parser;
        let mode = parser.mode();
        if let Some(doc) = self.inc.as_deref_mut() {
            // The tree arena is shared; a standalone parse clobbers any
            // cached document materialization.
            doc.tree_valid = false;
        }
        self.toks.clear();
        self.kind_ids.clear();
        self.revents.clear();
        let index = LineIndex::new(input);
        let mut errors: Vec<ParseError> = parser
            .scanner
            .scan_resilient_into(input, &mut self.toks)
            .iter()
            .map(lex_to_parse)
            .collect();
        self.kind_ids.extend(self.toks.iter().map(|t| t.kind.0));
        let n = self.toks.len();

        let drive = self.drive_resilient(input, &index, 0, n, n, &mut errors);
        debug_assert!(!drive.needs_widening, "a full-document drive never widens");

        // Final assembly: wrap the accumulated children in a single root —
        // the first successfully spliced chunk's production, or an `error`
        // root when nothing ever parsed.
        let (rp, ra) = drive.root.unwrap_or((ERROR_NODE, 0));
        self.events.clear();
        self.events.push(Event::Open { prod: rp, alt: ra });
        self.events.extend_from_slice(&self.revents);
        self.events.push(Event::Close);
        errors.sort_by_key(|e| e.at);
        let tree_root = self.tree.build(&self.events);
        ParseOutcome {
            tree: SyntaxTree {
                parser,
                mode,
                input,
                toks: &self.toks,
                nodes: &self.tree.nodes,
                elems: &self.tree.elems,
                root: tree_root,
            },
            errors,
        }
    }

    // ---------- incremental editing ----------

    /// Open `text` as an incrementally maintained document: parse it
    /// resiliently, keep every derived artifact (tokens, line index,
    /// diagnostics, event chunks), and return the outcome — diagnostics
    /// eagerly, the tree behind a lazy handle. Subsequent
    /// [`ParseSession::apply_edit`] calls repair those artifacts in place.
    /// Reopening replaces the previous document (buffers are recycled).
    pub fn open_document(&mut self, text: &str) -> EditOutcome<'_, 'p> {
        let mut doc = self.inc.take().unwrap_or_else(|| Box::new(IncDoc::empty()));
        doc.text.clear();
        doc.text.push_str(text);
        self.swap_doc_buffers(&mut doc);
        self.reparse_document(&mut doc);
        self.swap_doc_buffers(&mut doc);
        self.inc = Some(doc);
        self.lazy_outcome()
    }

    /// The text of the open document, or [`EditError::NoDocument`].
    pub fn try_document(&self) -> Result<&str, EditError> {
        self.inc.as_ref().map(|d| d.text.as_str()).ok_or(EditError::NoDocument)
    }

    /// The text of the open document.
    ///
    /// # Panics
    /// If no document is open.
    pub fn document(&self) -> &str {
        self.try_document().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Measurements of the last edit ([`ParseSession::open_document`]
    /// counts as a full reparse), or [`EditError::NoDocument`].
    pub fn try_edit_stats(&self) -> Result<EditStats, EditError> {
        self.inc.as_ref().map(|d| d.last_edit).ok_or(EditError::NoDocument)
    }

    /// Measurements of the last edit ([`ParseSession::open_document`]
    /// counts as a full reparse).
    ///
    /// # Panics
    /// If no document is open.
    pub fn edit_stats(&self) -> EditStats {
        self.try_edit_stats().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ParseSession::apply_edit`]: a rejected edit returns a
    /// structured [`EditError`] instead of panicking, and leaves the
    /// document exactly as it was (still open, still editable).
    pub fn try_apply_edit(
        &mut self,
        range: Range<usize>,
        replacement: &str,
    ) -> Result<EditOutcome<'_, 'p>, EditError> {
        let Some(mut doc) = self.inc.take() else {
            return Err(EditError::NoDocument);
        };
        if range.start > range.end || range.end > doc.text.len() {
            let len = doc.text.len();
            self.inc = Some(doc);
            return Err(EditError::OutOfBounds { range, len });
        }
        if !doc.text.is_char_boundary(range.start) || !doc.text.is_char_boundary(range.end) {
            self.inc = Some(doc);
            return Err(EditError::NotCharBoundary { range });
        }
        self.swap_doc_buffers(&mut doc);
        self.apply_edit_inner(&mut doc, range.start, range.end, replacement);
        self.swap_doc_buffers(&mut doc);
        self.inc = Some(doc);
        Ok(self.lazy_outcome())
    }

    /// Replace byte range `range` of the open document with `replacement`
    /// and return the outcome for the edited text — byte-identical (tree
    /// and diagnostics) to a from-scratch [`ParseSession::parse_resilient`]
    /// of the edited text, but repaired locally:
    ///
    /// 1. **damage relex** — [`sqlweave_lexgen::Scanner::relex`] restarts
    ///    the scanner at the last token boundary that provably never
    ///    observed an edited byte and stops at the first old scan boundary
    ///    past the edit, splicing the token buffer (the line index shifts
    ///    incrementally too);
    /// 2. **localized reparse** — the damaged token range is mapped to the
    ///    smallest enclosing run of top-level statement chunks (plus one
    ///    clean statement of margin on each side, with adjacent error
    ///    nodes absorbed), only that window is re-driven through
    ///    panic-mode recovery, and the untouched prefix/suffix chunks are
    ///    kept verbatim (chunk-relative events; suffix span bases shift by
    ///    the byte delta) — widening and retrying if the drive proves the
    ///    window too small;
    /// 3. **diagnostic rebase** — diagnostics outside the window shift
    ///    position; only the window's are recomputed.
    ///
    /// Token-preserving edits (inside whitespace or a comment) skip the
    /// parser entirely and only rebase spans.
    ///
    /// The returned [`EditOutcome`] carries diagnostics and stats
    /// eagerly; the tree is materialized only when
    /// [`LazyTree::get`] is called.
    ///
    /// # Panics
    /// If no document is open, or `range` is out of bounds or not on
    /// `char` boundaries ([`ParseSession::try_apply_edit`] reports the
    /// same conditions as values).
    pub fn apply_edit(&mut self, range: Range<usize>, replacement: &str) -> EditOutcome<'_, 'p> {
        self.try_apply_edit(range, replacement).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assemble the lazy outcome for the current document state:
    /// diagnostics merged in the same lexical-first source order
    /// `parse_resilient` produces, stats, and the deferred tree handle.
    ///
    /// With no lexical errors the syntax list — maintained sorted by every
    /// edit — IS that merge, so the outcome shares it by reference count
    /// instead of cloning: delivery cost is independent of how many
    /// diagnostics the document carries. Only a document with lexical
    /// errors pays an O(#diagnostics) merge per outcome.
    fn lazy_outcome(&mut self) -> EditOutcome<'_, 'p> {
        let doc = self.inc.as_ref().expect("document was just stored");
        debug_assert!(
            doc.syn.windows(2).all(|w| w[0].at <= w[1].at),
            "maintained syntax diagnostics drifted out of order"
        );
        let errors = if doc.lex.is_empty() {
            Arc::clone(&doc.syn)
        } else {
            let mut merged: Vec<ParseError> = doc.lex.iter().map(lex_to_parse).collect();
            merged.extend(doc.syn.iter().cloned());
            merged.sort_by_key(|e| e.at);
            Arc::new(merged)
        };
        let stats = doc.last_edit;
        EditOutcome { errors, stats, tree: LazyTree { session: self } }
    }

    /// Trade the session's token buffers with the document's: incremental
    /// work keeps the document stream in the session slots the strict
    /// engine and the recovery driver read, without copying.
    fn swap_doc_buffers(&mut self, doc: &mut IncDoc) {
        std::mem::swap(&mut self.toks, &mut doc.toks);
        std::mem::swap(&mut self.kind_ids, &mut doc.kind_ids);
    }

    /// Parse the document text from scratch into `doc` (the full-reparse
    /// path of `open_document`, and the fallback for edits the local
    /// repair cannot handle). Expects the document buffers swapped in.
    fn reparse_document(&mut self, doc: &mut IncDoc) {
        let parser = self.parser;
        self.toks.clear();
        self.kind_ids.clear();
        self.revents.clear();
        doc.lines = LineIndex::new(&doc.text);
        doc.lex = parser.scanner.scan_resilient_into(&doc.text, &mut self.toks);
        doc.lex_probes = doc
            .lex
            .iter()
            .map(|e| parser.scanner.step_raw(&doc.text, e.at).probe)
            .collect();
        doc.tok_probes = parser.scanner.token_probes(&doc.text, &self.toks);
        self.kind_ids.extend(self.toks.iter().map(|t| t.kind.0));
        let n = self.toks.len();
        let syn = Arc::make_mut(&mut doc.syn);
        syn.clear();
        let drive = self.drive_resilient(&doc.text, &doc.lines, 0, n, n, syn);
        doc.root = drive.root.unwrap_or((ERROR_NODE, 0));
        doc.chunks.clear();
        match split_elements(&self.revents, 0) {
            Some(elems) => {
                doc.chunks.extend(elems.iter().map(|e| chunk_of_elem(&self.revents, e)));
            }
            None => {
                // Unreachable for a drive's own output, but degrade to one
                // opaque chunk instead of panicking: the tree builder and
                // the next edit's window fallback both handle it.
                doc.chunks.push(Chunk {
                    kind: ElemKind::Err,
                    events: self.revents.clone(),
                    n_toks: n,
                    base: 0,
                });
            }
        }
        doc.rebuild_chunk_tok_lo();
        doc.n_empty_chunks = doc.chunks.iter().filter(|c| c.n_toks == 0).count();
        doc.tree_valid = false;
        doc.last_edit = EditStats {
            relexed_tokens: n,
            reparsed_tokens: n,
            total_tokens: n,
            resync_bytes: doc.text.len(),
            full_reparse: true,
        };
    }

    /// Materialize the maintained document: fold every chunk's span base
    /// into absolute token spans, then build the tree arena from the
    /// chunked event streams (cached until the next mutating call —
    /// repeated reads between edits are free).
    fn materialize_document(&mut self) -> SyntaxTree<'_> {
        let parser = self.parser;
        let ParseSession { tree, inc, .. } = self;
        let doc = inc.as_deref_mut().expect("no document open");
        for (c, chunk) in doc.chunks.iter_mut().enumerate() {
            if chunk.base != 0 {
                let lo = doc.chunk_tok_lo[c];
                for t in &mut doc.toks[lo..lo + chunk.n_toks] {
                    t.start = (t.start as isize + chunk.base) as usize;
                    t.end = (t.end as isize + chunk.base) as usize;
                }
                chunk.base = 0;
            }
        }
        if !doc.tree_valid {
            doc.tree_root = tree.build_chunked(
                doc.root,
                doc.chunks
                    .iter()
                    .zip(&doc.chunk_tok_lo)
                    .map(|(c, &lo)| (&c.events[..], lo as u32)),
            );
            doc.tree_valid = true;
        }
        SyntaxTree {
            parser,
            mode: parser.mode(),
            input: &doc.text,
            toks: &doc.toks,
            nodes: &tree.nodes,
            elems: &tree.elems,
            root: doc.tree_root,
        }
    }

    /// The current document state as an eager [`ParseOutcome`] (tree
    /// materialized immediately), or [`EditError::NoDocument`]. Handy for
    /// oracles and tests that snapshot the document between edits.
    pub fn try_document_outcome(&mut self) -> Result<ParseOutcome<'_>, EditError> {
        let doc = self.inc.as_ref().ok_or(EditError::NoDocument)?;
        let mut errors: Vec<ParseError> = doc.lex.iter().map(lex_to_parse).collect();
        errors.extend(doc.syn.iter().cloned());
        errors.sort_by_key(|e| e.at);
        Ok(ParseOutcome { tree: self.materialize_document(), errors })
    }

    /// The edit pipeline (document buffers swapped in): text splice, line
    /// index repair, damage relex, token/diagnostic splice, and — when the
    /// token stream actually changed — the windowed reparse.
    fn apply_edit_inner(&mut self, doc: &mut IncDoc, start: usize, old_end: usize, rep: &str) {
        let parser = self.parser;
        let new_end = start + rep.len();
        let delta = new_end as isize - old_end as isize;

        // In-place text splice: the relex only ever consults old token
        // *positions* (through the rebased [`ChunkedTokens`] view), never
        // old bytes, so no pre-edit copy of the document is kept — a
        // same-length replacement touches only the replaced bytes.
        let old_text_len = doc.text.len();
        doc.text.replace_range(start..old_end, rep);

        // Line geometry of the edit, captured against the pre-edit index:
        // every line start at or past `old_line_end` survives the edit
        // (shifted by `delta`), so a diagnostic there keeps its column and
        // moves exactly `line_delta` lines — the suffix repair below is
        // two integer adds per diagnostic instead of a line/column
        // recomputation that rescans its line.
        let old_line_end = doc
            .lines
            .line_start(doc.lines.line_of(old_end) + 1)
            .unwrap_or(usize::MAX);
        let line_delta = rep.bytes().filter(|&b| b == b'\n').count() as isize
            - (doc.lines.line_of(old_end) - doc.lines.line_of(start)) as isize;

        doc.lines.apply_edit(start, old_end, rep);
        let old_err_pairs: Vec<(usize, usize)> = doc
            .lex
            .iter()
            .zip(&doc.lex_probes)
            .map(|(e, &p)| (e.at, p))
            .collect();
        let relex = parser.scanner.relex(
            old_text_len,
            &doc.text,
            &doc.lines,
            &ChunkedTokens {
                toks: &self.toks,
                chunks: &doc.chunks,
                chunk_tok_lo: &doc.chunk_tok_lo,
            },
            &old_err_pairs,
            &doc.tok_probes,
            start,
            old_end,
            new_end,
        );
        let n_old = self.toks.len();
        let tok_delta = (relex.old_lo + relex.tokens.len()) as isize - relex.old_hi as isize;
        let n_new = (n_old as isize + tok_delta) as usize;
        let resync_bytes = match relex.resync_new {
            Some(q) => q - relex.start_byte,
            None => doc.text.len() - relex.start_byte,
        };
        let stats = EditStats {
            relexed_tokens: relex.tokens.len(),
            reparsed_tokens: 0,
            total_tokens: n_new,
            resync_bytes,
            full_reparse: false,
        };

        if relex.old_lo == relex.old_hi && relex.tokens.is_empty() {
            // Token-preserving edit (whitespace / comment interior / a
            // lexical-error-only change): no token splice at all — shift
            // the boundary chunk's tail spans in place, rebase every later
            // chunk by the byte delta, and keep the event streams (and any
            // cached tree arena: node indices are untouched).
            splice_lex_diags(doc, &relex, delta);
            splice_tok_probes(doc, &relex, delta);
            if delta != 0 {
                let first = relex.old_lo; // first token whose span shifts
                if first < n_old {
                    let c = doc.chunk_tok_lo.partition_point(|&lo| lo <= first) - 1;
                    let c_end = doc.chunk_tok_lo[c] + doc.chunks[c].n_toks;
                    for t in &mut self.toks[first..c_end] {
                        t.start = (t.start as isize + delta) as usize;
                        t.end = (t.end as isize + delta) as usize;
                    }
                    for chunk in &mut doc.chunks[c + 1..] {
                        chunk.base += delta;
                    }
                }
            }
            // Diagnostics at or past the edit end keep their identity but
            // may move (and, even for a same-length splice, a changed
            // character count or newline count shifts columns and lines —
            // so this runs regardless of `delta`).
            let syn = Arc::make_mut(&mut doc.syn);
            let lo = syn.partition_point(|e| e.at < old_end);
            repair_suffix_diags(
                &mut syn[lo..],
                &doc.text,
                &doc.lines,
                delta,
                line_delta,
                old_line_end,
            );
            doc.last_edit = stats;
            return;
        }

        // Window planning works in *old* token indices against the old
        // chunk structure, so it runs before the token splice.
        if n_old == 0 || doc.chunks.is_empty() || doc.n_empty_chunks > 0 {
            // No previous structure to splice around (or token-less
            // top-level nodes, which break the window arithmetic).
            return self.edit_fallback(doc);
        }
        // Damaged old-token range, padded by one token on the left (an
        // inserted token can re-shape the statement it lands after).
        let (a, b) = (relex.old_lo, relex.old_hi);
        let cover_lo = a.saturating_sub(1).min(n_old - 1);
        let cover_hi = (b.max(a + 1)).min(n_old) - 1; // last covered token
        let elem_of =
            |t: usize| -> usize { doc.chunk_tok_lo.partition_point(|&lo| lo <= t) - 1 };
        let e_lo = widen_left(&doc.chunks, elem_of(cover_lo));
        let mut e_hi = widen_right(&doc.chunks, elem_of(cover_hi) + 1);

        // Old-text byte of the window start (true span = stored + base),
        // for splitting the diagnostic list; computed before the token
        // splice while old indices are valid.
        let win_start_byte = {
            let t = doc.chunk_tok_lo[e_lo];
            (self.toks[t].start as isize + doc.chunks[e_lo].base) as usize
        };

        // Token splice. Suffix spans are NOT shifted here (that is the
        // point of the chunk bases); window spans are normalized lazily
        // below, exactly as far as the window grows.
        self.toks
            .splice(relex.old_lo..relex.old_hi, relex.tokens.iter().copied());
        self.kind_ids
            .splice(relex.old_lo..relex.old_hi, relex.tokens.iter().map(|t| t.kind.0));
        splice_lex_diags(doc, &relex, delta);
        splice_tok_probes(doc, &relex, delta);

        // Drive the window, widening while the drive proves it too small
        // (worst case the window reaches EOF, where widening is
        // impossible and the drive must settle). Before each attempt the
        // window's tokens get absolute new-text spans (the engines and
        // diagnostics only ever read spans inside the window).
        let wlo = doc.chunk_tok_lo[e_lo];
        let fresh_lo = relex.old_lo;
        let fresh_hi = relex.old_lo + relex.tokens.len();
        let mut norm_hi = wlo;
        let mut win_syn: Vec<ParseError> = Vec::new();
        let drive = loop {
            let whi_old = if e_hi == doc.chunks.len() { n_old } else { doc.chunk_tok_lo[e_hi] };
            let whi = (whi_old as isize + tok_delta) as usize;
            if whi <= wlo && !(wlo == 0 && whi == n_new) {
                // An empty window mid-document (mass deletion) must not
                // run an empty-input parse; only the whole-document-empty
                // case legitimately does.
                e_hi = widen_right(&doc.chunks, e_hi + 1);
                continue;
            }
            if whi > norm_hi {
                normalize_spans(
                    &mut self.toks,
                    &doc.chunks,
                    &doc.chunk_tok_lo,
                    norm_hi,
                    whi,
                    fresh_lo,
                    fresh_hi,
                    tok_delta,
                    delta,
                );
                norm_hi = whi;
            }
            self.revents.clear();
            win_syn.clear();
            let drive = self.drive_resilient(&doc.text, &doc.lines, wlo, whi, n_new, &mut win_syn);
            if drive.needs_widening {
                e_hi = widen_right(&doc.chunks, e_hi + 1);
                continue;
            }
            break drive;
        };
        let win_end_byte_old = if e_hi == doc.chunks.len() {
            usize::MAX
        } else {
            // The suffix boundary token sits just past the normalized
            // window, so its stored span is still old-text relative to its
            // chunk: old byte = stored + the chunk's (un-rebased) base.
            let t_new = (doc.chunk_tok_lo[e_hi] as isize + tok_delta) as usize;
            (self.toks[t_new].start as isize + doc.chunks[e_hi].base) as usize
        };
        let whi_old = if e_hi == doc.chunks.len() { n_old } else { doc.chunk_tok_lo[e_hi] };
        let reparsed_tokens = ((whi_old as isize + tok_delta) as usize) - wlo;

        // Root wrapper: the first chunk's production. Unchanged while any
        // prefix element came from a chunk; otherwise the window's first
        // chunk. A window that parsed nothing while chunks survive in the
        // suffix would need the suffix chunk's (stripped) root — punt to a
        // full reparse rather than guess.
        let prefix_has_chunk = doc.chunks[..e_lo].iter().any(|c| c.kind != ElemKind::Err);
        let root = if prefix_has_chunk {
            doc.root
        } else if let Some(r) = drive.root {
            r
        } else if doc.chunks[e_hi..].iter().any(|c| c.kind != ElemKind::Err) {
            return self.edit_fallback(doc);
        } else {
            (ERROR_NODE, 0)
        };

        // Chunk splice: prefix and suffix chunks survive verbatim (their
        // events are chunk-relative), the suffix absorbs the byte delta
        // into its span bases, and the window's drive output is split into
        // fresh chunks.
        let Some(new_elems) = split_elements(&self.revents, wlo) else {
            return self.edit_fallback(doc);
        };
        let new_chunks: Vec<Chunk> =
            new_elems.iter().map(|e| chunk_of_elem(&self.revents, e)).collect();
        if delta != 0 {
            for chunk in &mut doc.chunks[e_hi..] {
                chunk.base += delta;
            }
        }
        let n_new_chunks = new_chunks.len();
        doc.n_empty_chunks += new_chunks.iter().filter(|c| c.n_toks == 0).count();
        doc.n_empty_chunks -=
            doc.chunks[e_lo..e_hi].iter().filter(|c| c.n_toks == 0).count();
        doc.chunks.splice(e_lo..e_hi, new_chunks);
        // `chunk_tok_lo` is repaired in place instead of recomputed: the
        // window's entries are re-summed from its (unchanged) first token
        // index, and the suffix shifts by the token delta — O(window +
        // #chunks·[delta ≠ 0]) instead of O(#chunks) every edit.
        let mut lo = wlo;
        doc.chunk_tok_lo.splice(
            e_lo..e_hi,
            doc.chunks[e_lo..e_lo + n_new_chunks].iter().map(|c| {
                let v = lo;
                lo += c.n_toks;
                v
            }),
        );
        if tok_delta != 0 {
            for v in &mut doc.chunk_tok_lo[e_lo + n_new_chunks..] {
                *v = (*v as isize + tok_delta) as usize;
            }
        }
        #[cfg(debug_assertions)]
        {
            let mut check = Vec::with_capacity(doc.chunks.len());
            let mut acc = 0usize;
            for c in &doc.chunks {
                check.push(acc);
                acc += c.n_toks;
            }
            debug_assert_eq!(check, doc.chunk_tok_lo, "incremental chunk_tok_lo repair drifted");
            debug_assert_eq!(
                doc.n_empty_chunks,
                doc.chunks.iter().filter(|c| c.n_toks == 0).count(),
                "incremental empty-chunk count drifted"
            );
        }
        doc.root = root;
        doc.tree_valid = false;

        // Diagnostic splice, the same three-way split in byte coordinates
        // but in place: prefix diagnostics are never touched, the window's
        // old diagnostics are replaced by the drive's fresh ones, and the
        // suffix is repaired by integer arithmetic (no clones, no line
        // rescans) — the boundaries come from a binary search over the
        // sorted list.
        let syn = Arc::make_mut(&mut doc.syn);
        let syn_lo = syn.partition_point(|e| e.at < win_start_byte);
        let syn_hi = syn.partition_point(|e| e.at < win_end_byte_old);
        repair_suffix_diags(
            &mut syn[syn_hi..],
            &doc.text,
            &doc.lines,
            delta,
            line_delta,
            old_line_end,
        );
        syn.splice(syn_lo..syn_hi, win_syn.drain(..));

        doc.last_edit = EditStats { reparsed_tokens, ..stats };
    }

    /// Local repair was not possible: reparse the (already edited)
    /// document text from scratch.
    fn edit_fallback(&mut self, doc: &mut IncDoc) {
        self.reparse_document(doc);
    }

    /// Fold the tokens `lo..hi` into an `error` node at the end of the
    /// resilient stream. Adjacent error nodes coalesce: if the stream
    /// already ends with one, its `Close` is popped and the new tokens
    /// extend it, keeping one node (and one contiguous span) per skipped
    /// stretch.
    fn emit_error_node(&mut self, lo: usize, hi: usize, last_is_error: &mut bool) {
        if *last_is_error {
            debug_assert_eq!(self.revents.last(), Some(&Event::Close));
            self.revents.pop();
        } else {
            self.revents.push(Event::Open {
                prod: ERROR_NODE,
                alt: 0,
            });
        }
        for i in lo..hi {
            self.revents.push(Event::Token { index: i as u32 });
        }
        self.revents.push(Event::Close);
        self.counters.skipped_tokens += (hi - lo) as u64;
        *last_is_error = true;
    }
}

/// Size measurements of one accepted statement in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedStats {
    /// Scanned (non-skip) tokens.
    pub tokens: usize,
    /// Tree nodes in the seed counting convention (rules + token leaves).
    pub nodes: usize,
}

/// Size measurements and diagnostics of one resiliently parsed statement
/// in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientStats {
    /// Scanned (non-skip) tokens covered by the tree.
    pub tokens: usize,
    /// Tree nodes in the seed counting convention (rules + token leaves).
    pub nodes: usize,
    /// Diagnostics recovered past, in source order.
    pub errors: Vec<ParseError>,
}

/// Render a panic payload for diagnostics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// The lexical-style [`ParseError`] a crashed batch worker's inputs
/// report instead of aborting the whole batch.
fn worker_panic_error(msg: &str) -> ParseError {
    ParseError {
        at: 0,
        line: 1,
        column: 1,
        expected: BTreeSet::new(),
        found: None,
        lexical: Some(format!("internal error: batch worker panicked: {msg}")),
    }
}

/// Shard `inputs` over `threads` scoped workers, each running `work` on
/// its chunk. A panicking worker is caught (instead of poisoning the
/// whole batch via `join().expect(..)`) and its shard's results are
/// synthesized by `on_panic`; every other shard's results survive.
/// Results are returned flattened in input order.
pub(crate) fn run_sharded<T: Send>(
    inputs: &[&str],
    threads: usize,
    work: impl Fn(&[&str]) -> Vec<T> + Sync,
    on_panic: impl Fn(&[&str], &str) -> Vec<T>,
) -> Vec<T> {
    let chunk = inputs.len().div_ceil(threads);
    let work = &work;
    let mut results: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(shard)))
                })
            })
            .collect();
        for (h, shard) in handles.into_iter().zip(inputs.chunks(chunk)) {
            let out = match h.join() {
                Ok(Ok(v)) => v,
                Ok(Err(payload)) => on_panic(shard, &panic_message(payload.as_ref())),
                Err(payload) => on_panic(shard, &panic_message(payload.as_ref())),
            };
            results.push(out);
        }
    });
    results.into_iter().flatten().collect()
}

impl Parser {
    /// Parse a batch of statements with one recycled session, returning
    /// per-statement outcomes in input order.
    pub fn parse_many(&self, inputs: &[&str]) -> Vec<Result<ParsedStats, ParseError>> {
        let mut session = self.session();
        inputs
            .iter()
            .map(|input| {
                session.parse_tree(input).map(|tree| ParsedStats {
                    tokens: tree.tokens().len(),
                    nodes: tree.node_count(),
                })
            })
            .collect()
    }

    /// Resiliently parse a batch of statements with one recycled session
    /// (see [`ParseSession::parse_resilient`]), returning per-statement
    /// measurements and diagnostics in input order.
    pub fn parse_many_resilient(&self, inputs: &[&str]) -> Vec<ResilientStats> {
        let mut session = self.session();
        inputs
            .iter()
            .map(|input| {
                let outcome = session.parse_resilient(input);
                ResilientStats {
                    tokens: outcome.tree.tokens().len(),
                    nodes: outcome.tree.node_count(),
                    errors: outcome.errors,
                }
            })
            .collect()
    }

    /// Parse a batch across `threads` scoped worker threads (each with its
    /// own recycled session), returning outcomes in input order. Falls
    /// back to the sequential driver for trivial thread counts or batches.
    /// A worker that panics no longer aborts the whole batch: its shard's
    /// statements report a lexical-style internal error and every other
    /// shard's results are returned normally.
    pub fn parse_many_parallel(
        &self,
        inputs: &[&str],
        threads: usize,
    ) -> Vec<Result<ParsedStats, ParseError>> {
        let threads = threads.min(inputs.len());
        if threads <= 1 {
            return self.parse_many(inputs);
        }
        run_sharded(
            inputs,
            threads,
            |shard| self.parse_many(shard),
            |shard, msg| {
                let err = worker_panic_error(msg);
                shard.iter().map(|_| Err(err.clone())).collect()
            },
        )
    }

    /// [`Parser::parse_many_resilient`] sharded across `threads` scoped
    /// workers, with the same panic containment as
    /// [`Parser::parse_many_parallel`].
    pub fn parse_many_parallel_resilient(
        &self,
        inputs: &[&str],
        threads: usize,
    ) -> Vec<ResilientStats> {
        let threads = threads.min(inputs.len());
        if threads <= 1 {
            return self.parse_many_resilient(inputs);
        }
        run_sharded(
            inputs,
            threads,
            |shard| self.parse_many_resilient(shard),
            |shard, msg| {
                shard
                    .iter()
                    .map(|_| ResilientStats {
                        tokens: 0,
                        nodes: 0,
                        errors: vec![worker_panic_error(msg)],
                    })
                    .collect()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT select_list FROM IDENT where_clause? #select ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ IDENT ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; WHERE = kw;
            COMMA = ","; STAR = "*"; EQ = "=";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn session_recycles_across_statements() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        for input in ["SELECT a FROM t", "SELECT * FROM u", "SELECT a, b FROM t WHERE a = b"] {
            let tree = s.parse_tree(input).unwrap();
            assert_eq!(tree.root().name(), "query");
            assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap());
        }
        // errors don't poison the session
        assert!(s.parse_tree("SELECT FROM t").is_err());
        assert!(s.parse_tree("SELECT a FROM t").is_ok());
    }

    #[test]
    fn parse_many_reports_per_statement_outcomes() {
        let p = parser(EngineMode::Backtracking);
        let out = p.parse_many(&["SELECT a FROM t", "SELECT FROM", "SELECT * FROM u"]);
        assert_eq!(out.len(), 3);
        let first = out[0].as_ref().unwrap();
        assert_eq!(first.tokens, 4);
        assert_eq!(first.nodes, p.parse("SELECT a FROM t").unwrap().node_count());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let p = parser(EngineMode::Ll1Table);
        let inputs: Vec<String> = (0..97)
            .map(|i| {
                if i % 7 == 0 {
                    "SELECT FROM t".to_string() // rejected
                } else {
                    format!("SELECT a{i}, b FROM t{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let seq = p.parse_many(&refs);
        for threads in [1, 2, 3, 8, 200] {
            let par = p.parse_many_parallel(&refs, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn utf8_literals_parse_identically_to_reference() {
        // String contents route multi-byte scalars through the scanner's
        // interval fallback; the CST must match the seed engine exactly.
        let g = parse_grammar("grammar s; start q; q : SELECT STRING FROM IDENT ;").unwrap();
        let t = parse_tokens(
            r#"
            tokens s;
            SELECT = kw; FROM = kw;
            IDENT = /[a-z][a-z0-9_]*/;
            STRING = /'([^'])*'/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        let p = Parser::new(g, &t).unwrap();
        let mut s = p.session();
        let input = "SELECT 'héllo — 中文 🦀' FROM t";
        let tree = s.parse_tree(input).unwrap();
        assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap());
        // lexical errors stay byte-identical too
        let fast = s.parse_tree("SELECT é FROM t").unwrap_err();
        let seed = p.parse_reference("SELECT é FROM t").unwrap_err();
        assert_eq!(fast.to_string(), seed.to_string());
    }

    #[test]
    fn empty_batch() {
        let p = parser(EngineMode::Backtracking);
        assert!(p.parse_many(&[]).is_empty());
        assert!(p.parse_many_parallel(&[], 4).is_empty());
    }

    /// A statement-script grammar (the shape every composed dialect
    /// shares), for recovery tests: sync set = {SEMI, $}.
    fn script_parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar s;
            start script;
            script : query (SEMI query)* SEMI? ;
            query : SELECT select_list FROM IDENT where_clause? #select ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ IDENT ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens s;
            SELECT = kw; FROM = kw; WHERE = kw;
            COMMA = ","; STAR = "*"; EQ = "="; SEMI = ";";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    /// Count how many times each token index appears in the tree.
    fn token_coverage(tree: &SyntaxTree<'_>) -> Vec<usize> {
        fn walk(node: crate::tree::SyntaxNode<'_, '_>, seen: &mut Vec<usize>) {
            for el in node.children() {
                match el {
                    crate::tree::SyntaxElement::Token(t) => seen[t.index()] += 1,
                    crate::tree::SyntaxElement::Node(n) => walk(n, seen),
                }
            }
        }
        let mut seen = vec![0usize; tree.tokens().len()];
        walk(tree.root(), &mut seen);
        seen
    }

    #[test]
    fn resilient_parse_matches_strict_on_clean_input() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut inputs = vec![
                "SELECT a FROM t",
                "SELECT a FROM t; SELECT * FROM u",
                "SELECT a, b FROM t WHERE a = b; SELECT c FROM v",
            ];
            if mode == EngineMode::Backtracking {
                // The LL(1) table resolves the trailing-SEMI conflict in
                // favor of the repetition, so only the backtracking engine
                // accepts a trailing semicolon strictly.
                inputs.push("SELECT a FROM t; SELECT c FROM v;");
            }
            for input in inputs {
                let strict = p.parse(input).unwrap();
                let outcome = s.parse_resilient(input);
                assert!(outcome.errors.is_empty(), "{mode:?} on {input:?}");
                assert_eq!(outcome.tree.to_cst(), strict, "{mode:?} on {input:?}");
            }
        }
    }

    #[test]
    fn resilient_parse_recovers_one_error_per_bad_statement() {
        let input = "SELECT a FROM t; SELECT FROM u; SELECT b FROM v; WHERE; SELECT c FROM w";
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let outcome = s.parse_resilient(input);
            assert_eq!(outcome.errors.len(), 2, "{mode:?}: {:?}", outcome.errors);
            // Errors are ordered and point into the bad statements.
            assert!(outcome.errors[0].at < outcome.errors[1].at);
            // Every scanned token appears exactly once in the tree.
            assert!(token_coverage(&outcome.tree).iter().all(|&c| c == 1), "{mode:?}");
            // The good statements really parsed (error nodes are named
            // "error"; the rest keep their productions).
            let names: Vec<&str> =
                outcome.tree.root().children().filter_map(|e| e.as_node().map(|n| n.name())).collect();
            assert_eq!(names.iter().filter(|n| **n == "error").count(), 2, "{names:?}");
            assert_eq!(names.iter().filter(|n| **n == "query").count(), 3, "{names:?}");
        }
    }

    #[test]
    fn resilient_first_error_matches_strict_error() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            for input in [
                "SELECT FROM t",
                "SELECT a FROM t; SELECT FROM u",
                "SELECT a FROM t WHERE",
                "",
            ] {
                let strict = p.parse(input).unwrap_err();
                let outcome = s.parse_resilient(input);
                assert!(!outcome.errors.is_empty(), "{mode:?} on {input:?}");
                assert_eq!(
                    outcome.errors[0].to_string(),
                    strict.to_string(),
                    "{mode:?} on {input:?}"
                );
            }
        }
    }

    #[test]
    fn resilient_parse_collects_lexical_and_syntax_errors() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        // The `?` is a lexical error; skipping it leaves statement 1
        // well-formed, so statement 2 contributes the only syntax error.
        let input = "SELECT a ? FROM t; SELECT FROM u";
        let outcome = s.parse_resilient(input);
        assert_eq!(outcome.errors.len(), 2, "{:?}", outcome.errors);
        assert!(outcome.errors[0].lexical.is_some());
        assert!(outcome.errors[1].lexical.is_none());
        // The lexical error is byte-identical to the strict path's.
        assert_eq!(
            outcome.errors[0].to_string(),
            p.parse(input).unwrap_err().to_string()
        );
    }

    #[test]
    fn resilient_parse_survives_garbage_and_covers_all_tokens() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            for input in [
                "; ; ;",
                "FROM FROM FROM",
                "SELECT",
                "= = ; = =",
                "SELECT a FROM", // truncated
            ] {
                let outcome = s.parse_resilient(input);
                assert!(!outcome.errors.is_empty(), "{mode:?} on {input:?}");
                assert!(
                    token_coverage(&outcome.tree).iter().all(|&c| c == 1),
                    "{mode:?} on {input:?}"
                );
            }
        }
    }

    #[test]
    fn resilient_counters_surface_through_stats() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        let outcome = s.parse_resilient("SELECT a FROM t; SELECT FROM u; SELECT b FROM v");
        assert_eq!(outcome.errors.len(), 1);
        let stats = s.stats();
        assert_eq!(stats.error_recoveries, 1);
        assert!(stats.recovery_skipped_tokens >= 2, "{stats:?}");
    }

    #[test]
    fn parse_many_resilient_matches_single_statement_outcomes() {
        let p = script_parser(EngineMode::Backtracking);
        let out = p.parse_many_resilient(&[
            "SELECT a FROM t",
            "SELECT FROM u",
            "SELECT b, c FROM v",
        ]);
        assert_eq!(out.len(), 3);
        assert!(out[0].errors.is_empty());
        assert_eq!(out[1].errors.len(), 1);
        assert!(out[2].errors.is_empty());
        assert_eq!(out[0].tokens, 4);
        let par = p.parse_many_parallel_resilient(
            &["SELECT a FROM t", "SELECT FROM u", "SELECT b, c FROM v"],
            2,
        );
        assert_eq!(out, par);
    }

    #[test]
    fn sharded_batches_survive_a_panicking_worker() {
        // A hostile input guard that panics on a marker input, simulating
        // a worker crash mid-shard.
        let inputs: Vec<String> = (0..16)
            .map(|i| if i == 5 { "PANIC".to_string() } else { format!("in{i}") })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let out = run_sharded(
            &refs,
            4,
            |shard| {
                shard
                    .iter()
                    .map(|s| {
                        assert!(*s != "PANIC", "hostile input rejected by guard");
                        Ok::<String, String>(s.to_uppercase())
                    })
                    .collect()
            },
            |shard, msg| shard.iter().map(|_| Err(msg.to_string())).collect(),
        );
        assert_eq!(out.len(), 16);
        // The panicking shard (inputs 4..8) reports the panic message;
        // every other shard's results survive.
        for (i, r) in out.iter().enumerate() {
            if (4..8).contains(&i) {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("hostile input rejected"), "{msg}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &format!("IN{i}"));
            }
        }
    }

    #[test]
    fn worker_panic_error_is_lexical_style() {
        let e = worker_panic_error("boom");
        assert_eq!(
            e.to_string(),
            "internal error: batch worker panicked: boom"
        );
    }

    // ---------- incremental editing ----------

    /// Snapshot an outcome into owned data so two sessions can be compared.
    fn snapshot(outcome: &ParseOutcome<'_>) -> (crate::cst::CstNode, Vec<String>) {
        (
            outcome.tree.to_cst(),
            outcome.errors.iter().map(|e| e.to_string()).collect(),
        )
    }

    /// Assert the incrementally maintained document equals a from-scratch
    /// resilient parse of the same text: identical CST, identical rendered
    /// diagnostics, and full token coverage.
    fn assert_incremental_identity(s: &mut ParseSession<'_>, oracle: &mut ParseSession<'_>, ctx: &str) {
        let text = s.document().to_string();
        let inc = {
            let o = s.try_document_outcome().expect("document open");
            assert!(
                token_coverage(&o.tree).iter().all(|&c| c == 1),
                "token coverage broken {ctx}"
            );
            snapshot(&o)
        };
        let full = snapshot(&oracle.parse_resilient(&text));
        assert_eq!(inc.1, full.1, "diagnostics diverged {ctx}\ntext: {text:?}");
        assert_eq!(inc.0, full.0, "tree diverged {ctx}\ntext: {text:?}");
    }

    #[test]
    fn open_document_matches_parse_resilient() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut oracle = p.session();
            for text in [
                "SELECT a FROM t; SELECT * FROM u",
                "SELECT FROM t; SELECT b FROM v",
                "",
                "; ; ;",
            ] {
                let inc = {
                    let mut o = s.open_document(text);
                    let errs: Vec<String> = o.errors.iter().map(|e| e.to_string()).collect();
                    assert!(o.stats.full_reparse);
                    (o.tree.get().to_cst(), errs)
                };
                assert!(s.edit_stats().full_reparse);
                let full = snapshot(&oracle.parse_resilient(text));
                assert_eq!(inc, full, "{mode:?} on {text:?}");
            }
        }
    }

    #[test]
    fn try_api_reports_structured_errors_and_preserves_the_document() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        assert_eq!(s.try_document().unwrap_err(), EditError::NoDocument);
        assert_eq!(s.try_edit_stats().unwrap_err(), EditError::NoDocument);
        assert!(matches!(s.try_apply_edit(0..0, "x"), Err(EditError::NoDocument)));
        assert!(matches!(s.try_document_outcome(), Err(EditError::NoDocument)));

        s.open_document("SELECT a FROM t");
        let err = s.try_apply_edit(4..99, "x").map(|_| ()).unwrap_err();
        assert_eq!(err, EditError::OutOfBounds { range: 4..99, len: 15 });
        assert_eq!(
            err.to_string(),
            "edit range 4..99 out of bounds for a document of 15 bytes"
        );
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = s.try_apply_edit(9..4, "x").map(|_| ()).unwrap_err();
        assert!(matches!(inverted, EditError::OutOfBounds { .. }));
        // a failed edit leaves the document open, intact, and editable
        assert_eq!(s.document(), "SELECT a FROM t");
        let o = s.try_apply_edit(7..8, "zz").expect("in-bounds edit");
        assert!(o.errors.is_empty());
        assert_eq!(s.document(), "SELECT zz FROM t");
    }

    #[test]
    fn non_char_boundary_edits_are_rejected_not_panicking() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        s.open_document("SELECT a FROM t; SELECT é FROM u");
        let at = s.document().find('é').unwrap();
        let err = s.try_apply_edit(at + 1..at + 2, "x").map(|_| ()).unwrap_err();
        assert_eq!(err, EditError::NotCharBoundary { range: at + 1..at + 2 });
        assert!(err.to_string().contains("char boundaries"));
        // document still editable afterwards
        let mut oracle = p.session();
        s.apply_edit(at..at + 2, "ok");
        assert_incremental_identity(&mut s, &mut oracle, "after rejected edit");
    }

    #[test]
    fn lazy_outcome_defers_and_caches_tree_materialization() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut oracle = p.session();
            s.open_document("SELECT a FROM t; SELECT FROM u; SELECT b FROM v");
            // Several keystrokes reading only diagnostics — the tree is
            // never materialized in between.
            let at = s.document().find("FROM u").unwrap();
            let o = s.apply_edit(at..at, "x ");
            assert_eq!(o.errors.len(), 0);
            let end = s.document().len();
            let o = s.apply_edit(end..end, "; SELECT");
            assert_eq!(o.errors.len(), 1);
            // The next materialization still matches a full reparse, and
            // a second read reuses the cached arena.
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} lazy catch-up"));
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} cached reread"));
            // Per-edit diagnostics equal the from-scratch diagnostics of
            // the edited text at every step.
            let at = s.document().find("x FROM u").unwrap();
            let errs: Vec<String> = s
                .apply_edit(at..at + 1, "")
                .errors
                .iter()
                .map(|e| e.to_string())
                .collect();
            let text = s.document().to_string();
            let full: Vec<String> = oracle
                .parse_resilient(&text)
                .errors
                .iter()
                .map(|e| e.to_string())
                .collect();
            assert_eq!(errs, full, "{mode:?} eager diagnostics");
        }
    }

    #[test]
    fn standalone_parses_between_edits_invalidate_the_cached_tree() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        let mut oracle = p.session();
        s.open_document("SELECT a FROM t; SELECT b FROM u");
        assert_incremental_identity(&mut s, &mut oracle, "before standalone parse");
        // A standalone parse clobbers the shared tree arena; the document
        // must rematerialize instead of serving the stale cache.
        let _ = s.parse_resilient("SELECT * FROM other");
        assert_incremental_identity(&mut s, &mut oracle, "after parse_resilient");
        let _ = s.parse_tree("SELECT c FROM w");
        assert_incremental_identity(&mut s, &mut oracle, "after parse_tree");
    }

    #[test]
    fn whitespace_edit_skips_the_parser() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        let mut oracle = p.session();
        s.open_document("SELECT a FROM t;  SELECT b FROM u");
        // widen the gap between the statements: tokens are preserved
        s.apply_edit(16..18, "    \n");
        let st = s.edit_stats();
        assert!(!st.full_reparse);
        assert_eq!(st.reparsed_tokens, 0, "{st:?}");
        assert_eq!(st.relexed_tokens, 0, "{st:?}");
        assert_incremental_identity(&mut s, &mut oracle, "whitespace edit");
    }

    #[test]
    fn single_token_edit_reparses_a_window_not_the_document() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        let mut oracle = p.session();
        let stmts: Vec<String> = (0..40).map(|i| format!("SELECT c{i} FROM t{i}")).collect();
        let text = stmts.join("; ");
        s.open_document(&text);
        let total = s.edit_stats().total_tokens;
        // rename a column in the middle statement
        let at = text.find("c20").unwrap();
        s.apply_edit(at..at + 3, "zz");
        let st = s.edit_stats();
        assert!(!st.full_reparse, "{st:?}");
        assert!(st.reparsed_tokens < total / 4, "{st:?}");
        assert!(st.relexed_tokens <= 2, "{st:?}");
        assert_incremental_identity(&mut s, &mut oracle, "mid-document rename");
    }

    #[test]
    fn edits_in_and_around_error_regions_stay_identical() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut oracle = p.session();
            s.open_document("SELECT a FROM t; SELECT FROM u; SELECT b FROM v");
            // repair the broken middle statement
            let at = s.document().find("FROM u").unwrap();
            s.apply_edit(at..at, "x ");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} repair"));
            // break it again, differently
            let at = s.document().find("x FROM u").unwrap();
            s.apply_edit(at..at + 1, "WHERE");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} re-break"));
        }
    }

    #[test]
    fn structural_edits_at_statement_boundaries_stay_identical() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut oracle = p.session();
            s.open_document("SELECT a FROM t; SELECT b FROM u; SELECT c FROM v");
            // delete a separator: two statements merge (and break)
            let semi = s.document().find(';').unwrap();
            s.apply_edit(semi..semi + 1, "");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} merge"));
            // re-split
            let at = s.document().find(" SELECT b").unwrap();
            s.apply_edit(at..at, ";");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} split"));
            // delete a span crossing a statement boundary
            let lo = s.document().find("FROM u").unwrap();
            let hi = s.document().find("c FROM v").unwrap();
            s.apply_edit(lo..hi, "");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} cross-cut"));
            // edits at the very ends
            let end = s.document().len();
            s.apply_edit(end..end, "; SELECT z FROM w");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} append"));
            s.apply_edit(0..0, "SELECT q FROM r; ");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} prepend"));
            // delete everything
            let end = s.document().len();
            s.apply_edit(0..end, "");
            assert_incremental_identity(&mut s, &mut oracle, &format!("{mode:?} clear"));
        }
    }

    #[test]
    fn lexical_errors_rebase_across_edits() {
        let p = script_parser(EngineMode::Backtracking);
        let mut s = p.session();
        let mut oracle = p.session();
        s.open_document("SELECT a ? FROM t; SELECT b FROM u");
        // edit after the lexical error: its diagnostic must not move
        let at = s.document().find('b').unwrap();
        s.apply_edit(at..at + 1, "bbb");
        assert_incremental_identity(&mut s, &mut oracle, "edit after lex error");
        // edit before it: the diagnostic must shift
        s.apply_edit(0..0, "  ");
        assert_incremental_identity(&mut s, &mut oracle, "edit before lex error");
        // introduce a second lexical error, then remove the first
        let end = s.document().len();
        s.apply_edit(end..end, " ?");
        assert_incremental_identity(&mut s, &mut oracle, "append lex error");
        let at = s.document().find('?').unwrap();
        s.apply_edit(at..at + 1, "");
        assert_incremental_identity(&mut s, &mut oracle, "remove first lex error");
    }

    /// Deterministic xorshift64* generator for the edit-script fuzz below.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n.max(1) as u64) as usize
        }
    }

    #[test]
    fn random_edit_scripts_match_full_reparse() {
        const SNIPPETS: &[&str] = &[
            "",
            " ",
            ";",
            "; ",
            "SELECT",
            "FROM",
            "x",
            "zz9",
            ", y",
            " WHERE a = b",
            "SELECT a FROM t",
            "?",
            "*",
            "é",
        ];
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = script_parser(mode);
            let mut s = p.session();
            let mut oracle = p.session();
            let mut rng = XorShift(0x5eed_0000 + mode as u64 + 1);
            s.open_document("SELECT a FROM t; SELECT b, c FROM u WHERE b = c; SELECT * FROM v");
            for step in 0..120 {
                let text = s.document();
                let len = text.len();
                let mut lo = rng.below(len + 1);
                let mut hi = (lo + rng.below(9).pow(2)).min(len);
                while !text.is_char_boundary(lo) {
                    lo -= 1;
                }
                while !text.is_char_boundary(hi) {
                    hi -= 1;
                }
                if hi < lo {
                    std::mem::swap(&mut lo, &mut hi);
                }
                let rep = SNIPPETS[rng.below(SNIPPETS.len())];
                s.apply_edit(lo..hi, rep);
                assert_incremental_identity(
                    &mut s,
                    &mut oracle,
                    &format!("{mode:?} step {step}: {lo}..{hi} := {rep:?}"),
                );
            }
        }
    }
}

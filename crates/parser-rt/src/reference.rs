//! The seed parse engines, kept verbatim as a differential oracle.
//!
//! Before the green-tree rework, both engines materialized [`CstNode`]s
//! *while* parsing: every token allocated its kind name and lexeme, every
//! expansion cloned its production name and label, and abandoning a
//! speculative alternative dropped a fully built subtree. This module
//! preserves that implementation — same traversal order, same
//! farthest-failure notes, no memoization — so that:
//!
//! * the cross-engine differential suite can assert the event-built
//!   [`crate::tree::SyntaxTree`] converts to the *identical* `CstNode` the
//!   seed engines produced, for every statement;
//! * error-message regression tests can prove the memo table and the
//!   note-recording fast path changed no reported diagnostics;
//! * the allocation-ablation benchmark (Experiment B4) has an honest
//!   "before" to measure the event core against.
//!
//! It is not a supported parsing API; use [`Parser::parse`] or
//! [`crate::session::ParseSession`].

use crate::cst::CstNode;
use crate::engine::{CTerm, EngineMode, FTerm, Notes, Parser, NO_ALT};
use crate::errors::ParseError;
use sqlweave_lexgen::Token;
use std::collections::BTreeSet;

/// Seed-engine context: token stream plus farthest-failure tracking.
struct RefCtx<'a> {
    toks: &'a [Token],
    kind_ids: Vec<u32>,
    input: &'a str,
    parser: &'a Parser,
    notes: Notes,
}

impl RefCtx<'_> {
    fn token_node(&self, pos: usize) -> CstNode {
        let t = &self.toks[pos];
        CstNode::Token {
            kind: self.parser.scanner().name(t.kind).to_string(),
            text: t.text(self.input).to_string(),
            start: t.start,
            end: t.end,
        }
    }
}

impl Parser {
    /// Parse with the seed (pre-event) implementation: direct per-node CST
    /// construction, no failure memo. Kept for differential testing and
    /// the allocation-ablation benchmark; behaviorally identical to
    /// [`Parser::parse`].
    pub fn parse_reference(&self, input: &str) -> Result<CstNode, ParseError> {
        let toks = self.scanner.scan(input).map_err(|e| ParseError {
            at: e.at,
            line: e.line,
            column: e.column,
            expected: BTreeSet::new(),
            found: e.found.map(|c| ("CHAR".to_string(), c.to_string())),
            lexical: Some(e.to_string()),
        })?;
        let kind_ids: Vec<u32> = toks.iter().map(|t| t.kind.0).collect();
        let mut ctx = RefCtx {
            toks: &toks,
            kind_ids,
            input,
            parser: self,
            notes: Notes::new(self.n_tokens),
        };
        let result = match self.mode() {
            EngineMode::Backtracking => self.ref_bt_nt(&mut ctx, self.cstart, 0),
            EngineMode::Ll1Table => self.ref_ll1_nt(&mut ctx, self.fstart, 0),
        };
        match result {
            Ok((node, next)) if next == toks.len() => Ok(node),
            Ok((_, next)) => {
                ctx.notes.note_eof(next);
                Err(self.error_from(input, &toks, &ctx.notes))
            }
            Err(()) => Err(self.error_from(input, &toks, &ctx.notes)),
        }
    }

    // ---------- seed backtracking engine ----------

    fn ref_bt_nt(&self, ctx: &mut RefCtx<'_>, prod: u32, pos: usize) -> Result<(CstNode, usize), ()> {
        let prod = &self.cprods[prod as usize];
        let la = ctx.kind_ids.get(pos).copied();
        for alt in &prod.alts {
            if !alt.nullable {
                match la {
                    Some(k) if alt.first.contains(k) => {}
                    _ => {
                        ctx.notes.note_set(pos, &alt.first);
                        continue;
                    }
                }
            }
            let mut children = Vec::new();
            if let Ok(next) = self.ref_bt_seq(ctx, &alt.seq, pos, &mut children) {
                return Ok((
                    CstNode::rule(&prod.name, alt.label.clone(), children),
                    next,
                ));
            }
        }
        Err(())
    }

    fn ref_bt_seq(
        &self,
        ctx: &mut RefCtx<'_>,
        seq: &[CTerm],
        mut pos: usize,
        children: &mut Vec<CstNode>,
    ) -> Result<usize, ()> {
        for term in seq {
            pos = self.ref_bt_term(ctx, term, pos, children)?;
        }
        Ok(pos)
    }

    /// Greedy repetition shared by `Star` and the tail of `Plus`.
    fn ref_bt_repeat(
        &self,
        ctx: &mut RefCtx<'_>,
        body: &[CTerm],
        first: &crate::engine::TokBits,
        mut pos: usize,
        children: &mut Vec<CstNode>,
    ) -> usize {
        loop {
            match ctx.kind_ids.get(pos) {
                Some(&k) if first.contains(k) => {
                    let mark = children.len();
                    match self.ref_bt_seq(ctx, body, pos, children) {
                        Ok(next) if next > pos => pos = next,
                        _ => {
                            children.truncate(mark);
                            break;
                        }
                    }
                }
                _ => {
                    ctx.notes.note_set(pos, first);
                    break;
                }
            }
        }
        pos
    }

    fn ref_bt_term(
        &self,
        ctx: &mut RefCtx<'_>,
        term: &CTerm,
        pos: usize,
        children: &mut Vec<CstNode>,
    ) -> Result<usize, ()> {
        match term {
            CTerm::Tok(kind) => match ctx.kind_ids.get(pos) {
                Some(k) if k == kind => {
                    children.push(ctx.token_node(pos));
                    Ok(pos + 1)
                }
                _ => {
                    ctx.notes.note_id(pos, *kind);
                    Err(())
                }
            },
            CTerm::Nt(n) => {
                let (node, next) = self.ref_bt_nt(ctx, *n, pos)?;
                children.push(node);
                Ok(next)
            }
            CTerm::Opt { body, first, .. } => {
                if matches!(ctx.kind_ids.get(pos), Some(&k) if first.contains(k)) {
                    let mark = children.len();
                    match self.ref_bt_seq(ctx, body, pos, children) {
                        Ok(next) => return Ok(next),
                        Err(()) => children.truncate(mark),
                    }
                } else {
                    // Not taken: still informative for error messages.
                    ctx.notes.note_set(pos, first);
                }
                Ok(pos)
            }
            CTerm::Star { body, first, .. } => {
                Ok(self.ref_bt_repeat(ctx, body, first, pos, children))
            }
            CTerm::Plus { body, first, .. } => {
                let next = self.ref_bt_seq(ctx, body, pos, children)?;
                Ok(self.ref_bt_repeat(ctx, body, first, next, children))
            }
            CTerm::Group { alts, .. } => {
                let la = ctx.kind_ids.get(pos).copied();
                for alt in alts {
                    if !alt.nullable {
                        match la {
                            Some(k) if alt.first.contains(k) => {}
                            _ => {
                                ctx.notes.note_set(pos, &alt.first);
                                continue;
                            }
                        }
                    }
                    let mark = children.len();
                    match self.ref_bt_seq(ctx, &alt.seq, pos, children) {
                        Ok(next) => return Ok(next),
                        Err(()) => children.truncate(mark),
                    }
                }
                Err(())
            }
        }
    }

    // ---------- seed LL(1) table engine ----------

    fn ref_ll1_nt(
        &self,
        ctx: &mut RefCtx<'_>,
        prod: u32,
        pos: usize,
    ) -> Result<(CstNode, usize), ()> {
        let name = self.fprods[prod as usize].name.clone();
        let (children, next, label) = self.ref_ll1_expand(ctx, prod, pos)?;
        Ok((CstNode::rule(&name, label, children), next))
    }

    /// Expand one flat nonterminal, returning its children (used both for
    /// real rules and for splicing synthetic ones).
    fn ref_ll1_expand(
        &self,
        ctx: &mut RefCtx<'_>,
        prod: u32,
        mut pos: usize,
    ) -> Result<(Vec<CstNode>, usize, Option<String>), ()> {
        let fprod = &self.fprods[prod as usize];
        let alt_index = match ctx.kind_ids.get(pos) {
            Some(&k) => fprod.row[k as usize],
            None => fprod.eof_alt,
        };
        if alt_index == NO_ALT {
            ctx.notes.note_set(pos, &fprod.expected);
            return Err(());
        }
        let alt = &fprod.alts[alt_index as usize];
        let mut children = Vec::new();
        for term in &alt.seq {
            match term {
                FTerm::Tok(kind) => match ctx.kind_ids.get(pos) {
                    Some(k) if k == kind => {
                        children.push(ctx.token_node(pos));
                        pos += 1;
                    }
                    _ => {
                        ctx.notes.note_id(pos, *kind);
                        return Err(());
                    }
                },
                FTerm::Nt { idx, synthetic } => {
                    if *synthetic {
                        let (spliced, next, _) = self.ref_ll1_expand(ctx, *idx, pos)?;
                        children.extend(spliced);
                        pos = next;
                    } else {
                        let (node, next) = self.ref_ll1_nt(ctx, *idx, pos)?;
                        children.push(node);
                        pos = next;
                    }
                }
            }
        }
        Ok((children, pos, alt.label.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT quant? select_list FROM IDENT #select ;
            quant : DISTINCT #distinct | ALL #all ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; DISTINCT = kw; ALL = kw;
            COMMA = ","; STAR = "*";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn reference_and_event_engines_agree_on_trees() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = parser(mode);
            for input in [
                "SELECT a FROM t",
                "SELECT DISTINCT a, b, c FROM t",
                "SELECT * FROM t",
            ] {
                assert_eq!(
                    p.parse(input).unwrap(),
                    p.parse_reference(input).unwrap(),
                    "{mode:?} {input:?}"
                );
            }
        }
    }

    #[test]
    fn reference_and_event_engines_agree_on_errors() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = parser(mode);
            for input in ["", "SELECT", "SELECT FROM t", "SELECT a b FROM t", "SELECT a FROM t x", "%"] {
                assert_eq!(
                    p.parse(input).unwrap_err(),
                    p.parse_reference(input).unwrap_err(),
                    "{mode:?} {input:?}"
                );
            }
        }
    }
}

//! Concrete syntax trees with token spans.

use std::fmt;

/// A node of the concrete syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CstNode {
    /// An expanded nonterminal.
    Rule {
        /// Production name.
        name: String,
        /// Label of the alternative that matched, if any.
        label: Option<String>,
        /// Child nodes in input order.
        children: Vec<CstNode>,
    },
    /// A matched token.
    Token {
        /// Token rule name (e.g. `SELECT`, `IDENT`).
        kind: String,
        /// The lexeme.
        text: String,
        /// Start byte offset in the original input.
        start: usize,
        /// End byte offset (exclusive).
        end: usize,
    },
}

impl CstNode {
    /// Construct a rule node.
    pub fn rule(name: &str, label: Option<String>, children: Vec<CstNode>) -> CstNode {
        CstNode::Rule {
            name: name.to_string(),
            label,
            children,
        }
    }

    /// The rule/production name, or the token kind.
    pub fn name(&self) -> &str {
        match self {
            CstNode::Rule { name, .. } => name,
            CstNode::Token { kind, .. } => kind,
        }
    }

    /// `true` for token leaves.
    pub fn is_token(&self) -> bool {
        matches!(self, CstNode::Token { .. })
    }

    /// Children (empty for tokens).
    pub fn children(&self) -> &[CstNode] {
        match self {
            CstNode::Rule { children, .. } => children,
            CstNode::Token { .. } => &[],
        }
    }

    /// Alternative label (rules only).
    pub fn label(&self) -> Option<&str> {
        match self {
            CstNode::Rule { label, .. } => label.as_deref(),
            CstNode::Token { .. } => None,
        }
    }

    /// First child rule with the given production name.
    pub fn child(&self, name: &str) -> Option<&CstNode> {
        self.children().iter().find(|c| c.name() == name)
    }

    /// All direct children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a CstNode> {
        self.children().iter().filter(move |c| c.name() == name)
    }

    /// First token descendant of the given kind (pre-order).
    pub fn find_token(&self, kind: &str) -> Option<&CstNode> {
        match self {
            CstNode::Token { kind: k, .. } if k == kind => Some(self),
            CstNode::Token { .. } => None,
            CstNode::Rule { children, .. } => {
                children.iter().find_map(|c| c.find_token(kind))
            }
        }
    }

    /// Token text if this is a token node.
    pub fn token_text(&self) -> Option<&str> {
        match self {
            CstNode::Token { text, .. } => Some(text),
            CstNode::Rule { .. } => None,
        }
    }

    /// Byte span covered by this node, if it contains any tokens.
    ///
    /// Each endpoint descends one side of the tree independently; asking a
    /// child for its full span here would recompute both endpoints at every
    /// level, which is exponential on deep single-child expression spines.
    pub fn span(&self) -> Option<(usize, usize)> {
        Some((self.first_token_start()?, self.last_token_end()?))
    }

    /// Start offset of the first token leaf, descending leftward only.
    fn first_token_start(&self) -> Option<usize> {
        match self {
            CstNode::Token { start, .. } => Some(*start),
            CstNode::Rule { children, .. } => {
                children.iter().find_map(|c| c.first_token_start())
            }
        }
    }

    /// End offset of the last token leaf, descending rightward only.
    fn last_token_end(&self) -> Option<usize> {
        match self {
            CstNode::Token { end, .. } => Some(*end),
            CstNode::Rule { children, .. } => {
                children.iter().rev().find_map(|c| c.last_token_end())
            }
        }
    }

    /// All token leaves in order.
    pub fn tokens(&self) -> Vec<&CstNode> {
        let mut out = Vec::new();
        self.collect_tokens(&mut out);
        out
    }

    fn collect_tokens<'a>(&'a self, out: &mut Vec<&'a CstNode>) {
        match self {
            CstNode::Token { .. } => out.push(self),
            CstNode::Rule { children, .. } => {
                for c in children {
                    c.collect_tokens(out);
                }
            }
        }
    }

    /// Reconstruct the lexeme stream separated by single spaces (not the
    /// original whitespace; use spans against the original input for that).
    pub fn text(&self) -> String {
        self.tokens()
            .iter()
            .filter_map(|t| t.token_text())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Total number of nodes (rules + tokens).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(CstNode::node_count).sum::<usize>()
    }

    /// Render an indented tree (debugging and golden tests).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        match self {
            CstNode::Rule { name, label, children } => {
                let _ = match label {
                    Some(l) => writeln!(out, "{indent}{name} #{l}"),
                    None => writeln!(out, "{indent}{name}"),
                };
                for c in children {
                    c.pretty_into(out, depth + 1);
                }
            }
            CstNode::Token { kind, text, .. } => {
                let _ = writeln!(out, "{indent}{kind} {text:?}");
            }
        }
    }
}

impl fmt::Display for CstNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(kind: &str, text: &str, start: usize) -> CstNode {
        CstNode::Token {
            kind: kind.to_string(),
            text: text.to_string(),
            start,
            end: start + text.len(),
        }
    }

    fn sample() -> CstNode {
        CstNode::rule(
            "query",
            Some("select".to_string()),
            vec![
                tok("SELECT", "SELECT", 0),
                CstNode::rule(
                    "select_list",
                    None,
                    vec![tok("IDENT", "a", 7), tok("COMMA", ",", 8), tok("IDENT", "b", 10)],
                ),
                tok("FROM", "FROM", 12),
                tok("IDENT", "t", 17),
            ],
        )
    }

    #[test]
    fn navigation() {
        let n = sample();
        assert_eq!(n.name(), "query");
        assert_eq!(n.label(), Some("select"));
        let sl = n.child("select_list").unwrap();
        assert_eq!(sl.children_named("IDENT").count(), 2);
        assert_eq!(n.find_token("FROM").unwrap().token_text(), Some("FROM"));
        assert!(n.find_token("WHERE").is_none());
    }

    #[test]
    fn span_covers_all_tokens() {
        let n = sample();
        assert_eq!(n.span(), Some((0, 18)));
        assert_eq!(n.child("select_list").unwrap().span(), Some((7, 11)));
    }

    #[test]
    fn text_reconstruction() {
        assert_eq!(sample().text(), "SELECT a , b FROM t");
    }

    #[test]
    fn node_count() {
        assert_eq!(sample().node_count(), 8);
    }

    #[test]
    fn pretty_shape() {
        let p = sample().pretty();
        assert!(p.starts_with("query #select\n"));
        assert!(p.contains("  select_list\n"));
        assert!(p.contains("    IDENT \"a\"\n"));
    }

    #[test]
    fn empty_rule_has_no_span() {
        let n = CstNode::rule("empty", None, vec![]);
        assert_eq!(n.span(), None);
        assert_eq!(n.text(), "");
    }
}

//! Parse errors with expected-token reporting.

use std::collections::BTreeSet;
use std::fmt;

/// A syntax error at the farthest point the parser reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token (or end of input).
    pub at: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Token kinds that would have been accepted here.
    pub expected: BTreeSet<String>,
    /// The token actually found (kind, text); `None` at end of input.
    pub found: Option<(String, String)>,
    /// Set when the failure came from the lexer, with its message.
    pub lexical: Option<String>,
}

impl ParseError {
    /// Render the expected set compactly (up to 8 entries).
    pub fn expected_summary(&self) -> String {
        let items: Vec<&str> = self.expected.iter().map(String::as_str).take(8).collect();
        let mut s = items.join(", ");
        if self.expected.len() > 8 {
            s.push_str(", …");
        }
        s
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(lex) = &self.lexical {
            return write!(f, "{lex}");
        }
        write!(f, "syntax error at line {}, column {}: ", self.line, self.column)?;
        match &self.found {
            Some((kind, text)) => write!(f, "unexpected {kind} {text:?}")?,
            None => write!(f, "unexpected end of input")?,
        }
        if !self.expected.is_empty() {
            write!(f, "; expected one of: {}", self.expected_summary())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_found_token() {
        let e = ParseError {
            at: 10,
            line: 1,
            column: 11,
            expected: BTreeSet::from(["FROM".to_string(), "COMMA".to_string()]),
            found: Some(("WHERE".to_string(), "where".to_string())),
            lexical: None,
        };
        let s = e.to_string();
        assert!(s.contains("line 1, column 11"));
        assert!(s.contains("unexpected WHERE"));
        assert!(s.contains("COMMA, FROM"));
    }

    #[test]
    fn display_at_eof() {
        let e = ParseError {
            at: 5,
            line: 2,
            column: 1,
            expected: BTreeSet::from(["IDENT".to_string()]),
            found: None,
            lexical: None,
        };
        assert!(e.to_string().contains("unexpected end of input"));
    }

    #[test]
    fn expected_summary_truncates() {
        let expected: BTreeSet<String> = (0..12).map(|i| format!("T{i:02}")).collect();
        let e = ParseError {
            at: 0,
            line: 1,
            column: 1,
            expected,
            found: None,
            lexical: None,
        };
        assert!(e.expected_summary().ends_with(", …"));
    }
}

//! Parse errors with expected-token reporting.

use std::collections::BTreeSet;
use std::fmt;

/// A syntax error at the farthest point the parser reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token (or end of input).
    pub at: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Token kinds that would have been accepted here.
    pub expected: BTreeSet<String>,
    /// The token actually found (kind, text); `None` at end of input.
    pub found: Option<(String, String)>,
    /// Set when the failure came from the lexer, with its message.
    pub lexical: Option<String>,
}

impl ParseError {
    /// Render the expected set compactly (up to 8 entries).
    pub fn expected_summary(&self) -> String {
        let items: Vec<&str> = self.expected.iter().map(String::as_str).take(8).collect();
        let mut s = items.join(", ");
        if self.expected.len() > 8 {
            s.push_str(", …");
        }
        s
    }

    /// Render a rustc-style multi-line diagnostic against the source:
    /// the one-line message, a `-->` location line, and the offending
    /// source line with a caret under the error column.
    ///
    /// ```text
    /// error: syntax error at line 2, column 8: unexpected FROM "FROM"; …
    ///   --> line 2, column 8
    ///    |
    ///  2 | SELECT FROM t2;
    ///    |        ^
    /// ```
    pub fn render(&self, input: &str) -> String {
        let mut out = format!("error: {self}\n  --> line {}, column {}\n", self.line, self.column);
        // The source line the error points into (1-based). `lines()`
        // yields nothing for "" and no final entry after a trailing
        // newline; the caret then points at an empty line.
        let src_line = input.lines().nth(self.line - 1).unwrap_or("");
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!("{pad} |\n{gutter} | {src_line}\n"));
        let caret_pad = " ".repeat(self.column.saturating_sub(1));
        out.push_str(&format!("{pad} | {caret_pad}^\n"));
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(lex) = &self.lexical {
            return write!(f, "{lex}");
        }
        write!(f, "syntax error at line {}, column {}: ", self.line, self.column)?;
        match &self.found {
            Some((kind, text)) => write!(f, "unexpected {kind} {text:?}")?,
            None => write!(f, "unexpected end of input")?,
        }
        if !self.expected.is_empty() {
            write!(f, "; expected one of: {}", self.expected_summary())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_found_token() {
        let e = ParseError {
            at: 10,
            line: 1,
            column: 11,
            expected: BTreeSet::from(["FROM".to_string(), "COMMA".to_string()]),
            found: Some(("WHERE".to_string(), "where".to_string())),
            lexical: None,
        };
        let s = e.to_string();
        assert!(s.contains("line 1, column 11"));
        assert!(s.contains("unexpected WHERE"));
        assert!(s.contains("COMMA, FROM"));
    }

    #[test]
    fn display_at_eof() {
        let e = ParseError {
            at: 5,
            line: 2,
            column: 1,
            expected: BTreeSet::from(["IDENT".to_string()]),
            found: None,
            lexical: None,
        };
        assert!(e.to_string().contains("unexpected end of input"));
    }

    #[test]
    fn render_points_a_caret_at_the_column() {
        let input = "SELECT a FROM t1;\nSELECT FROM t2;";
        let e = ParseError {
            at: 25,
            line: 2,
            column: 8,
            expected: BTreeSet::from(["IDENT".to_string(), "STAR".to_string()]),
            found: Some(("FROM".to_string(), "FROM".to_string())),
            lexical: None,
        };
        let r = e.render(input);
        assert!(r.starts_with("error: syntax error at line 2, column 8"), "{r}");
        assert!(r.contains("  --> line 2, column 8\n"), "{r}");
        assert!(r.contains("2 | SELECT FROM t2;\n"), "{r}");
        assert!(r.contains("  |        ^\n"), "{r}");
    }

    #[test]
    fn render_survives_out_of_range_lines() {
        let e = ParseError {
            at: 0,
            line: 9,
            column: 1,
            expected: BTreeSet::new(),
            found: None,
            lexical: None,
        };
        let r = e.render("short");
        assert!(r.contains("9 | \n"), "{r}");
        assert!(r.contains("  | ^\n"), "{r}");
    }

    #[test]
    fn expected_summary_truncates() {
        let expected: BTreeSet<String> = (0..12).map(|i| format!("T{i:02}")).collect();
        let e = ParseError {
            at: 0,
            line: 1,
            column: 1,
            expected,
            found: None,
            lexical: None,
        };
        assert!(e.expected_summary().ends_with(", …"));
    }
}

//! Parser runtime for `sqlweave` — the from-scratch replacement for the
//! ANTLR/JavaCC parser generators the paper relies on.
//!
//! A [`Parser`] is built from a composed grammar plus its token set and can
//! run in two engine modes (the ablation of Experiment B4):
//!
//! * [`EngineMode::Backtracking`] — a recursive-descent interpreter over the
//!   EBNF IR with FIRST-set pruning and ordered-alternative backtracking
//!   (PEG-style resolution of non-LL(1) spots, like ANTLR's decision
//!   engine).
//! * [`EngineMode::Ll1Table`] — a table-driven predictive parser over the
//!   flattened BNF; requires the grammar to be LL(1) at every decision the
//!   input exercises (declaration order breaks reported conflicts).
//!
//! Both engines produce identical [`cst::CstNode`] parse trees (synthetic
//! nonterminals introduced by flattening are spliced away).
//!
//! [`codegen`] additionally *generates Rust source* for a standalone
//! recursive-descent parser, which is the closest analogue of the paper's
//! "use ANTLR to generate parser code" step.

pub mod codegen;
pub mod cst;
pub mod engine;
pub mod errors;

pub use cst::CstNode;
pub use engine::{EngineMode, Parser, ParserStats};
pub use errors::ParseError;

//! Parser runtime for `sqlweave` — the from-scratch replacement for the
//! ANTLR/JavaCC parser generators the paper relies on.
//!
//! A [`Parser`] is built from a composed grammar plus its token set and can
//! run in two engine modes (the ablation of Experiment B4):
//!
//! * [`EngineMode::Backtracking`] — a recursive-descent interpreter over the
//!   EBNF IR with FIRST-set pruning, ordered-alternative backtracking
//!   (PEG-style resolution of non-LL(1) spots, like ANTLR's decision
//!   engine), and O(1) failure memoization of re-probed nonterminals.
//! * [`EngineMode::Ll1Table`] — a table-driven predictive parser over the
//!   flattened BNF; requires the grammar to be LL(1) at every decision the
//!   input exercises (declaration order breaks reported conflicts).
//!
//! Both engines emit flat [`events::Event`] streams instead of building
//! nodes (backtracking is a buffer truncation), which a separate builder
//! materializes into an arena-backed [`tree::SyntaxTree`] with zero-copy
//! token text. The seed [`cst::CstNode`] API survives as a conversion
//! ([`tree::SyntaxTree::to_cst`]), and both engines still produce
//! identical parse trees (synthetic nonterminals introduced by flattening
//! are spliced away). [`session::ParseSession`] recycles every buffer
//! across statements; [`Parser::parse_many`] and
//! [`Parser::parse_many_parallel`] batch over it.
//!
//! Beyond the strict single-error contract, [`Parser::parse_resilient`]
//! and [`session::ParseSession::parse_resilient`] run panic-mode error
//! recovery: every committed failure becomes a diagnostic, skipped tokens
//! fold into `error` nodes ([`events::ERROR_NODE`]), and the returned
//! [`session::ParseOutcome`] carries a tree covering every scanned token
//! plus all diagnostics in source order.
//!
//! [`codegen`] additionally *generates Rust source* for a standalone
//! recursive-descent parser, which is the closest analogue of the paper's
//! "use ANTLR to generate parser code" step.

pub mod codegen;
pub mod cst;
pub mod engine;
pub mod errors;
pub mod events;
pub mod reference;
pub mod session;
pub mod tree;

pub use cst::CstNode;
pub use engine::{EngineMode, Parser, ParserStats, RunCounters};
pub use errors::ParseError;
pub use events::{Event, ERROR_NODE};
pub use session::{
    EditError, EditOutcome, EditStats, LazyTree, ParseOutcome, ParseSession, ParsedStats,
    ResilientStats,
};
pub use tree::{Sym, SyntaxElement, SyntaxNode, SyntaxToken, SyntaxTree, TokenInterner};

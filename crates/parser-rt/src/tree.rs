//! Materialized syntax trees over flat event streams.
//!
//! A [`SyntaxTree`] is the green-tree counterpart of [`CstNode`]: one
//! contiguous node arena plus one contiguous child-element array, built in
//! a single pass over the event buffer a parse produced. Nothing in the
//! tree owns a string — production names and alternative labels are
//! resolved on demand against the parser's compiled tables, and token text
//! is a zero-copy span into the original input.
//!
//! The tree borrows the [`crate::session::ParseSession`] buffers it was
//! built into (and the input), so a steady-state session parses with no
//! per-statement allocation at all once its buffers have grown to the
//! workload's high-water mark. Callers that need an owning tree (golden
//! tests, the lowering layer) convert with [`SyntaxTree::to_cst`], which
//! reproduces the seed CST shape exactly.

use crate::cst::CstNode;
use crate::engine::{EngineMode, Parser};
use crate::events::Event;
use sqlweave_lexgen::Token;
use std::fmt;

/// Arena node: a nonterminal expansion with a contiguous child range.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeData {
    prod: u32,
    alt: u32,
    elems_start: u32,
    elems_end: u32,
}

/// One child of a node: either another node or a token, by arena index.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Element {
    Node(u32),
    Token(u32),
}

/// Reusable tree-building buffers owned by a session.
#[derive(Default)]
pub(crate) struct TreeBuffers {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) elems: Vec<Element>,
    /// Children collected for the currently open expansions.
    pending: Vec<Element>,
    /// `(node id, pending mark)` per open expansion.
    open: Vec<(u32, usize)>,
}

impl TreeBuffers {
    /// Build the arena from a well-formed event stream; returns the root
    /// node id.
    pub(crate) fn build(&mut self, events: &[Event]) -> u32 {
        self.reset();
        for ev in events {
            match *ev {
                Event::Open { prod, alt } => self.open_node(prod, alt),
                Event::Token { index } => self.pending.push(Element::Token(index)),
                Event::Close => self.close_node(),
            }
        }
        self.take_root()
    }

    /// Build the arena directly from a *chunked* event representation: a
    /// root wrapper around a sequence of per-chunk event slices whose
    /// token indices are chunk-relative (absolute index = chunk-relative
    /// + the chunk's `tok_base`). Equivalent to flattening the chunks
    /// into one root-wrapped stream and calling [`TreeBuffers::build`],
    /// without materializing that stream — this is how a lazily
    /// maintained document's tree is built on first access.
    pub(crate) fn build_chunked<'c>(
        &mut self,
        root: (u32, u32),
        chunks: impl Iterator<Item = (&'c [Event], u32)>,
    ) -> u32 {
        self.reset();
        self.open_node(root.0, root.1);
        for (events, tok_base) in chunks {
            for ev in events {
                match *ev {
                    Event::Open { prod, alt } => self.open_node(prod, alt),
                    Event::Token { index } => {
                        self.pending.push(Element::Token(index + tok_base))
                    }
                    Event::Close => self.close_node(),
                }
            }
        }
        self.close_node();
        self.take_root()
    }

    fn reset(&mut self) {
        self.nodes.clear();
        self.elems.clear();
        self.pending.clear();
        self.open.clear();
    }

    fn open_node(&mut self, prod: u32, alt: u32) {
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeData { prod, alt, elems_start: 0, elems_end: 0 });
        self.open.push((id, self.pending.len()));
    }

    fn close_node(&mut self) {
        let (id, mark) = self.open.pop().expect("unbalanced Close event");
        let start = self.elems.len() as u32;
        self.elems.extend_from_slice(&self.pending[mark..]);
        let node = &mut self.nodes[id as usize];
        node.elems_start = start;
        node.elems_end = self.elems.len() as u32;
        self.pending.truncate(mark);
        self.pending.push(Element::Node(id));
    }

    fn take_root(&mut self) -> u32 {
        debug_assert!(self.open.is_empty(), "unclosed Open event");
        debug_assert_eq!(self.pending.len(), 1, "event stream must have one root");
        match self.pending[0] {
            Element::Node(id) => id,
            Element::Token(_) => unreachable!("root of a parse is a rule expansion"),
        }
    }
}

/// A materialized parse: node arena + token stream + input, with names
/// resolved against the parser that produced it.
pub struct SyntaxTree<'a> {
    pub(crate) parser: &'a Parser,
    pub(crate) mode: EngineMode,
    pub(crate) input: &'a str,
    pub(crate) toks: &'a [Token],
    pub(crate) nodes: &'a [NodeData],
    pub(crate) elems: &'a [Element],
    pub(crate) root: u32,
}

impl<'a> SyntaxTree<'a> {
    /// The root node (start production of the grammar).
    pub fn root(&self) -> SyntaxNode<'a, '_> {
        SyntaxNode { tree: self, id: self.root }
    }

    /// The original input text.
    pub fn input(&self) -> &'a str {
        self.input
    }

    /// All scanned (non-skip) tokens, in order.
    pub fn tokens(&self) -> &'a [Token] {
        self.toks
    }

    /// Total nodes in the seed counting convention: rule expansions plus
    /// token leaves (matches [`CstNode::node_count`]).
    pub fn node_count(&self) -> usize {
        self.nodes.len() + self.toks.len()
    }

    /// Rule expansions only.
    pub fn rule_count(&self) -> usize {
        self.nodes.len()
    }

    /// Convert to the seed owning CST representation. This is the only
    /// tree operation that allocates per node; it exists so downstream
    /// consumers (lowering, golden tests, printing) keep working unchanged.
    pub fn to_cst(&self) -> CstNode {
        self.node_to_cst(self.root)
    }

    fn node_to_cst(&self, id: u32) -> CstNode {
        let node = &self.nodes[id as usize];
        let children = self.elems[node.elems_start as usize..node.elems_end as usize]
            .iter()
            .map(|e| match *e {
                Element::Node(n) => self.node_to_cst(n),
                Element::Token(t) => {
                    let tok = &self.toks[t as usize];
                    CstNode::Token {
                        kind: self.parser.scanner().name(tok.kind).to_string(),
                        text: tok.text(self.input).to_string(),
                        start: tok.start,
                        end: tok.end,
                    }
                }
            })
            .collect();
        CstNode::Rule {
            name: self.parser.prod_name(self.mode, node.prod).to_string(),
            label: self
                .parser
                .alt_label(self.mode, node.prod, node.alt)
                .map(str::to_string),
            children,
        }
    }

    /// Render the same indented tree as [`CstNode::pretty`], without
    /// materializing a CST.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_node(&mut out, self.root, 0);
        out
    }

    fn pretty_node(&self, out: &mut String, id: u32, depth: usize) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let node = &self.nodes[id as usize];
        let name = self.parser.prod_name(self.mode, node.prod);
        let _ = match self.parser.alt_label(self.mode, node.prod, node.alt) {
            Some(l) => writeln!(out, "{indent}{name} #{l}"),
            None => writeln!(out, "{indent}{name}"),
        };
        for e in &self.elems[node.elems_start as usize..node.elems_end as usize] {
            match *e {
                Element::Node(n) => self.pretty_node(out, n, depth + 1),
                Element::Token(t) => {
                    let tok = &self.toks[t as usize];
                    let kind = self.parser.scanner().name(tok.kind);
                    let text = tok.text(self.input);
                    let _ = writeln!(out, "{}{kind} {text:?}", "  ".repeat(depth + 1));
                }
            }
        }
    }
}

/// Handle to a string in a [`TokenInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The raw interner index (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A small per-tree string interner for token text. SQL scripts repeat
/// lexemes heavily — keywords by design, identifiers because schemas are
/// finite — so deduplicating lexemes turns the O(source bytes) cost of an
/// owning token representation into O(distinct lexeme bytes). Unique
/// strings live concatenated in one arena buffer (one allocation
/// amortized over the tree, not one per token); lookup is a hash map from
/// a deterministic FNV-1a hash to candidate symbols, verified by
/// comparison so collisions stay correct.
#[derive(Default, Debug, Clone)]
pub struct TokenInterner {
    /// Concatenated unique lexemes.
    buf: String,
    /// Symbol → byte span in `buf`.
    spans: Vec<(u32, u32)>,
    /// FNV-1a hash → symbols with that hash (almost always one).
    map: std::collections::HashMap<u64, Vec<Sym>>,
}

impl TokenInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Intern `s`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, s: &str) -> Sym {
        let h = Self::fnv1a(s);
        let candidates = self.map.entry(h).or_default();
        for &sym in candidates.iter() {
            let (lo, hi) = self.spans[sym.index()];
            if &self.buf[lo as usize..hi as usize] == s {
                return sym;
            }
        }
        let lo = self.buf.len() as u32;
        self.buf.push_str(s);
        let sym = Sym(self.spans.len() as u32);
        self.spans.push((lo, self.buf.len() as u32));
        candidates.push(sym);
        sym
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, sym: Sym) -> &str {
        let (lo, hi) = self.spans[sym.index()];
        &self.buf[lo as usize..hi as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of deduplicated string storage.
    pub fn bytes(&self) -> usize {
        self.buf.len()
    }
}

impl<'a> SyntaxTree<'a> {
    /// Intern every token's lexeme, returning one symbol per token (in
    /// token-stream order). The interner can be shared across trees to
    /// deduplicate lexemes corpus-wide; comparing the returned symbols is
    /// `u32` equality instead of string comparison, and
    /// `symbols.len() / interner.len()` is the dedupe factor the bench
    /// reports.
    pub fn intern_tokens(&self, interner: &mut TokenInterner) -> Vec<Sym> {
        self.toks
            .iter()
            .map(|t| interner.intern(t.text(self.input)))
            .collect()
    }
}

impl fmt::Debug for SyntaxTree<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyntaxTree")
            .field("rules", &self.nodes.len())
            .field("tokens", &self.toks.len())
            .finish_non_exhaustive()
    }
}

/// Cursor over one rule expansion of a [`SyntaxTree`].
#[derive(Clone, Copy)]
pub struct SyntaxNode<'a, 't> {
    tree: &'t SyntaxTree<'a>,
    id: u32,
}

/// Cursor over one token leaf of a [`SyntaxTree`].
#[derive(Clone, Copy)]
pub struct SyntaxToken<'a, 't> {
    tree: &'t SyntaxTree<'a>,
    index: u32,
}

/// A child of a node: rule expansion or token leaf.
#[derive(Clone, Copy)]
pub enum SyntaxElement<'a, 't> {
    /// A nested rule expansion.
    Node(SyntaxNode<'a, 't>),
    /// A token leaf.
    Token(SyntaxToken<'a, 't>),
}

impl<'a, 't> SyntaxElement<'a, 't> {
    /// Production name or token kind name.
    pub fn name(&self) -> &'a str {
        match self {
            SyntaxElement::Node(n) => n.name(),
            SyntaxElement::Token(t) => t.kind_name(),
        }
    }

    /// The nested node, if this element is one.
    pub fn as_node(&self) -> Option<SyntaxNode<'a, 't>> {
        match self {
            SyntaxElement::Node(n) => Some(*n),
            SyntaxElement::Token(_) => None,
        }
    }

    /// The token leaf, if this element is one.
    pub fn as_token(&self) -> Option<SyntaxToken<'a, 't>> {
        match self {
            SyntaxElement::Token(t) => Some(*t),
            SyntaxElement::Node(_) => None,
        }
    }
}

impl<'a, 't> SyntaxNode<'a, 't> {
    /// Production name.
    pub fn name(&self) -> &'a str {
        let node = &self.tree.nodes[self.id as usize];
        self.tree.parser.prod_name(self.tree.mode, node.prod)
    }

    /// Label of the alternative that matched, if any.
    pub fn label(&self) -> Option<&'a str> {
        let node = &self.tree.nodes[self.id as usize];
        self.tree.parser.alt_label(self.tree.mode, node.prod, node.alt)
    }

    /// Child elements in input order.
    pub fn children(&self) -> impl Iterator<Item = SyntaxElement<'a, 't>> + '_ {
        let node = &self.tree.nodes[self.id as usize];
        self.tree.elems[node.elems_start as usize..node.elems_end as usize]
            .iter()
            .map(|e| match *e {
                Element::Node(n) => SyntaxElement::Node(SyntaxNode { tree: self.tree, id: n }),
                Element::Token(t) => {
                    SyntaxElement::Token(SyntaxToken { tree: self.tree, index: t })
                }
            })
    }

    /// First child rule with the given production name.
    pub fn child(&self, name: &str) -> Option<SyntaxNode<'a, 't>> {
        self.children().find_map(|e| match e {
            SyntaxElement::Node(n) if n.name() == name => Some(n),
            _ => None,
        })
    }

    /// First token descendant of the given kind (pre-order).
    pub fn find_token(&self, kind: &str) -> Option<SyntaxToken<'a, 't>> {
        for e in self.children() {
            match e {
                SyntaxElement::Token(t) if t.kind_name() == kind => return Some(t),
                SyntaxElement::Token(_) => {}
                SyntaxElement::Node(n) => {
                    if let Some(t) = n.find_token(kind) {
                        return Some(t);
                    }
                }
            }
        }
        None
    }

    /// Byte span covered by this node, if it contains any tokens.
    pub fn span(&self) -> Option<(usize, usize)> {
        let node = &self.tree.nodes[self.id as usize];
        let elems = &self.tree.elems[node.elems_start as usize..node.elems_end as usize];
        let first = elems.iter().find_map(|e| self.elem_span(e))?;
        let last = elems.iter().rev().find_map(|e| self.elem_span(e))?;
        Some((first.0, last.1))
    }

    fn elem_span(&self, e: &Element) -> Option<(usize, usize)> {
        match *e {
            Element::Token(t) => {
                let tok = &self.tree.toks[t as usize];
                Some((tok.start, tok.end))
            }
            Element::Node(n) => SyntaxNode { tree: self.tree, id: n }.span(),
        }
    }
}

impl<'a, 't> SyntaxToken<'a, 't> {
    /// Token rule name (e.g. `SELECT`, `IDENT`).
    pub fn kind_name(&self) -> &'a str {
        self.tree.parser.scanner().name(self.tree.toks[self.index as usize].kind)
    }

    /// Index of this token in the scanned token stream.
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The lexeme, borrowed from the input.
    pub fn text(&self) -> &'a str {
        self.tree.toks[self.index as usize].text(self.tree.input)
    }

    /// Byte span in the original input.
    pub fn span(&self) -> (usize, usize) {
        let t = &self.tree.toks[self.index as usize];
        (t.start, t.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineMode;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT select_list FROM IDENT #select ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw;
            COMMA = ","; STAR = "*";
            IDENT = /[a-z][a-z0-9_]*/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn tree_navigation_matches_cst() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        let tree = s.parse_tree("SELECT a, b FROM t").unwrap();
        let root = tree.root();
        assert_eq!(root.name(), "query");
        assert_eq!(root.label(), Some("select"));
        let sl = root.child("select_list").unwrap();
        assert_eq!(sl.label(), Some("columns"));
        assert_eq!(sl.span(), Some((7, 11)));
        assert_eq!(root.find_token("FROM").unwrap().text(), "FROM");
        assert!(root.find_token("STAR").is_none());
        // token text is a span into the input, not a copy
        let a = sl.find_token("IDENT").unwrap();
        assert_eq!(a.text(), "a");
        assert!(std::ptr::eq(a.text(), &tree.input()[7..8]));
    }

    #[test]
    fn to_cst_matches_seed_shape() {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            let p = parser(mode);
            for input in ["SELECT a, b FROM t", "SELECT * FROM t"] {
                let mut s = p.session();
                let tree = s.parse_tree(input).unwrap();
                assert_eq!(tree.to_cst(), p.parse_reference(input).unwrap(), "{mode:?} {input:?}");
            }
        }
    }

    #[test]
    fn pretty_matches_cst_pretty() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        let tree = s.parse_tree("SELECT a, b FROM t").unwrap();
        assert_eq!(tree.pretty(), tree.to_cst().pretty());
    }

    #[test]
    fn node_count_matches_cst() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        let tree = s.parse_tree("SELECT a, b FROM t").unwrap();
        assert_eq!(tree.node_count(), tree.to_cst().node_count());
        assert_eq!(tree.rule_count(), 2);
    }

    #[test]
    fn interner_dedupes_and_resolves() {
        let mut i = TokenInterner::new();
        let a = i.intern("select");
        let b = i.intern("t1");
        let a2 = i.intern("select");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "select");
        assert_eq!(i.resolve(b), "t1");
        assert_eq!(i.len(), 2);
        assert_eq!(i.bytes(), "select".len() + "t1".len());
        assert!(!i.is_empty());
        assert!(TokenInterner::new().is_empty());
    }

    #[test]
    fn intern_tokens_is_parallel_to_the_token_stream() {
        let p = parser(EngineMode::Backtracking);
        let mut s = p.session();
        let tree = s.parse_tree("SELECT a, b, a FROM a").unwrap();
        let mut interner = TokenInterner::new();
        let syms = tree.intern_tokens(&mut interner);
        assert_eq!(syms.len(), tree.tokens().len());
        for (sym, tok) in syms.iter().zip(tree.tokens()) {
            assert_eq!(interner.resolve(*sym), tok.text(tree.input()));
        }
        // `a` appears three times but is stored once
        assert_eq!(syms.iter().filter(|&&s| interner.resolve(s) == "a").count(), 3);
        assert!(interner.len() < syms.len());
        // sharing the interner across trees keeps deduplicating
        let before = interner.len();
        let tree2 = s.parse_tree("SELECT b FROM a").unwrap();
        tree2.intern_tokens(&mut interner);
        assert_eq!(interner.len(), before);
    }

    #[test]
    fn build_chunked_matches_flattened_build() {
        use crate::events::ERROR_NODE;
        // chunk A: node(tok0 tok1), chunk B: bare tok2, chunk C: error(tok3 tok4)
        let a = [
            Event::Open { prod: 1, alt: 2 },
            Event::Token { index: 0 },
            Event::Token { index: 1 },
            Event::Close,
        ];
        let b = [Event::Token { index: 0 }];
        let c = [
            Event::Open { prod: ERROR_NODE, alt: 0 },
            Event::Token { index: 0 },
            Event::Token { index: 1 },
            Event::Close,
        ];
        let chunks: [(&[Event], u32); 3] = [(&a, 0), (&b, 2), (&c, 3)];
        let mut chunked = TreeBuffers::default();
        let croot = chunked.build_chunked((7, 0), chunks.into_iter());

        let mut flat_events = vec![Event::Open { prod: 7, alt: 0 }];
        for (events, base) in chunks {
            for ev in events {
                flat_events.push(match *ev {
                    Event::Token { index } => Event::Token { index: index + base },
                    other => other,
                });
            }
        }
        flat_events.push(Event::Close);
        let mut flat = TreeBuffers::default();
        let froot = flat.build(&flat_events);

        assert_eq!(croot, froot);
        assert_eq!(chunked.nodes.len(), flat.nodes.len());
        assert_eq!(chunked.elems.len(), flat.elems.len());
        for (cn, fn_) in chunked.nodes.iter().zip(&flat.nodes) {
            assert_eq!((cn.prod, cn.alt), (fn_.prod, fn_.alt));
            assert_eq!((cn.elems_start, cn.elems_end), (fn_.elems_start, fn_.elems_end));
        }
        for (ce, fe) in chunked.elems.iter().zip(&flat.elems) {
            match (ce, fe) {
                (Element::Node(x), Element::Node(y)) => assert_eq!(x, y),
                (Element::Token(x), Element::Token(y)) => assert_eq!(x, y),
                _ => panic!("element kind diverged"),
            }
        }
    }

    #[test]
    fn builder_roundtrips_nested_events() {
        let events = [
            Event::Open { prod: 0, alt: 0 },
            Event::Token { index: 0 },
            Event::Open { prod: 1, alt: 1 },
            Event::Token { index: 1 },
            Event::Token { index: 2 },
            Event::Close,
            Event::Token { index: 3 },
            Event::Close,
        ];
        let mut buf = TreeBuffers::default();
        let root = buf.build(&events);
        let rd = &buf.nodes[root as usize];
        assert_eq!((rd.elems_start, rd.elems_end), (2, 5));
        let kids = &buf.elems[rd.elems_start as usize..rd.elems_end as usize];
        assert!(matches!(kids[0], Element::Token(0)));
        assert!(matches!(kids[1], Element::Node(1)));
        assert!(matches!(kids[2], Element::Token(3)));
        let inner = &buf.nodes[1];
        let ikids = &buf.elems[inner.elems_start as usize..inner.elems_end as usize];
        assert!(matches!(ikids, [Element::Token(1), Element::Token(2)]));
    }
}

//! Flat parse-event streams — the wire format of the green-tree core.
//!
//! Instead of constructing tree nodes while parsing, both engines append
//! [`Event`]s to one contiguous buffer. The stream is a pre-order encoding
//! of the concrete syntax tree:
//!
//! * [`Event::Open`] — a nonterminal expansion begins (which production,
//!   which alternative matched);
//! * [`Event::Token`] — the next token of the scan was consumed (by index
//!   into the token stream, so the lexeme stays a span into the input);
//! * [`Event::Close`] — the most recently opened expansion ends.
//!
//! The payoff is in the backtracking engine: abandoning a speculative
//! alternative is a single `Vec::truncate` of the event buffer instead of
//! dropping a speculatively built subtree node by node. A well-formed
//! stream (every `Open` closed, produced only for successful parses) is
//! materialized into a [`crate::tree::SyntaxTree`] by a separate builder.
//!
//! Production and alternative ids are indices into the *compiled* grammar
//! tables of the engine that emitted the stream ([`crate::engine::Parser`]
//! resolves them back to names), so events are `Copy` and carry no heap
//! data at all.

/// Sentinel `prod` id marking an *error node* in a resilient event
/// stream: a node holding the tokens panic-mode recovery skipped, so the
/// tree still covers every scanned token. Error nodes are ordinary
/// `Open { prod: ERROR_NODE, alt: 0 } … Token … Close` triples — the tree
/// builder needs no special handling, and name resolution maps the
/// sentinel to `"error"` with no alternative label. Strict parses never
/// emit it.
pub const ERROR_NODE: u32 = u32::MAX;

/// One event of a flat pre-order parse stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A nonterminal expansion begins: compiled production `prod` matched
    /// via alternative `alt`.
    Open {
        /// Compiled production id (engine-mode specific table index).
        prod: u32,
        /// Index of the matched alternative within the production.
        alt: u32,
    },
    /// The token at `index` in the scanned token stream was consumed.
    Token {
        /// Index into the token stream of this parse.
        index: u32,
    },
    /// The most recently opened expansion ends.
    Close,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The whole point: an event is a tagged pair of u32s, not a node.
        assert!(std::mem::size_of::<Event>() <= 12);
        let e = Event::Open { prod: 3, alt: 1 };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn truncation_drops_a_speculative_suffix() {
        let mut buf = vec![Event::Open { prod: 0, alt: 0 }, Event::Token { index: 0 }];
        let mark = buf.len();
        buf.push(Event::Open { prod: 1, alt: 0 });
        buf.push(Event::Token { index: 1 });
        // the speculative alternative failed:
        buf.truncate(mark);
        assert_eq!(
            buf,
            vec![Event::Open { prod: 0, alt: 0 }, Event::Token { index: 0 }]
        );
    }
}

//! Flat parse-event streams — the wire format of the green-tree core.
//!
//! Instead of constructing tree nodes while parsing, both engines append
//! [`Event`]s to one contiguous buffer. The stream is a pre-order encoding
//! of the concrete syntax tree:
//!
//! * [`Event::Open`] — a nonterminal expansion begins (which production,
//!   which alternative matched);
//! * [`Event::Token`] — the next token of the scan was consumed (by index
//!   into the token stream, so the lexeme stays a span into the input);
//! * [`Event::Close`] — the most recently opened expansion ends.
//!
//! The payoff is in the backtracking engine: abandoning a speculative
//! alternative is a single `Vec::truncate` of the event buffer instead of
//! dropping a speculatively built subtree node by node. A well-formed
//! stream (every `Open` closed, produced only for successful parses) is
//! materialized into a [`crate::tree::SyntaxTree`] by a separate builder.
//!
//! Production and alternative ids are indices into the *compiled* grammar
//! tables of the engine that emitted the stream ([`crate::engine::Parser`]
//! resolves them back to names), so events are `Copy` and carry no heap
//! data at all.

/// Sentinel `prod` id marking an *error node* in a resilient event
/// stream: a node holding the tokens panic-mode recovery skipped, so the
/// tree still covers every scanned token. Error nodes are ordinary
/// `Open { prod: ERROR_NODE, alt: 0 } … Token … Close` triples — the tree
/// builder needs no special handling, and name resolution maps the
/// sentinel to `"error"` with no alternative label. Strict parses never
/// emit it.
pub const ERROR_NODE: u32 = u32::MAX;

/// What one depth-1 element of an assembled resilient stream is: a
/// successfully parsed subtree, an error node, or a bare token (statement
/// separators spliced directly under the root). The incremental reparser
/// plans its damage window in these units — statements are the granularity
/// at which the top-level repetition makes parses suffix-determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ElemKind {
    /// A successfully parsed production subtree.
    Clean,
    /// A recovery error node ([`ERROR_NODE`]).
    Err,
    /// A token spliced directly under the root.
    Tok,
}

/// One depth-1 element of a root-wrapped event stream: its event range
/// (within the stream, root wrapper excluded) and its token range.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TopElem {
    pub(crate) kind: ElemKind,
    /// Event range `ev_lo..ev_hi` of this element in the stream.
    pub(crate) ev_lo: usize,
    pub(crate) ev_hi: usize,
    /// Token range `tok_lo..tok_hi` covered by this element. Tokens appear
    /// in stream order exactly once, so ranges partition the token stream.
    pub(crate) tok_lo: usize,
    pub(crate) tok_hi: usize,
}

/// Scan a root-wrapped stream (`events[0]` opens the root, the last event
/// closes it) into its depth-1 elements. Returns `None` if the stream is
/// not of that shape, or if token indices are not strictly increasing in
/// stream order (both would invalidate window planning).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn top_level_elements(events: &[Event]) -> Option<Vec<TopElem>> {
    if events.len() < 2
        || !matches!(events[0], Event::Open { .. })
        || !matches!(events[events.len() - 1], Event::Close)
    {
        return None;
    }
    let mut elems = split_elements(&events[1..events.len() - 1], 0)?;
    for e in &mut elems {
        e.ev_lo += 1;
        e.ev_hi += 1;
    }
    Some(elems)
}

/// Scan an *unwrapped* stream (a sequence of balanced depth-0 subtrees and
/// bare tokens, no surrounding root — the shape a resilient drive appends
/// to the session's `revents` buffer) into its elements. Token indices
/// must run exactly sequentially from `first_tok`; event ranges are
/// indices into `events` directly. Returns `None` for unbalanced streams
/// or out-of-sequence token indices.
pub(crate) fn split_elements(events: &[Event], first_tok: usize) -> Option<Vec<TopElem>> {
    let mut elems = Vec::new();
    let mut depth = 0usize;
    let mut next_tok = first_tok;
    let mut open: Option<(usize, usize)> = None; // (ev_lo, tok_lo) of the open depth-1 node
    let mut open_kind = ElemKind::Clean;
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            Event::Open { prod, .. } => {
                if depth == 0 {
                    open = Some((i, next_tok));
                    open_kind = if prod == ERROR_NODE { ElemKind::Err } else { ElemKind::Clean };
                }
                depth += 1;
            }
            Event::Token { index } => {
                if index as usize != next_tok {
                    return None;
                }
                next_tok += 1;
                if depth == 0 {
                    elems.push(TopElem {
                        kind: ElemKind::Tok,
                        ev_lo: i,
                        ev_hi: i + 1,
                        tok_lo: next_tok - 1,
                        tok_hi: next_tok,
                    });
                }
            }
            Event::Close => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    let (ev_lo, tok_lo) = open.take()?;
                    elems.push(TopElem {
                        kind: open_kind,
                        ev_lo,
                        ev_hi: i + 1,
                        tok_lo,
                        tok_hi: next_tok,
                    });
                }
            }
        }
    }
    if depth != 0 {
        return None;
    }
    Some(elems)
}

/// One event of a flat pre-order parse stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A nonterminal expansion begins: compiled production `prod` matched
    /// via alternative `alt`.
    Open {
        /// Compiled production id (engine-mode specific table index).
        prod: u32,
        /// Index of the matched alternative within the production.
        alt: u32,
    },
    /// The token at `index` in the scanned token stream was consumed.
    Token {
        /// Index into the token stream of this parse.
        index: u32,
    },
    /// The most recently opened expansion ends.
    Close,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The whole point: an event is a tagged pair of u32s, not a node.
        assert!(std::mem::size_of::<Event>() <= 12);
        let e = Event::Open { prod: 3, alt: 1 };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn top_level_elements_partition_stream_and_tokens() {
        // root( node(tok0 tok1) tok2 error(tok3) )
        let events = [
            Event::Open { prod: 7, alt: 0 },
            Event::Open { prod: 1, alt: 2 },
            Event::Token { index: 0 },
            Event::Token { index: 1 },
            Event::Close,
            Event::Token { index: 2 },
            Event::Open { prod: ERROR_NODE, alt: 0 },
            Event::Token { index: 3 },
            Event::Close,
            Event::Close,
        ];
        let elems = top_level_elements(&events).unwrap();
        assert_eq!(elems.len(), 3);
        assert_eq!(elems[0].kind, ElemKind::Clean);
        assert_eq!((elems[0].ev_lo, elems[0].ev_hi), (1, 5));
        assert_eq!((elems[0].tok_lo, elems[0].tok_hi), (0, 2));
        assert_eq!(elems[1].kind, ElemKind::Tok);
        assert_eq!((elems[1].tok_lo, elems[1].tok_hi), (2, 3));
        assert_eq!(elems[2].kind, ElemKind::Err);
        assert_eq!((elems[2].ev_lo, elems[2].ev_hi), (6, 9));
        assert_eq!((elems[2].tok_lo, elems[2].tok_hi), (3, 4));
        // malformed shapes are rejected, not misparsed
        assert!(top_level_elements(&events[1..]).is_none());
        let skipped = [
            Event::Open { prod: 0, alt: 0 },
            Event::Token { index: 1 }, // token 0 missing
            Event::Close,
        ];
        assert!(top_level_elements(&skipped).is_none());
    }

    #[test]
    fn split_elements_accepts_unwrapped_streams_at_any_token_base() {
        // node(tok5 tok6) tok7 error(tok8) — a window drive's raw output
        let events = [
            Event::Open { prod: 1, alt: 0 },
            Event::Token { index: 5 },
            Event::Token { index: 6 },
            Event::Close,
            Event::Token { index: 7 },
            Event::Open { prod: ERROR_NODE, alt: 0 },
            Event::Token { index: 8 },
            Event::Close,
        ];
        let elems = split_elements(&events, 5).unwrap();
        assert_eq!(elems.len(), 3);
        assert_eq!(elems[0].kind, ElemKind::Clean);
        assert_eq!((elems[0].ev_lo, elems[0].ev_hi), (0, 4));
        assert_eq!((elems[0].tok_lo, elems[0].tok_hi), (5, 7));
        assert_eq!(elems[1].kind, ElemKind::Tok);
        assert_eq!(elems[2].kind, ElemKind::Err);
        assert_eq!((elems[2].tok_lo, elems[2].tok_hi), (8, 9));
        // wrong base → out-of-sequence token indices → rejected
        assert!(split_elements(&events, 0).is_none());
        // unbalanced stream → rejected
        assert!(split_elements(&events[..3], 5).is_none());
    }

    #[test]
    fn truncation_drops_a_speculative_suffix() {
        let mut buf = vec![Event::Open { prod: 0, alt: 0 }, Event::Token { index: 0 }];
        let mark = buf.len();
        buf.push(Event::Open { prod: 1, alt: 0 });
        buf.push(Event::Token { index: 1 });
        // the speculative alternative failed:
        buf.truncate(mark);
        assert_eq!(
            buf,
            vec![Event::Open { prod: 0, alt: 0 }, Event::Token { index: 0 }]
        );
    }
}

//! The two parse engines: FIRST-pruned backtracking recursive descent over
//! the EBNF IR, and table-driven LL(1) over the flattened BNF.
//!
//! Both engines run on *compiled* grammar forms built once at
//! [`Parser::new`]: token kinds are interned to dense ids (the scanner's
//! rule indices), FIRST sets become bitsets, nonterminal references become
//! vector indices, and the LL(1) prediction table becomes a dense
//! per-production row. The hot path performs no string comparisons and no
//! hashing.

use crate::cst::CstNode;
use crate::errors::ParseError;
use sqlweave_grammar::analysis::{analyze, AnalysisError, GrammarAnalysis, EOF};
use sqlweave_grammar::ir::{Grammar, Term};
use sqlweave_grammar::lower::is_synthetic;
use sqlweave_lexgen::scanner::line_col;
use sqlweave_lexgen::tokenset::{TokenSet, TokenSetError};
use sqlweave_lexgen::{Scanner, Token};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Which algorithm [`Parser::parse`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Recursive-descent interpretation of the EBNF grammar with FIRST-set
    /// pruning and ordered backtracking across alternatives. Handles any
    /// composed grammar (PEG-style disambiguation on non-LL(1) spots).
    #[default]
    Backtracking,
    /// Table-driven predictive parsing over the flattened grammar. Fastest,
    /// but decisions follow the LL(1) table; reported conflicts resolve to
    /// the first-declared alternative.
    Ll1Table,
}

/// Errors building a [`Parser`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Grammar analysis failed (undefined symbols).
    Analysis(AnalysisError),
    /// Token-set compilation failed.
    Tokens(TokenSetError),
    /// The grammar references tokens absent from the token set.
    MissingTokens(Vec<String>),
    /// The grammar is left-recursive (fatal for LL parsing).
    LeftRecursive(Vec<Vec<String>>),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Analysis(e) => write!(f, "{e}"),
            BuildError::Tokens(e) => write!(f, "{e}"),
            BuildError::MissingTokens(v) => {
                write!(f, "grammar references tokens not in the token set: {}", v.join(", "))
            }
            BuildError::LeftRecursive(cycles) => {
                write!(f, "grammar is left-recursive: ")?;
                for (i, c) in cycles.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", c.join(" -> "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Static size metrics of a built parser (Experiment B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserStats {
    /// Productions in the (EBNF) grammar.
    pub productions: usize,
    /// Alternatives across all productions.
    pub alternatives: usize,
    /// Productions after flattening.
    pub flat_productions: usize,
    /// Populated LL(1) table cells.
    pub table_cells: usize,
    /// LL(1) conflicts (resolved by declaration order).
    pub conflicts: usize,
    /// Token rules in the scanner.
    pub token_rules: usize,
    /// States in the minimized lexer DFA.
    pub dfa_states: usize,
}

// ---------------------------------------------------------------- bitsets

/// Dense bitset over interned token ids.
#[derive(Debug, Clone, Default)]
struct TokBits {
    words: Box<[u64]>,
}

impl TokBits {
    fn new(n_tokens: usize) -> TokBits {
        TokBits {
            words: vec![0u64; n_tokens.div_ceil(64)].into_boxed_slice(),
        }
    }

    #[inline]
    fn insert(&mut self, id: u32) {
        self.words[(id / 64) as usize] |= 1 << (id % 64);
    }

    #[inline]
    fn contains(&self, id: u32) -> bool {
        (self.words[(id / 64) as usize] >> (id % 64)) & 1 == 1
    }

    fn union_with(&mut self, other: &TokBits) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    fn iter_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if (w >> b) & 1 == 1 {
                    Some(wi as u32 * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

// ------------------------------------------------------- compiled grammars

/// Compiled EBNF term for the backtracking engine.
enum CTerm {
    Tok(u32),
    Nt(u32),
    Opt { body: Vec<CTerm>, first: TokBits },
    Star { body: Vec<CTerm>, first: TokBits },
    Plus { body: Vec<CTerm>, first: TokBits },
    Group(Vec<CGroupAlt>),
}

struct CGroupAlt {
    seq: Vec<CTerm>,
    first: TokBits,
    nullable: bool,
}

struct CAlt {
    seq: Vec<CTerm>,
    first: TokBits,
    nullable: bool,
    label: Option<String>,
}

struct CProd {
    name: String,
    alts: Vec<CAlt>,
}

/// Compiled flat term for the LL(1) engine.
enum FTerm {
    Tok(u32),
    Nt { idx: u32, synthetic: bool },
}

struct FAlt {
    seq: Vec<FTerm>,
    label: Option<String>,
}

const NO_ALT: u16 = u16::MAX;

struct FProd {
    name: String,
    alts: Vec<FAlt>,
    /// Dense prediction row: token id → alternative index (or [`NO_ALT`]).
    row: Box<[u16]>,
    /// Alternative predicted at end of input.
    eof_alt: u16,
    /// Tokens with a prediction (for error messages).
    expected: TokBits,
}

/// A ready-to-use parser for one composed grammar.
pub struct Parser {
    grammar: Grammar,
    analysis: GrammarAnalysis,
    scanner: Scanner,
    mode: EngineMode,
    n_tokens: usize,
    cprods: Vec<CProd>,
    cstart: u32,
    fprods: Vec<FProd>,
    fstart: u32,
}

impl fmt::Debug for Parser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parser")
            .field("grammar", &self.grammar.name())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl Parser {
    /// Build a parser from a closed grammar and its token set.
    pub fn new(grammar: Grammar, tokens: &TokenSet) -> Result<Parser, BuildError> {
        let missing: Vec<String> = grammar
            .referenced_tokens()
            .into_iter()
            .filter(|t| tokens.get(t).is_none())
            .map(str::to_string)
            .collect();
        if !missing.is_empty() {
            return Err(BuildError::MissingTokens(missing));
        }
        let analysis = analyze(&grammar).map_err(BuildError::Analysis)?;
        if !analysis.left_recursion.is_empty() {
            return Err(BuildError::LeftRecursive(analysis.left_recursion.clone()));
        }
        let scanner = tokens.build().map_err(BuildError::Tokens)?;
        let n_tokens = scanner.rule_count();

        let compiler = Compiler {
            analysis: &analysis,
            scanner: &scanner,
            n_tokens,
        };
        let (cprods, cstart) = compiler.compile_ebnf(&grammar);
        let (fprods, fstart) = compiler.compile_flat();

        Ok(Parser {
            grammar,
            analysis,
            scanner,
            mode: EngineMode::default(),
            n_tokens,
            cprods,
            cstart,
            fprods,
            fstart,
        })
    }

    /// Select the engine mode (builder style).
    pub fn with_mode(mut self, mode: EngineMode) -> Parser {
        self.mode = mode;
        self
    }

    /// Current engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The (EBNF) grammar this parser accepts.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Analysis results (FIRST/FOLLOW, table, conflicts).
    pub fn analysis(&self) -> &GrammarAnalysis {
        &self.analysis
    }

    /// The compiled scanner.
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Size metrics.
    pub fn stats(&self) -> ParserStats {
        ParserStats {
            productions: self.grammar.productions().len(),
            alternatives: self.grammar.alternative_count(),
            flat_productions: self.analysis.flat.productions().len(),
            table_cells: self.analysis.table_cells(),
            conflicts: self.analysis.conflicts.len(),
            token_rules: self.scanner.rule_count(),
            dfa_states: self.scanner.dfa_states(),
        }
    }

    /// Parse `input` to a CST, or produce the farthest-failure error.
    pub fn parse(&self, input: &str) -> Result<CstNode, ParseError> {
        let toks = self.scanner.scan(input).map_err(|e| ParseError {
            at: e.at,
            line: e.line,
            column: e.column,
            expected: BTreeSet::new(),
            found: e.found.map(|c| ("CHAR".to_string(), c.to_string())),
            lexical: Some(e.to_string()),
        })?;
        let kind_ids: Vec<u32> = toks.iter().map(|t| t.kind.0).collect();
        let mut ctx = Ctx {
            toks: &toks,
            kind_ids,
            input,
            scanner: &self.scanner,
            farthest: 0,
            expected: TokBits::new(self.n_tokens),
            expected_eof: false,
        };
        let result = match self.mode {
            EngineMode::Backtracking => self.bt_nt(&mut ctx, self.cstart, 0),
            EngineMode::Ll1Table => self.ll1_nt(&mut ctx, self.fstart, 0),
        };
        match result {
            Ok((node, next)) if next == toks.len() => Ok(node),
            Ok((_, next)) => {
                ctx.note_eof(next);
                Err(self.error_from(&ctx))
            }
            Err(()) => Err(self.error_from(&ctx)),
        }
    }

    fn error_from(&self, ctx: &Ctx<'_>) -> ParseError {
        let (at, found) = match ctx.toks.get(ctx.farthest) {
            Some(t) => (
                t.start,
                Some((
                    self.scanner.name(t.kind).to_string(),
                    t.text(ctx.input).to_string(),
                )),
            ),
            None => (ctx.input.len(), None),
        };
        let (line, column) = line_col(ctx.input, at);
        let mut expected: BTreeSet<String> = ctx
            .expected
            .iter_ids()
            .map(|id| {
                self.scanner
                    .name(sqlweave_lexgen::TokenKind(id))
                    .to_string()
            })
            .collect();
        if ctx.expected_eof {
            expected.insert(EOF.to_string());
        }
        ParseError {
            at,
            line,
            column,
            expected,
            found,
            lexical: None,
        }
    }

    // ---------- backtracking engine ----------

    fn bt_nt(&self, ctx: &mut Ctx<'_>, prod: u32, pos: usize) -> Result<(CstNode, usize), ()> {
        let prod = &self.cprods[prod as usize];
        let la = ctx.kind_ids.get(pos).copied();
        for alt in &prod.alts {
            if !alt.nullable {
                match la {
                    Some(k) if alt.first.contains(k) => {}
                    _ => {
                        ctx.note_set(pos, &alt.first);
                        continue;
                    }
                }
            }
            let mut children = Vec::new();
            if let Ok(next) = self.bt_seq(ctx, &alt.seq, pos, &mut children) {
                return Ok((
                    CstNode::rule(&prod.name, alt.label.clone(), children),
                    next,
                ));
            }
        }
        Err(())
    }

    fn bt_seq(
        &self,
        ctx: &mut Ctx<'_>,
        seq: &[CTerm],
        mut pos: usize,
        children: &mut Vec<CstNode>,
    ) -> Result<usize, ()> {
        for term in seq {
            pos = self.bt_term(ctx, term, pos, children)?;
        }
        Ok(pos)
    }

    /// Greedy repetition shared by `Star` and the tail of `Plus`.
    fn bt_repeat(
        &self,
        ctx: &mut Ctx<'_>,
        body: &[CTerm],
        first: &TokBits,
        mut pos: usize,
        children: &mut Vec<CstNode>,
    ) -> usize {
        loop {
            match ctx.kind_ids.get(pos) {
                Some(&k) if first.contains(k) => {
                    let mark = children.len();
                    match self.bt_seq(ctx, body, pos, children) {
                        Ok(next) if next > pos => pos = next,
                        _ => {
                            children.truncate(mark);
                            break;
                        }
                    }
                }
                _ => {
                    ctx.note_set(pos, first);
                    break;
                }
            }
        }
        pos
    }

    fn bt_term(
        &self,
        ctx: &mut Ctx<'_>,
        term: &CTerm,
        pos: usize,
        children: &mut Vec<CstNode>,
    ) -> Result<usize, ()> {
        match term {
            CTerm::Tok(kind) => match ctx.kind_ids.get(pos) {
                Some(k) if k == kind => {
                    children.push(ctx.token_node(pos));
                    Ok(pos + 1)
                }
                _ => {
                    ctx.note_id(pos, *kind);
                    Err(())
                }
            },
            CTerm::Nt(n) => {
                let (node, next) = self.bt_nt(ctx, *n, pos)?;
                children.push(node);
                Ok(next)
            }
            CTerm::Opt { body, first } => {
                if matches!(ctx.kind_ids.get(pos), Some(&k) if first.contains(k)) {
                    let mark = children.len();
                    match self.bt_seq(ctx, body, pos, children) {
                        Ok(next) => return Ok(next),
                        Err(()) => children.truncate(mark),
                    }
                } else {
                    // Not taken: still informative for error messages.
                    ctx.note_set(pos, first);
                }
                Ok(pos)
            }
            CTerm::Star { body, first } => Ok(self.bt_repeat(ctx, body, first, pos, children)),
            CTerm::Plus { body, first } => {
                let next = self.bt_seq(ctx, body, pos, children)?;
                Ok(self.bt_repeat(ctx, body, first, next, children))
            }
            CTerm::Group(alts) => {
                let la = ctx.kind_ids.get(pos).copied();
                for alt in alts {
                    if !alt.nullable {
                        match la {
                            Some(k) if alt.first.contains(k) => {}
                            _ => {
                                ctx.note_set(pos, &alt.first);
                                continue;
                            }
                        }
                    }
                    let mark = children.len();
                    match self.bt_seq(ctx, &alt.seq, pos, children) {
                        Ok(next) => return Ok(next),
                        Err(()) => children.truncate(mark),
                    }
                }
                Err(())
            }
        }
    }

    // ---------- LL(1) table engine ----------

    fn ll1_nt(&self, ctx: &mut Ctx<'_>, prod: u32, pos: usize) -> Result<(CstNode, usize), ()> {
        let name = self.fprods[prod as usize].name.clone();
        let (children, next, label) = self.ll1_expand(ctx, prod, pos)?;
        Ok((CstNode::rule(&name, label, children), next))
    }

    /// Expand one flat nonterminal, returning its children (used both for
    /// real rules and for splicing synthetic ones).
    fn ll1_expand(
        &self,
        ctx: &mut Ctx<'_>,
        prod: u32,
        mut pos: usize,
    ) -> Result<(Vec<CstNode>, usize, Option<String>), ()> {
        let fprod = &self.fprods[prod as usize];
        let alt_index = match ctx.kind_ids.get(pos) {
            Some(&k) => fprod.row[k as usize],
            None => fprod.eof_alt,
        };
        if alt_index == NO_ALT {
            ctx.note_set(pos, &fprod.expected);
            return Err(());
        }
        let alt = &fprod.alts[alt_index as usize];
        let mut children = Vec::new();
        for term in &alt.seq {
            match term {
                FTerm::Tok(kind) => match ctx.kind_ids.get(pos) {
                    Some(k) if k == kind => {
                        children.push(ctx.token_node(pos));
                        pos += 1;
                    }
                    _ => {
                        ctx.note_id(pos, *kind);
                        return Err(());
                    }
                },
                FTerm::Nt { idx, synthetic } => {
                    if *synthetic {
                        let (spliced, next, _) = self.ll1_expand(ctx, *idx, pos)?;
                        children.extend(spliced);
                        pos = next;
                    } else {
                        let (node, next) = self.ll1_nt(ctx, *idx, pos)?;
                        children.push(node);
                        pos = next;
                    }
                }
            }
        }
        Ok((children, pos, alt.label.clone()))
    }
}

// ---------------------------------------------------------------- compiler

struct Compiler<'a> {
    analysis: &'a GrammarAnalysis,
    scanner: &'a Scanner,
    n_tokens: usize,
}

impl Compiler<'_> {
    fn tok_id(&self, name: &str) -> u32 {
        self.scanner
            .kind_of(name)
            .expect("token presence checked before compilation")
            .0
    }

    fn bits_of(&self, names: &BTreeSet<String>) -> TokBits {
        let mut bits = TokBits::new(self.n_tokens);
        for n in names {
            if n != EOF {
                bits.insert(self.tok_id(n));
            }
        }
        bits
    }

    fn first_bits(&self, seq: &[Term]) -> (TokBits, bool) {
        let (names, nullable) = self.analysis.first_of_seq(seq);
        (self.bits_of(&names), nullable)
    }

    fn compile_ebnf(&self, grammar: &Grammar) -> (Vec<CProd>, u32) {
        let index: HashMap<&str, u32> = grammar
            .productions()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i as u32))
            .collect();
        let prods = grammar
            .productions()
            .iter()
            .map(|p| CProd {
                name: p.name.clone(),
                alts: p
                    .alternatives
                    .iter()
                    .map(|alt| {
                        let (first, nullable) = self.first_bits(&alt.seq);
                        CAlt {
                            seq: self.compile_seq(&alt.seq, &index),
                            first,
                            nullable,
                            label: alt.label.clone(),
                        }
                    })
                    .collect(),
            })
            .collect();
        (prods, index[grammar.start()])
    }

    fn compile_seq(&self, seq: &[Term], index: &HashMap<&str, u32>) -> Vec<CTerm> {
        seq.iter()
            .map(|term| match term {
                Term::Token(t) => CTerm::Tok(self.tok_id(t)),
                Term::NonTerminal(n) => CTerm::Nt(index[n.as_str()]),
                Term::Optional(body) => CTerm::Opt {
                    first: self.first_bits(body).0,
                    body: self.compile_seq(body, index),
                },
                Term::Star(body) => CTerm::Star {
                    first: self.first_bits(body).0,
                    body: self.compile_seq(body, index),
                },
                Term::Plus(body) => CTerm::Plus {
                    first: self.first_bits(body).0,
                    body: self.compile_seq(body, index),
                },
                Term::Group(alts) => CTerm::Group(
                    alts.iter()
                        .map(|a| {
                            let (first, nullable) = self.first_bits(a);
                            CGroupAlt {
                                seq: self.compile_seq(a, index),
                                first,
                                nullable,
                            }
                        })
                        .collect(),
                ),
            })
            .collect()
    }

    fn compile_flat(&self) -> (Vec<FProd>, u32) {
        let flat = &self.analysis.flat;
        let index: HashMap<&str, u32> = flat
            .productions()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i as u32))
            .collect();
        let mut prods: Vec<FProd> = flat
            .productions()
            .iter()
            .map(|p| FProd {
                name: p.name.clone(),
                alts: p
                    .alternatives
                    .iter()
                    .map(|alt| FAlt {
                        label: alt.label.clone(),
                        seq: alt
                            .seq
                            .iter()
                            .map(|t| match t {
                                Term::Token(t) => FTerm::Tok(self.tok_id(t)),
                                Term::NonTerminal(n) => FTerm::Nt {
                                    idx: index[n.as_str()],
                                    synthetic: is_synthetic(n),
                                },
                                _ => unreachable!("flattened grammar has no nested terms"),
                            })
                            .collect(),
                    })
                    .collect(),
                row: vec![NO_ALT; self.n_tokens].into_boxed_slice(),
                eof_alt: NO_ALT,
                expected: TokBits::new(self.n_tokens),
            })
            .collect();
        for ((nt, tok), &alt) in &self.analysis.table {
            let pi = index[nt.as_str()] as usize;
            if tok == EOF {
                prods[pi].eof_alt = alt as u16;
            } else {
                let id = self.tok_id(tok);
                prods[pi].row[id as usize] = alt as u16;
                prods[pi].expected.insert(id);
            }
        }
        (prods, index[flat.start()])
    }
}

/// Shared parse context: token stream plus farthest-failure tracking.
struct Ctx<'a> {
    toks: &'a [Token],
    kind_ids: Vec<u32>,
    input: &'a str,
    scanner: &'a Scanner,
    farthest: usize,
    expected: TokBits,
    expected_eof: bool,
}

impl Ctx<'_> {
    /// `true` if `pos` becomes (or ties) the farthest failure point.
    #[inline]
    fn advance_farthest(&mut self, pos: usize) -> bool {
        use std::cmp::Ordering;
        match pos.cmp(&self.farthest) {
            Ordering::Greater => {
                self.farthest = pos;
                self.expected.clear();
                self.expected_eof = false;
                true
            }
            Ordering::Equal => true,
            Ordering::Less => false,
        }
    }

    fn note_id(&mut self, pos: usize, expected: u32) {
        if self.advance_farthest(pos) {
            self.expected.insert(expected);
        }
    }

    fn note_set(&mut self, pos: usize, expected: &TokBits) {
        if self.advance_farthest(pos) {
            self.expected.union_with(expected);
        }
    }

    fn note_eof(&mut self, pos: usize) {
        if self.advance_farthest(pos) {
            self.expected_eof = true;
        }
    }

    fn token_node(&self, pos: usize) -> CstNode {
        let t = &self.toks[pos];
        CstNode::Token {
            kind: self.scanner.name(t.kind).to_string(),
            text: t.text(self.input).to_string(),
            start: t.start,
            end: t.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn select_parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT quant? select_list FROM IDENT where_clause? #select ;
            quant : DISTINCT #distinct | ALL #all ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ value ;
            value : IDENT | NUMBER ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; WHERE = kw; DISTINCT = kw; ALL = kw;
            COMMA = ","; STAR = "*"; EQ = "=";
            IDENT = /[a-z][a-z0-9_]*/;
            NUMBER = /[0-9]+/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn backtracking_accepts_and_shapes() {
        let p = select_parser(EngineMode::Backtracking);
        let cst = p.parse("SELECT a, b FROM t WHERE a = 1").unwrap();
        assert_eq!(cst.name(), "query");
        assert_eq!(cst.label(), Some("select"));
        let sl = cst.child("select_list").unwrap();
        assert_eq!(sl.label(), Some("columns"));
        assert_eq!(sl.children_named("IDENT").count(), 2);
        assert!(cst.child("where_clause").is_some());
    }

    #[test]
    fn ll1_table_accepts_same_inputs() {
        let p = select_parser(EngineMode::Ll1Table);
        assert!(p.parse("SELECT * FROM t").is_ok());
        assert!(p.parse("SELECT DISTINCT a FROM t").is_ok());
        assert!(p.parse("SELECT a, b, c FROM t WHERE x = y").is_ok());
    }

    #[test]
    fn engines_produce_identical_csts() {
        let bt = select_parser(EngineMode::Backtracking);
        let ll = select_parser(EngineMode::Ll1Table);
        for input in [
            "SELECT a FROM t",
            "SELECT * FROM t",
            "SELECT ALL a, b FROM t WHERE a = 9",
            "SELECT DISTINCT x FROM y WHERE q = r",
        ] {
            assert_eq!(
                bt.parse(input).unwrap(),
                ll.parse(input).unwrap(),
                "CSTs differ on {input:?}"
            );
        }
    }

    #[test]
    fn rejects_with_expected_set() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a b FROM t").unwrap_err();
        assert_eq!(err.found.as_ref().unwrap().1, "b");
        assert!(
            err.expected.contains("FROM") && err.expected.contains("COMMA"),
            "expected: {:?}",
            err.expected
        );
    }

    #[test]
    fn ll1_rejects_with_expected_set() {
        let p = select_parser(EngineMode::Ll1Table);
        let err = p.parse("SELECT FROM t").unwrap_err();
        assert!(
            err.expected.contains("IDENT") || err.expected.contains("STAR"),
            "expected: {:?}",
            err.expected
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a FROM t t2").unwrap_err();
        assert_eq!(err.found.as_ref().unwrap().1, "t2");
    }

    #[test]
    fn eof_error() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a FROM").unwrap_err();
        assert!(err.found.is_none());
        assert!(err.expected.contains("IDENT"));
    }

    #[test]
    fn lexical_error_propagated() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a FROM t WHERE a = #").unwrap_err();
        assert!(err.lexical.is_some());
    }

    #[test]
    fn missing_token_detected_at_build() {
        let g = parse_grammar("grammar g; a : GHOST ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(
            Parser::new(g, &t),
            Err(BuildError::MissingTokens(v)) if v == ["GHOST"]
        ));
    }

    #[test]
    fn left_recursion_detected_at_build() {
        let g = parse_grammar("grammar g; a : a X | X ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(Parser::new(g, &t), Err(BuildError::LeftRecursive(_))));
    }

    #[test]
    fn undefined_nonterminal_detected_at_build() {
        let g = parse_grammar("grammar g; a : missing ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(Parser::new(g, &t), Err(BuildError::Analysis(_))));
    }

    #[test]
    fn backtracking_resolves_non_ll1_alternatives() {
        // Common prefix: LL(1) conflict, but ordered backtracking succeeds.
        let g = parse_grammar("grammar g; a : X Y #xy | X Z #xz ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; Z = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert_eq!(p.parse("X Y").unwrap().label(), Some("xy"));
        assert_eq!(p.parse("X Z").unwrap().label(), Some("xz"));
        assert_eq!(p.stats().conflicts, 1);
    }

    #[test]
    fn optional_fallback_backtracks() {
        // b? followed by IDENT where b also starts with IDENT: greedy take
        // of b? must fall back when the suffix then fails.
        let g = parse_grammar("grammar g; a : b? IDENT ; b : IDENT IDENT ;").unwrap();
        let t =
            parse_tokens("tokens t; IDENT = /[a-z]+/; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        // one ident: optional not taken
        assert!(p.parse("x").is_ok());
        // three idents: optional taken
        assert!(p.parse("x y z").is_ok());
    }

    #[test]
    fn stats_reported() {
        let p = select_parser(EngineMode::Backtracking);
        let s = p.stats();
        assert_eq!(s.productions, 5);
        assert!(s.flat_productions > s.productions);
        assert!(s.table_cells > 0);
        assert!(s.dfa_states > 5);
        assert_eq!(s.token_rules, 11);
    }

    #[test]
    fn empty_input_rejected_when_not_nullable() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("").unwrap_err();
        assert!(err.expected.contains("SELECT"));
    }

    #[test]
    fn star_of_nullable_body_rejected_at_build() {
        // (b)* with nullable b is ill-formed for LL parsing (the lowered
        // right-recursion is left-recursive through the nullable prefix);
        // it must be rejected at build time rather than spin at parse time.
        let g = parse_grammar("grammar g; a : (b)* X ; b : Y | ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; WS = skip / +/;").unwrap();
        assert!(matches!(Parser::new(g, &t), Err(BuildError::LeftRecursive(_))));
    }

    #[test]
    fn star_of_non_nullable_body_loops_fine() {
        let g = parse_grammar("grammar g; a : (b)* X ; b : Y ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert!(p.parse("X").is_ok());
        assert!(p.parse("Y Y X").is_ok());
    }

    #[test]
    fn tokbits_basics() {
        let mut b = TokBits::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1) && !b.contains(128));
        let ids: Vec<u32> = b.iter_ids().collect();
        assert_eq!(ids, [0, 64, 129]);
        let mut c = TokBits::new(130);
        c.insert(5);
        c.union_with(&b);
        assert!(c.contains(5) && c.contains(129));
        c.clear();
        assert_eq!(c.iter_ids().count(), 0);
    }
}

//! The two parse engines: FIRST-pruned backtracking recursive descent over
//! the EBNF IR, and table-driven LL(1) over the flattened BNF.
//!
//! Both engines run on *compiled* grammar forms built once at
//! [`Parser::new`]: token kinds are interned to dense ids (the scanner's
//! rule indices), FIRST sets become bitsets, nonterminal references become
//! vector indices, and the LL(1) prediction table becomes a dense
//! per-production row. The hot path performs no string comparisons and no
//! hashing.
//!
//! Since the green-tree rework the engines do not construct tree nodes at
//! all: they append [`Event`]s to a flat buffer (see [`crate::events`]),
//! and abandoning a speculative alternative is a single buffer truncation.
//! The backtracking engine additionally memoizes *failed* `(production,
//! position)` probes in a [`FailureMemo`] bitmap, so the Group/Opt/Star
//! re-entry pattern — where an enclosing alternative re-probes the same
//! nonterminal at the same position — fails in O(1) instead of re-deriving
//! (and re-discarding) the whole subtree. Successful parses are
//! materialized into a [`crate::tree::SyntaxTree`] by
//! [`crate::session::ParseSession`]; [`Parser::parse`] keeps the seed
//! [`CstNode`] API as a thin conversion on top.

use crate::cst::CstNode;
use crate::errors::ParseError;
use crate::events::{Event, ERROR_NODE};
use crate::session::{ParseSession, SessionBuffers};
use sqlweave_grammar::analysis::{analyze, AnalysisError, GrammarAnalysis, EOF};
use sqlweave_grammar::ir::{Grammar, Term};
use sqlweave_grammar::lookahead::{analyze_lookahead, recovery_sync_set, Outcome, K_MAX};
use sqlweave_grammar::lower::is_synthetic;
use sqlweave_lexgen::tokenset::{TokenSet, TokenSetError};
use sqlweave_lexgen::{LineIndex, Scanner, Token};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Mutex;

/// Which algorithm [`Parser::parse`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Recursive-descent interpretation of the EBNF grammar with FIRST-set
    /// pruning and ordered backtracking across alternatives. Handles any
    /// composed grammar (PEG-style disambiguation on non-LL(1) spots).
    #[default]
    Backtracking,
    /// Table-driven predictive parsing over the flattened grammar. Fastest,
    /// but decisions follow the LL(1) table; reported conflicts resolve to
    /// the first-declared alternative.
    Ll1Table,
}

/// Errors building a [`Parser`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Grammar analysis failed (undefined symbols).
    Analysis(AnalysisError),
    /// Token-set compilation failed.
    Tokens(TokenSetError),
    /// The grammar references tokens absent from the token set.
    MissingTokens(Vec<String>),
    /// The grammar is left-recursive (fatal for LL parsing).
    LeftRecursive(Vec<Vec<String>>),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Analysis(e) => write!(f, "{e}"),
            BuildError::Tokens(e) => write!(f, "{e}"),
            BuildError::MissingTokens(v) => {
                write!(f, "grammar references tokens not in the token set: {}", v.join(", "))
            }
            BuildError::LeftRecursive(cycles) => {
                write!(f, "grammar is left-recursive: ")?;
                for (i, c) in cycles.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", c.join(" -> "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Static size metrics of a built parser (Experiment B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserStats {
    /// Productions in the (EBNF) grammar.
    pub productions: usize,
    /// Alternatives across all productions.
    pub alternatives: usize,
    /// Productions after flattening.
    pub flat_productions: usize,
    /// Populated LL(1) table cells.
    pub table_cells: usize,
    /// LL(1) conflicts (resolved by declaration order).
    pub conflicts: usize,
    /// Token rules in the scanner.
    pub token_rules: usize,
    /// States in the minimized lexer DFA.
    pub dfa_states: usize,
    /// Byte equivalence classes in the compiled scanner dispatch tables.
    pub byte_classes: usize,
    /// LL(k) dispatch-table hits (dynamic; zero on a freshly built parser,
    /// populated by [`crate::session::ParseSession::stats`]).
    pub decision_table_hits: u64,
    /// Speculative alternative/body probes attempted (dynamic).
    pub alt_attempts: u64,
    /// Probes abandoned by event-buffer truncation (dynamic).
    pub backtracks: u64,
    /// Failure-memo hits (dynamic).
    pub failure_memo_hits: u64,
    /// Panic-mode recoveries performed by resilient parses (dynamic).
    pub error_recoveries: u64,
    /// Tokens skipped into error nodes by resilient parses (dynamic).
    pub recovery_skipped_tokens: u64,
}

/// Dynamic counters accumulated by the backtracking engine across one
/// session's parses (Experiment B5: backtrack rate with and without the
/// compiled LL(k) dispatch tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Dispatch-table consultations that selected an alternative directly.
    pub decision_hits: u64,
    /// Speculative alternative/body probes attempted.
    pub alt_attempts: u64,
    /// Probes abandoned by event-buffer truncation.
    pub backtracks: u64,
    /// Panic-mode recoveries performed (one per reported syntax error).
    pub recoveries: u64,
    /// Tokens skipped into error nodes during panic-mode recovery.
    pub skipped_tokens: u64,
}

// ---------------------------------------------------------------- bitsets

/// Dense bitset over interned token ids.
#[derive(Debug, Clone, Default)]
pub(crate) struct TokBits {
    words: Box<[u64]>,
}

impl TokBits {
    pub(crate) fn new(n_tokens: usize) -> TokBits {
        TokBits {
            words: vec![0u64; n_tokens.div_ceil(64)].into_boxed_slice(),
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, id: u32) {
        self.words[(id / 64) as usize] |= 1 << (id % 64);
    }

    #[inline]
    pub(crate) fn contains(&self, id: u32) -> bool {
        (self.words[(id / 64) as usize] >> (id % 64)) & 1 == 1
    }

    fn union_with(&mut self, other: &TokBits) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    fn iter_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if (w >> b) & 1 == 1 {
                    Some(wi as u32 * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

// ------------------------------------------------------- compiled grammars

/// "No compiled decision at this point" sentinel for the `decision`
/// indices below.
pub(crate) const NO_DECISION: u32 = u32::MAX;

/// Compiled EBNF term for the backtracking engine. Decision indices point
/// into [`Parser::decisions`] when static lookahead analysis resolved the
/// LL(1) conflict at the corresponding flattened decision point.
pub(crate) enum CTerm {
    Tok(u32),
    Nt(u32),
    Opt { body: Vec<CTerm>, first: TokBits, decision: u32 },
    Star { body: Vec<CTerm>, first: TokBits, decision: u32 },
    Plus { body: Vec<CTerm>, first: TokBits, decision: u32 },
    Group { alts: Vec<CGroupAlt>, decision: u32 },
}

pub(crate) struct CGroupAlt {
    pub(crate) seq: Vec<CTerm>,
    pub(crate) first: TokBits,
    pub(crate) nullable: bool,
}

pub(crate) struct CAlt {
    pub(crate) seq: Vec<CTerm>,
    pub(crate) first: TokBits,
    pub(crate) nullable: bool,
    pub(crate) label: Option<String>,
}

pub(crate) struct CProd {
    pub(crate) name: String,
    pub(crate) alts: Vec<CAlt>,
    pub(crate) decision: u32,
}

/// One compiled LL(k) dispatch table (a resolved [`Outcome::Resolved`]
/// decision re-keyed to scanner token ids). `entries` holds packed
/// lookahead words (same `len << 48 | t0 << 32 | t1 << 16 | t2` layout as
/// `grammar::lookahead`, ids remapped) sorted for binary search; a word
/// shorter than `k` matches only when the input ends right after it, which
/// the packing encodes for free because the runtime packs exactly
/// `min(k, remaining)` tokens.
pub(crate) struct RtDecision {
    k: u8,
    /// The LL(1) conflict tokens — dispatch is consulted only when the
    /// current lookahead is one of these (elsewhere FIRST pruning already
    /// decides deterministically).
    conflict_first: TokBits,
    /// `true` if end-of-input itself is a conflicted lookahead.
    conflict_eof: bool,
    entries: Box<[(u64, u16)]>,
}

/// Append token id `t` to packed runtime word `w` (mirrors
/// `grammar::lookahead`'s layout; lengths stay ≤ [`K_MAX`]).
#[inline]
fn rt_w_push(w: u64, t: u16) -> u64 {
    let l = (w >> 48) as usize;
    debug_assert!(l < K_MAX);
    (((l + 1) as u64) << 48) | (w & 0x0000_FFFF_FFFF_FFFF) | ((t as u64) << (32 - 16 * l))
}

/// Compiled flat term for the LL(1) engine.
pub(crate) enum FTerm {
    Tok(u32),
    Nt { idx: u32, synthetic: bool },
}

pub(crate) struct FAlt {
    pub(crate) seq: Vec<FTerm>,
    pub(crate) label: Option<String>,
}

pub(crate) const NO_ALT: u16 = u16::MAX;

pub(crate) struct FProd {
    pub(crate) name: String,
    pub(crate) alts: Vec<FAlt>,
    /// Dense prediction row: token id → alternative index (or [`NO_ALT`]).
    pub(crate) row: Box<[u16]>,
    /// Alternative predicted at end of input.
    pub(crate) eof_alt: u16,
    /// Tokens with a prediction (for error messages).
    pub(crate) expected: TokBits,
}

/// A ready-to-use parser for one composed grammar.
pub struct Parser {
    grammar: Grammar,
    analysis: GrammarAnalysis,
    pub(crate) scanner: Scanner,
    mode: EngineMode,
    pub(crate) n_tokens: usize,
    pub(crate) cprods: Vec<CProd>,
    pub(crate) cstart: u32,
    pub(crate) fprods: Vec<FProd>,
    pub(crate) fstart: u32,
    decisions: Vec<RtDecision>,
    lookahead_k: u8,
    /// Statement-level synchronization tokens for panic-mode recovery
    /// (derived from FOLLOW of the start skeleton; EOF is implicit).
    sync_bits: TokBits,
    /// FOLLOW bitset per compiled EBNF production (recovery stop set).
    cfollow: Vec<TokBits>,
    /// FOLLOW bitset per flat production (recovery stop set, LL(1) mode).
    ffollow: Vec<TokBits>,
    /// Recycled [`SessionBuffers`] backing the [`Parser::parse`] and
    /// [`Parser::parse_resilient`] conveniences, so repeated one-shot
    /// calls reach the session path's zero-allocation steady state
    /// instead of rebuilding every buffer per statement.
    session_pool: Mutex<Vec<SessionBuffers>>,
}

impl fmt::Debug for Parser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parser")
            .field("grammar", &self.grammar.name())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl Parser {
    /// Build a parser from a closed grammar and its token set.
    pub fn new(grammar: Grammar, tokens: &TokenSet) -> Result<Parser, BuildError> {
        let missing: Vec<String> = grammar
            .referenced_tokens()
            .into_iter()
            .filter(|t| tokens.get(t).is_none())
            .map(str::to_string)
            .collect();
        if !missing.is_empty() {
            return Err(BuildError::MissingTokens(missing));
        }
        let analysis = analyze(&grammar).map_err(BuildError::Analysis)?;
        if !analysis.left_recursion.is_empty() {
            return Err(BuildError::LeftRecursive(analysis.left_recursion.clone()));
        }
        let scanner = tokens.build().map_err(BuildError::Tokens)?;
        let n_tokens = scanner.rule_count();

        // Static LL(k) lookahead analysis: every conflict the analysis
        // resolves becomes a compiled dispatch table the backtracking
        // engine consults before speculating.
        let mut decisions: Vec<RtDecision> = Vec::new();
        let mut decision_of: HashMap<String, u32> = HashMap::new();
        if !analysis.conflicts.is_empty() {
            let la = analyze_lookahead(&analysis, K_MAX);
            for d in &la.decisions {
                let Outcome::Resolved { k, entries } = &d.outcome else {
                    continue;
                };
                let mut conflict_first = TokBits::new(n_tokens);
                let mut conflict_eof = false;
                for t in &d.conflict_tokens {
                    if t == EOF {
                        conflict_eof = true;
                    } else {
                        conflict_first.insert(scanner.kind_of(t).expect("token checked").0);
                    }
                }
                let mut packed: Vec<(u64, u16)> = entries
                    .iter()
                    .map(|e| {
                        let mut w = 0u64;
                        for t in &e.word {
                            w = rt_w_push(w, scanner.kind_of(t).expect("token checked").0 as u16);
                        }
                        (w, e.alt as u16)
                    })
                    .collect();
                packed.sort_unstable();
                decision_of.insert(d.production.clone(), decisions.len() as u32);
                decisions.push(RtDecision {
                    k: *k as u8,
                    conflict_first,
                    conflict_eof,
                    entries: packed.into_boxed_slice(),
                });
            }
        }

        let compiler = Compiler {
            analysis: &analysis,
            scanner: &scanner,
            n_tokens,
            decision_of: &decision_of,
        };
        let (cprods, cstart) = compiler.compile_ebnf(&grammar);
        let (fprods, fstart) = compiler.compile_flat();

        // Panic-mode recovery sets: the statement-level sync tokens from
        // the start skeleton's FOLLOW machinery, plus a FOLLOW bitset per
        // production of each compiled form (per-production stop points).
        let sync_bits = compiler.bits_of(&recovery_sync_set(&analysis));
        let empty = BTreeSet::new();
        let follow_bits = |name: &str| -> TokBits {
            compiler.bits_of(analysis.follow.get(name).unwrap_or(&empty))
        };
        let cfollow = cprods.iter().map(|p| follow_bits(&p.name)).collect();
        let ffollow = fprods.iter().map(|p| follow_bits(&p.name)).collect();

        Ok(Parser {
            grammar,
            analysis,
            scanner,
            mode: EngineMode::default(),
            n_tokens,
            cprods,
            cstart,
            fprods,
            fstart,
            decisions,
            lookahead_k: K_MAX as u8,
            sync_bits,
            cfollow,
            ffollow,
            session_pool: Mutex::new(Vec::new()),
        })
    }

    /// `true` if token kind `kind` is a statement-level synchronization
    /// point for panic-mode recovery (e.g. `SEMI` in the script skeleton).
    pub(crate) fn is_sync_token(&self, kind: u32) -> bool {
        self.sync_bits.contains(kind)
    }

    /// FOLLOW bitset of a compiled production (per emitting engine), used
    /// as the per-production stop set during panic-mode token skipping.
    pub(crate) fn follow_bits(&self, mode: EngineMode, prod: u32) -> Option<&TokBits> {
        match mode {
            EngineMode::Backtracking => self.cfollow.get(prod as usize),
            EngineMode::Ll1Table => self.ffollow.get(prod as usize),
        }
    }

    /// Select the engine mode (builder style).
    pub fn with_mode(mut self, mode: EngineMode) -> Parser {
        self.mode = mode;
        self
    }

    /// Current engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Limit runtime lookahead dispatch to decisions resolved at `k` or
    /// fewer tokens (builder style). Dispatch tables are always compiled
    /// at build time for k ≤ 3; this only gates which are consulted, so
    /// `k < 2` disables dispatch entirely (pure seed backtracking).
    pub fn with_lookahead_k(mut self, k: usize) -> Parser {
        self.lookahead_k = k.min(K_MAX) as u8;
        self
    }

    /// The runtime lookahead dispatch limit (see [`Parser::with_lookahead_k`]).
    pub fn lookahead_k(&self) -> usize {
        self.lookahead_k as usize
    }

    /// Number of LL(1) conflicts the static lookahead analysis resolved
    /// into compiled dispatch tables.
    pub fn decision_tables(&self) -> usize {
        self.decisions.len()
    }

    /// `true` when the backtracking engine will consult dispatch tables.
    pub(crate) fn tables_active(&self) -> bool {
        self.lookahead_k >= 2 && !self.decisions.is_empty()
    }

    /// The (EBNF) grammar this parser accepts.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Analysis results (FIRST/FOLLOW, table, conflicts).
    pub fn analysis(&self) -> &GrammarAnalysis {
        &self.analysis
    }

    /// The compiled scanner.
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Size metrics.
    pub fn stats(&self) -> ParserStats {
        ParserStats {
            productions: self.grammar.productions().len(),
            alternatives: self.grammar.alternative_count(),
            flat_productions: self.analysis.flat.productions().len(),
            table_cells: self.analysis.table_cells(),
            conflicts: self.analysis.conflicts.len(),
            token_rules: self.scanner.rule_count(),
            dfa_states: self.scanner.dfa_states(),
            byte_classes: self.scanner.byte_classes(),
            decision_table_hits: 0,
            alt_attempts: 0,
            backtracks: 0,
            failure_memo_hits: 0,
            error_recoveries: 0,
            recovery_skipped_tokens: 0,
        }
    }

    /// Parse `input` to a CST, or produce the farthest-failure error.
    ///
    /// This is the seed API, kept as a thin conversion: the parse runs on
    /// the event core (a [`ParseSession`] drawn from the parser's internal
    /// buffer pool, so repeated calls allocate like a recycled session)
    /// and the resulting [`crate::tree::SyntaxTree`] is materialized into
    /// owning [`CstNode`]s. Callers that can hold the borrow should still
    /// prefer [`Parser::session`] + [`ParseSession::parse_tree`] — it
    /// skips the owning conversion entirely.
    pub fn parse(&self, input: &str) -> Result<CstNode, ParseError> {
        let mut session = self.pooled_session();
        let result = match session.parse_tree(input) {
            Ok(tree) => Ok(tree.to_cst()),
            Err(e) => Err(e),
        };
        self.recycle_session(session);
        result
    }

    /// Parse `input` with panic-mode error recovery: instead of stopping
    /// at the first error, every committed failure is recorded as a
    /// diagnostic, the offending tokens are folded into an `error` node,
    /// and parsing resumes at the next synchronization point. Always
    /// produces a tree covering every scanned token, plus the diagnostics
    /// in source order (empty for well-formed input, where the tree is
    /// identical to [`Parser::parse`]).
    ///
    /// Like [`Parser::parse`] this is a thin convenience over a pooled
    /// session; batch callers should hold a [`Parser::session`] and use
    /// [`ParseSession::parse_resilient`] directly.
    pub fn parse_resilient(&self, input: &str) -> (CstNode, Vec<ParseError>) {
        let mut session = self.pooled_session();
        let result = {
            let outcome = session.parse_resilient(input);
            (outcome.tree.to_cst(), outcome.errors)
        };
        self.recycle_session(session);
        result
    }

    /// Take a session backed by pooled buffers (or fresh ones when the
    /// pool is empty). Pair with [`Parser::recycle_session`].
    fn pooled_session(&self) -> ParseSession<'_> {
        let pooled = self
            .session_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        match pooled {
            Some(b) => ParseSession::from_buffers(self, b),
            None => self.session(),
        }
    }

    /// Return a pooled session's buffers. The pool is capped at the
    /// number of threads that can plausibly call [`Parser::parse`]
    /// concurrently on one shared parser; beyond that, dropping the
    /// buffers is cheaper than growing an unbounded free list.
    fn recycle_session(&self, session: ParseSession<'_>) {
        let mut pool = self
            .session_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.len() < 16 {
            pool.push(session.into_buffers());
        }
    }

    /// A reusable parse session holding the event buffer, token vector,
    /// memo bitmap, and tree arena, recycled across parses.
    pub fn session(&self) -> ParseSession<'_> {
        ParseSession::new(self)
    }

    /// Resolve a compiled production id (as found in [`Event::Open`]) to
    /// its production name, per emitting engine.
    pub(crate) fn prod_name(&self, mode: EngineMode, prod: u32) -> &str {
        if prod == ERROR_NODE {
            return "error";
        }
        match mode {
            EngineMode::Backtracking => &self.cprods[prod as usize].name,
            EngineMode::Ll1Table => &self.fprods[prod as usize].name,
        }
    }

    /// Resolve a compiled `(production, alternative)` pair to the
    /// alternative's label, per emitting engine.
    pub(crate) fn alt_label(&self, mode: EngineMode, prod: u32, alt: u32) -> Option<&str> {
        if prod == ERROR_NODE {
            return None;
        }
        match mode {
            EngineMode::Backtracking => {
                self.cprods[prod as usize].alts[alt as usize].label.as_deref()
            }
            EngineMode::Ll1Table => {
                self.fprods[prod as usize].alts[alt as usize].label.as_deref()
            }
        }
    }

    pub(crate) fn error_from(
        &self,
        input: &str,
        toks: &[Token],
        notes: &Notes,
    ) -> ParseError {
        self.error_from_with(input, toks, notes, &LineIndex::new(input))
    }

    /// [`Parser::error_from`] against a caller-held [`LineIndex`], so
    /// multi-error resilient parses pay for the line table once instead of
    /// rescanning the input per diagnostic.
    pub(crate) fn error_from_with(
        &self,
        input: &str,
        toks: &[Token],
        notes: &Notes,
        index: &LineIndex,
    ) -> ParseError {
        let (at, found) = match toks.get(notes.farthest) {
            Some(t) => (
                t.start,
                Some((
                    self.scanner.name(t.kind).to_string(),
                    t.text(input).to_string(),
                )),
            ),
            None => (input.len(), None),
        };
        let (line, column) = index.line_col(input, at);
        let mut expected: BTreeSet<String> = notes
            .expected
            .iter_ids()
            .map(|id| {
                self.scanner
                    .name(sqlweave_lexgen::TokenKind(id))
                    .to_string()
            })
            .collect();
        if notes.expected_eof {
            expected.insert(EOF.to_string());
        }
        ParseError {
            at,
            line,
            column,
            expected,
            found,
            lexical: None,
        }
    }

    // ---------- event-emitting engines ----------

    /// Run the configured engine over an already-scanned token stream,
    /// appending the parse to `ctx.events`. Returns the position after the
    /// start production on success (the caller checks it consumed all
    /// input).
    pub(crate) fn run_events(&self, ctx: &mut EvCtx<'_>) -> Result<usize, ()> {
        match self.mode {
            EngineMode::Backtracking => self.ev_bt_nt(ctx, self.cstart, 0),
            EngineMode::Ll1Table => self.ev_ll1(ctx, self.fstart, 0, true),
        }
    }

    /// Consult the compiled dispatch table `di` at `pos`. Returns the
    /// selected alternative on a hit. Entries are keyed on exactly
    /// `min(k, remaining)` packed tokens, so short (end-of-input) words
    /// match only when the input really ends there.
    #[inline]
    fn try_dispatch(&self, ctx: &mut EvCtx<'_>, di: u32, pos: usize) -> Option<usize> {
        // SAFETY: `di` is a compiled decision index — every caller guards
        // `di != NO_DECISION`, and the compiler only stores indices it
        // just pushed into `decisions`. Skipping the bounds check removes
        // one indirection from every conflicted-decision consult.
        debug_assert!((di as usize) < self.decisions.len());
        let d = unsafe { self.decisions.get_unchecked(di as usize) };
        if d.k > self.lookahead_k {
            return None;
        }
        match ctx.kind_ids.get(pos) {
            Some(&k0) if d.conflict_first.contains(k0) => {}
            None if d.conflict_eof => {}
            _ => return None,
        }
        let depth = (d.k as usize).min(ctx.kind_ids.len() - pos);
        let mut w = 0u64;
        for &t in &ctx.kind_ids[pos..pos + depth] {
            w = rt_w_push(w, t as u16);
        }
        match d.entries.binary_search_by_key(&w, |e| e.0) {
            Ok(i) => {
                ctx.counters.decision_hits += 1;
                Some(d.entries[i].1 as usize)
            }
            Err(_) => None,
        }
    }

    fn ev_bt_nt(&self, ctx: &mut EvCtx<'_>, prod: u32, pos: usize) -> Result<usize, ()> {
        // Track which production owns the failure frontier (`Notes`
        // snapshots the innermost production on every frontier advance) so
        // panic-mode recovery can skip to that production's FOLLOW set.
        let saved = ctx.notes.cur_prod;
        ctx.notes.cur_prod = prod;
        let result = self.ev_bt_nt_inner(ctx, prod, pos);
        ctx.notes.cur_prod = saved;
        result
    }

    fn ev_bt_nt_inner(&self, ctx: &mut EvCtx<'_>, prod: u32, pos: usize) -> Result<usize, ()> {
        // The engine is a deterministic function of (production, position),
        // so a failed probe can never succeed on re-entry — fail in O(1).
        if ctx.memo.failed(prod, pos) {
            return Err(());
        }
        let cprod = &self.cprods[prod as usize];
        if ctx.use_tables && cprod.decision != NO_DECISION {
            if let Some(ai) = self.try_dispatch(ctx, cprod.decision, pos) {
                let alt = &cprod.alts[ai];
                let mark = ctx.events.len();
                ctx.events.push(Event::Open { prod, alt: ai as u32 });
                ctx.counters.alt_attempts += 1;
                match self.ev_bt_seq(ctx, &alt.seq, pos) {
                    Ok(next) => {
                        ctx.events.push(Event::Close);
                        return Ok(next);
                    }
                    Err(()) => {
                        ctx.counters.backtracks += 1;
                        ctx.events.truncate(mark);
                        // The dispatched alternative failed on deeper
                        // context; fall back to the full ordered loop
                        // (outcome-identical to the seed engine).
                    }
                }
            }
        }
        let la = ctx.kind_ids.get(pos).copied();
        for (ai, alt) in cprod.alts.iter().enumerate() {
            if !alt.nullable {
                match la {
                    Some(k) if alt.first.contains(k) => {}
                    _ => {
                        ctx.notes.note_set(pos, &alt.first);
                        continue;
                    }
                }
            }
            let mark = ctx.events.len();
            ctx.events.push(Event::Open { prod, alt: ai as u32 });
            ctx.counters.alt_attempts += 1;
            match self.ev_bt_seq(ctx, &alt.seq, pos) {
                Ok(next) => {
                    ctx.events.push(Event::Close);
                    return Ok(next);
                }
                Err(()) => {
                    ctx.counters.backtracks += 1;
                    ctx.events.truncate(mark);
                }
            }
        }
        ctx.memo.record(prod, pos);
        Err(())
    }

    fn ev_bt_seq(&self, ctx: &mut EvCtx<'_>, seq: &[CTerm], mut pos: usize) -> Result<usize, ()> {
        for term in seq {
            pos = self.ev_bt_term(ctx, term, pos)?;
        }
        Ok(pos)
    }

    /// Greedy repetition shared by `Star` and the tail of `Plus`.
    fn ev_bt_repeat(
        &self,
        ctx: &mut EvCtx<'_>,
        body: &[CTerm],
        first: &TokBits,
        decision: u32,
        mut pos: usize,
    ) -> usize {
        loop {
            match ctx.kind_ids.get(pos) {
                Some(&k) if first.contains(k) => {
                    // Alternative 1 of the lowered `body star | ε` is the
                    // exit: a dispatch hit proves the body probe is doomed.
                    if ctx.use_tables
                        && decision != NO_DECISION
                        && self.try_dispatch(ctx, decision, pos) == Some(1)
                    {
                        break;
                    }
                    let mark = ctx.events.len();
                    ctx.counters.alt_attempts += 1;
                    match self.ev_bt_seq(ctx, body, pos) {
                        Ok(next) if next > pos => pos = next,
                        _ => {
                            ctx.counters.backtracks += 1;
                            ctx.events.truncate(mark);
                            break;
                        }
                    }
                }
                _ => {
                    ctx.notes.note_set(pos, first);
                    break;
                }
            }
        }
        pos
    }

    fn ev_bt_term(&self, ctx: &mut EvCtx<'_>, term: &CTerm, pos: usize) -> Result<usize, ()> {
        match term {
            CTerm::Tok(kind) => match ctx.kind_ids.get(pos) {
                Some(k) if k == kind => {
                    ctx.events.push(Event::Token { index: pos as u32 });
                    Ok(pos + 1)
                }
                _ => {
                    ctx.notes.note_id(pos, *kind);
                    Err(())
                }
            },
            CTerm::Nt(n) => self.ev_bt_nt(ctx, *n, pos),
            CTerm::Opt { body, first, decision } => {
                if matches!(ctx.kind_ids.get(pos), Some(&k) if first.contains(k)) {
                    // Alternative 1 of the lowered `body | ε` is the skip:
                    // a dispatch hit proves the body probe is doomed.
                    if ctx.use_tables
                        && *decision != NO_DECISION
                        && self.try_dispatch(ctx, *decision, pos) == Some(1)
                    {
                        return Ok(pos);
                    }
                    let mark = ctx.events.len();
                    ctx.counters.alt_attempts += 1;
                    match self.ev_bt_seq(ctx, body, pos) {
                        Ok(next) => return Ok(next),
                        Err(()) => {
                            ctx.counters.backtracks += 1;
                            ctx.events.truncate(mark);
                        }
                    }
                } else {
                    // Not taken: still informative for error messages.
                    ctx.notes.note_set(pos, first);
                }
                Ok(pos)
            }
            CTerm::Star { body, first, decision } => {
                Ok(self.ev_bt_repeat(ctx, body, first, *decision, pos))
            }
            CTerm::Plus { body, first, decision } => {
                let next = self.ev_bt_seq(ctx, body, pos)?;
                Ok(self.ev_bt_repeat(ctx, body, first, *decision, next))
            }
            CTerm::Group { alts, decision } => {
                if ctx.use_tables && *decision != NO_DECISION {
                    if let Some(ai) = self.try_dispatch(ctx, *decision, pos) {
                        let alt = &alts[ai];
                        let mark = ctx.events.len();
                        ctx.counters.alt_attempts += 1;
                        match self.ev_bt_seq(ctx, &alt.seq, pos) {
                            Ok(next) => return Ok(next),
                            Err(()) => {
                                ctx.counters.backtracks += 1;
                                ctx.events.truncate(mark);
                            }
                        }
                    }
                }
                let la = ctx.kind_ids.get(pos).copied();
                for alt in alts {
                    if !alt.nullable {
                        match la {
                            Some(k) if alt.first.contains(k) => {}
                            _ => {
                                ctx.notes.note_set(pos, &alt.first);
                                continue;
                            }
                        }
                    }
                    let mark = ctx.events.len();
                    ctx.counters.alt_attempts += 1;
                    match self.ev_bt_seq(ctx, &alt.seq, pos) {
                        Ok(next) => return Ok(next),
                        Err(()) => {
                            ctx.counters.backtracks += 1;
                            ctx.events.truncate(mark);
                        }
                    }
                }
                Err(())
            }
        }
    }

    /// Expand one flat nonterminal. Real rules (`open`) wrap their children
    /// in `Open`/`Close`; synthetic rules introduced by flattening splice
    /// their children into the enclosing expansion, exactly like the seed
    /// engine did.
    fn ev_ll1(
        &self,
        ctx: &mut EvCtx<'_>,
        prod: u32,
        pos: usize,
        open: bool,
    ) -> Result<usize, ()> {
        // Same frontier-owner tracking as the backtracking engine.
        let saved = ctx.notes.cur_prod;
        ctx.notes.cur_prod = prod;
        let result = self.ev_ll1_inner(ctx, prod, pos, open);
        ctx.notes.cur_prod = saved;
        result
    }

    fn ev_ll1_inner(
        &self,
        ctx: &mut EvCtx<'_>,
        prod: u32,
        mut pos: usize,
        open: bool,
    ) -> Result<usize, ()> {
        // SAFETY: `prod` comes from compiled `FTerm::Nt` indices (or
        // `fstart`), all produced by the compiler as indices into
        // `fprods`; `row` is built dense over `n_tokens` entries and every
        // scanned kind id is an index into the scanner's rule list, which
        // is exactly `n_tokens` long. Hoisting both bounds checks out of
        // the dispatch (one per expansion, executed for every nonterminal
        // of every statement) is the LL(1) driver's hottest win.
        debug_assert!((prod as usize) < self.fprods.len());
        let fprod = unsafe { self.fprods.get_unchecked(prod as usize) };
        let alt_index = match ctx.kind_ids.get(pos) {
            Some(&k) => {
                debug_assert!((k as usize) < fprod.row.len());
                unsafe { *fprod.row.get_unchecked(k as usize) }
            }
            None => fprod.eof_alt,
        };
        if alt_index == NO_ALT {
            ctx.notes.note_set(pos, &fprod.expected);
            return Err(());
        }
        if open {
            ctx.events.push(Event::Open { prod, alt: alt_index as u32 });
        }
        let alt = &fprod.alts[alt_index as usize];
        for term in &alt.seq {
            match term {
                FTerm::Tok(kind) => match ctx.kind_ids.get(pos) {
                    Some(k) if k == kind => {
                        ctx.events.push(Event::Token { index: pos as u32 });
                        pos += 1;
                    }
                    _ => {
                        ctx.notes.note_id(pos, *kind);
                        return Err(());
                    }
                },
                FTerm::Nt { idx, synthetic } => {
                    pos = self.ev_ll1(ctx, *idx, pos, !*synthetic)?;
                }
            }
        }
        if open {
            ctx.events.push(Event::Close);
        }
        Ok(pos)
    }
}

// ---------------------------------------------------------------- compiler

struct Compiler<'a> {
    analysis: &'a GrammarAnalysis,
    scanner: &'a Scanner,
    n_tokens: usize,
    /// Flat-production name → index into [`Parser::decisions`].
    decision_of: &'a HashMap<String, u32>,
}

impl Compiler<'_> {
    fn tok_id(&self, name: &str) -> u32 {
        self.scanner
            .kind_of(name)
            .expect("token presence checked before compilation")
            .0
    }

    fn bits_of(&self, names: &BTreeSet<String>) -> TokBits {
        let mut bits = TokBits::new(self.n_tokens);
        for n in names {
            if n != EOF {
                bits.insert(self.tok_id(n));
            }
        }
        bits
    }

    fn first_bits(&self, seq: &[Term]) -> (TokBits, bool) {
        let (names, nullable) = self.analysis.first_of_seq(seq);
        (self.bits_of(&names), nullable)
    }

    /// Decision index for the synthetic production the Lowerer named
    /// `{owner}__{kind}{n}` (see `grammar::lower`); the compiler walks
    /// terms in the same order and replays the same counter.
    fn decision_at(&self, owner: &str, kind: &str, n: usize) -> u32 {
        self.decision_of
            .get(&format!("{owner}__{kind}{n}"))
            .copied()
            .unwrap_or(NO_DECISION)
    }

    fn compile_ebnf(&self, grammar: &Grammar) -> (Vec<CProd>, u32) {
        let index: HashMap<&str, u32> = grammar
            .productions()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i as u32))
            .collect();
        // Mirrors the Lowerer's synthetic-name counter: global across the
        // grammar, bumped after a term's body has been processed.
        let mut counter = 0usize;
        let mut prods = Vec::with_capacity(grammar.productions().len());
        for p in grammar.productions() {
            let mut alts = Vec::with_capacity(p.alternatives.len());
            for alt in &p.alternatives {
                let (first, nullable) = self.first_bits(&alt.seq);
                alts.push(CAlt {
                    seq: self.compile_seq(&p.name, &alt.seq, &index, &mut counter),
                    first,
                    nullable,
                    label: alt.label.clone(),
                });
            }
            prods.push(CProd {
                name: p.name.clone(),
                alts,
                decision: self
                    .decision_of
                    .get(p.name.as_str())
                    .copied()
                    .unwrap_or(NO_DECISION),
            });
        }
        (prods, index[grammar.start()])
    }

    fn compile_seq(
        &self,
        owner: &str,
        seq: &[Term],
        index: &HashMap<&str, u32>,
        counter: &mut usize,
    ) -> Vec<CTerm> {
        seq.iter()
            .map(|term| match term {
                Term::Token(t) => CTerm::Tok(self.tok_id(t)),
                Term::NonTerminal(n) => CTerm::Nt(index[n.as_str()]),
                Term::Optional(body) => {
                    let first = self.first_bits(body).0;
                    let body = self.compile_seq(owner, body, index, counter);
                    *counter += 1;
                    CTerm::Opt {
                        first,
                        body,
                        decision: self.decision_at(owner, "opt", *counter),
                    }
                }
                Term::Star(body) => {
                    let first = self.first_bits(body).0;
                    let body = self.compile_seq(owner, body, index, counter);
                    *counter += 1;
                    CTerm::Star {
                        first,
                        body,
                        decision: self.decision_at(owner, "star", *counter),
                    }
                }
                Term::Plus(body) => {
                    let first = self.first_bits(body).0;
                    let body = self.compile_seq(owner, body, index, counter);
                    *counter += 1;
                    // `x+` lowers to `x x*`, so the Plus tail shares the
                    // star-kind synthetic.
                    CTerm::Plus {
                        first,
                        body,
                        decision: self.decision_at(owner, "star", *counter),
                    }
                }
                Term::Group(alts) => {
                    let calts: Vec<CGroupAlt> = alts
                        .iter()
                        .map(|a| {
                            let (first, nullable) = self.first_bits(a);
                            CGroupAlt {
                                seq: self.compile_seq(owner, a, index, counter),
                                first,
                                nullable,
                            }
                        })
                        .collect();
                    // Single-alternative groups are spliced by the
                    // Lowerer: no synthetic production, no counter bump.
                    let decision = if calts.len() > 1 {
                        *counter += 1;
                        self.decision_at(owner, "grp", *counter)
                    } else {
                        NO_DECISION
                    };
                    CTerm::Group { alts: calts, decision }
                }
            })
            .collect()
    }

    fn compile_flat(&self) -> (Vec<FProd>, u32) {
        let flat = &self.analysis.flat;
        let index: HashMap<&str, u32> = flat
            .productions()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i as u32))
            .collect();
        let mut prods: Vec<FProd> = flat
            .productions()
            .iter()
            .map(|p| FProd {
                name: p.name.clone(),
                alts: p
                    .alternatives
                    .iter()
                    .map(|alt| FAlt {
                        label: alt.label.clone(),
                        seq: alt
                            .seq
                            .iter()
                            .map(|t| match t {
                                Term::Token(t) => FTerm::Tok(self.tok_id(t)),
                                Term::NonTerminal(n) => FTerm::Nt {
                                    idx: index[n.as_str()],
                                    synthetic: is_synthetic(n),
                                },
                                _ => unreachable!("flattened grammar has no nested terms"),
                            })
                            .collect(),
                    })
                    .collect(),
                row: vec![NO_ALT; self.n_tokens].into_boxed_slice(),
                eof_alt: NO_ALT,
                expected: TokBits::new(self.n_tokens),
            })
            .collect();
        for ((nt, tok), &alt) in &self.analysis.table {
            let pi = index[nt.as_str()] as usize;
            if tok == EOF {
                prods[pi].eof_alt = alt as u16;
            } else {
                let id = self.tok_id(tok);
                prods[pi].row[id as usize] = alt as u16;
                prods[pi].expected.insert(id);
            }
        }
        (prods, index[flat.start()])
    }
}

// --------------------------------------------------- failure-frontier notes

/// Farthest-failure tracking shared by every engine (event-emitting and
/// reference): the error message reports the deepest position reached and
/// the union of token sets that would have allowed progress there.
pub(crate) struct Notes {
    pub(crate) farthest: usize,
    expected: TokBits,
    expected_eof: bool,
    /// The production currently being expanded (engine-maintained;
    /// [`NO_PROD`] outside any expansion).
    pub(crate) cur_prod: u32,
    /// The production that owned the frontier when it last advanced —
    /// panic-mode recovery skips to this production's FOLLOW set.
    pub(crate) at_prod: u32,
}

/// "No production" sentinel for [`Notes::cur_prod`]/[`Notes::at_prod`].
pub(crate) const NO_PROD: u32 = u32::MAX;

impl Notes {
    pub(crate) fn new(n_tokens: usize) -> Notes {
        Notes {
            farthest: 0,
            expected: TokBits::new(n_tokens),
            expected_eof: false,
            cur_prod: NO_PROD,
            at_prod: NO_PROD,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.farthest = 0;
        self.expected.clear();
        self.expected_eof = false;
        self.cur_prod = NO_PROD;
        self.at_prod = NO_PROD;
    }

    /// Advance the frontier to `pos`, clearing stale expectations. Returns
    /// `false` when `pos` is strictly behind the frontier — such notes can
    /// never appear in the reported error, so callers skip all recording
    /// work (the error-path cost fix: untaken `Opt`/`Star` arms and pruned
    /// alternatives behind the frontier no longer touch the bitset).
    #[inline]
    fn advance(&mut self, pos: usize) -> bool {
        if pos < self.farthest {
            return false;
        }
        if pos > self.farthest {
            self.farthest = pos;
            self.expected.clear();
            self.expected_eof = false;
        }
        self.at_prod = self.cur_prod;
        true
    }

    #[inline]
    pub(crate) fn note_id(&mut self, pos: usize, expected: u32) {
        if self.advance(pos) {
            self.expected.insert(expected);
        }
    }

    #[inline]
    pub(crate) fn note_set(&mut self, pos: usize, expected: &TokBits) {
        if self.advance(pos) {
            self.expected.union_with(expected);
        }
    }

    pub(crate) fn note_eof(&mut self, pos: usize) {
        if self.advance(pos) {
            self.expected_eof = true;
        }
    }
}

// --------------------------------------------------------- failure memoing

/// Bitmap over `(production, position)` recording *failed* backtracking
/// probes. Sound because `ev_bt_nt` is a deterministic function of its
/// `(production, position)` arguments: once a probe fails, every re-probe
/// (the Group/Opt/Star re-entry pattern) fails identically.
#[derive(Default)]
pub(crate) struct FailureMemo {
    words: Vec<u64>,
    positions: usize,
    hits: u64,
}

impl FailureMemo {
    /// Size (and zero) the bitmap for a parse over `positions` token
    /// positions and `prods` productions, recycling the allocation.
    pub(crate) fn reset(&mut self, prods: usize, positions: usize) {
        self.positions = positions;
        let need = (prods * positions).div_ceil(64);
        self.words.clear();
        self.words.resize(need, 0);
    }

    #[inline]
    fn bit(&self, prod: u32, pos: usize) -> usize {
        prod as usize * self.positions + pos
    }

    #[inline]
    pub(crate) fn failed(&mut self, prod: u32, pos: usize) -> bool {
        let b = self.bit(prod, pos);
        let hit = (self.words[b / 64] >> (b % 64)) & 1 == 1;
        if hit {
            self.hits += 1;
        }
        hit
    }

    #[inline]
    pub(crate) fn record(&mut self, prod: u32, pos: usize) {
        let b = self.bit(prod, pos);
        self.words[b / 64] |= 1 << (b % 64);
    }

    /// Cumulative memo hits (probes answered without re-derivation).
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }
}

/// Borrowed engine context: token kinds in, events + failure notes +
/// dynamic counters out.
pub(crate) struct EvCtx<'a> {
    pub(crate) kind_ids: &'a [u32],
    pub(crate) events: &'a mut Vec<Event>,
    pub(crate) memo: &'a mut FailureMemo,
    pub(crate) notes: &'a mut Notes,
    pub(crate) counters: &'a mut RunCounters,
    /// Consult compiled LL(k) dispatch tables before speculating. The
    /// session disables this on its diagnostics rerun so error messages
    /// stay byte-identical to the seed engine.
    pub(crate) use_tables: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::{parse_grammar, parse_tokens};

    fn select_parser(mode: EngineMode) -> Parser {
        let g = parse_grammar(
            r#"
            grammar q;
            start query;
            query : SELECT quant? select_list FROM IDENT where_clause? #select ;
            quant : DISTINCT #distinct | ALL #all ;
            select_list : IDENT (COMMA IDENT)* #columns | STAR #star ;
            where_clause : WHERE IDENT EQ value ;
            value : IDENT | NUMBER ;
            "#,
        )
        .unwrap();
        let t = parse_tokens(
            r#"
            tokens q;
            SELECT = kw; FROM = kw; WHERE = kw; DISTINCT = kw; ALL = kw;
            COMMA = ","; STAR = "*"; EQ = "=";
            IDENT = /[a-z][a-z0-9_]*/;
            NUMBER = /[0-9]+/;
            WS = skip /[ \t\r\n]+/;
            "#,
        )
        .unwrap();
        Parser::new(g, &t).unwrap().with_mode(mode)
    }

    #[test]
    fn backtracking_accepts_and_shapes() {
        let p = select_parser(EngineMode::Backtracking);
        let cst = p.parse("SELECT a, b FROM t WHERE a = 1").unwrap();
        assert_eq!(cst.name(), "query");
        assert_eq!(cst.label(), Some("select"));
        let sl = cst.child("select_list").unwrap();
        assert_eq!(sl.label(), Some("columns"));
        assert_eq!(sl.children_named("IDENT").count(), 2);
        assert!(cst.child("where_clause").is_some());
    }

    #[test]
    fn ll1_table_accepts_same_inputs() {
        let p = select_parser(EngineMode::Ll1Table);
        assert!(p.parse("SELECT * FROM t").is_ok());
        assert!(p.parse("SELECT DISTINCT a FROM t").is_ok());
        assert!(p.parse("SELECT a, b, c FROM t WHERE x = y").is_ok());
    }

    #[test]
    fn engines_produce_identical_csts() {
        let bt = select_parser(EngineMode::Backtracking);
        let ll = select_parser(EngineMode::Ll1Table);
        for input in [
            "SELECT a FROM t",
            "SELECT * FROM t",
            "SELECT ALL a, b FROM t WHERE a = 9",
            "SELECT DISTINCT x FROM y WHERE q = r",
        ] {
            assert_eq!(
                bt.parse(input).unwrap(),
                ll.parse(input).unwrap(),
                "CSTs differ on {input:?}"
            );
        }
    }

    #[test]
    fn rejects_with_expected_set() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a b FROM t").unwrap_err();
        assert_eq!(err.found.as_ref().unwrap().1, "b");
        assert!(
            err.expected.contains("FROM") && err.expected.contains("COMMA"),
            "expected: {:?}",
            err.expected
        );
    }

    #[test]
    fn ll1_rejects_with_expected_set() {
        let p = select_parser(EngineMode::Ll1Table);
        let err = p.parse("SELECT FROM t").unwrap_err();
        assert!(
            err.expected.contains("IDENT") || err.expected.contains("STAR"),
            "expected: {:?}",
            err.expected
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a FROM t t2").unwrap_err();
        assert_eq!(err.found.as_ref().unwrap().1, "t2");
    }

    #[test]
    fn eof_error() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a FROM").unwrap_err();
        assert!(err.found.is_none());
        assert!(err.expected.contains("IDENT"));
    }

    #[test]
    fn lexical_error_propagated() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("SELECT a FROM t WHERE a = #").unwrap_err();
        assert!(err.lexical.is_some());
    }

    #[test]
    fn missing_token_detected_at_build() {
        let g = parse_grammar("grammar g; a : GHOST ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(
            Parser::new(g, &t),
            Err(BuildError::MissingTokens(v)) if v == ["GHOST"]
        ));
    }

    #[test]
    fn left_recursion_detected_at_build() {
        let g = parse_grammar("grammar g; a : a X | X ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(Parser::new(g, &t), Err(BuildError::LeftRecursive(_))));
    }

    #[test]
    fn undefined_nonterminal_detected_at_build() {
        let g = parse_grammar("grammar g; a : missing ;").unwrap();
        let t = parse_tokens("tokens t; X = kw;").unwrap();
        assert!(matches!(Parser::new(g, &t), Err(BuildError::Analysis(_))));
    }

    #[test]
    fn backtracking_resolves_non_ll1_alternatives() {
        // Common prefix: LL(1) conflict, but ordered backtracking succeeds.
        let g = parse_grammar("grammar g; a : X Y #xy | X Z #xz ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; Z = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert_eq!(p.parse("X Y").unwrap().label(), Some("xy"));
        assert_eq!(p.parse("X Z").unwrap().label(), Some("xz"));
        assert_eq!(p.stats().conflicts, 1);
    }

    #[test]
    fn optional_fallback_backtracks() {
        // b? followed by IDENT where b also starts with IDENT: greedy take
        // of b? must fall back when the suffix then fails.
        let g = parse_grammar("grammar g; a : b? IDENT ; b : IDENT IDENT ;").unwrap();
        let t =
            parse_tokens("tokens t; IDENT = /[a-z]+/; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        // one ident: optional not taken
        assert!(p.parse("x").is_ok());
        // three idents: optional taken
        assert!(p.parse("x y z").is_ok());
    }

    #[test]
    fn stats_reported() {
        let p = select_parser(EngineMode::Backtracking);
        let s = p.stats();
        assert_eq!(s.productions, 5);
        assert!(s.flat_productions > s.productions);
        assert!(s.table_cells > 0);
        assert!(s.dfa_states > 5);
        assert_eq!(s.token_rules, 11);
    }

    #[test]
    fn empty_input_rejected_when_not_nullable() {
        let p = select_parser(EngineMode::Backtracking);
        let err = p.parse("").unwrap_err();
        assert!(err.expected.contains("SELECT"));
    }

    #[test]
    fn star_of_nullable_body_rejected_at_build() {
        // (b)* with nullable b is ill-formed for LL parsing (the lowered
        // right-recursion is left-recursive through the nullable prefix);
        // it must be rejected at build time rather than spin at parse time.
        let g = parse_grammar("grammar g; a : (b)* X ; b : Y | ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; WS = skip / +/;").unwrap();
        assert!(matches!(Parser::new(g, &t), Err(BuildError::LeftRecursive(_))));
    }

    #[test]
    fn star_of_non_nullable_body_loops_fine() {
        let g = parse_grammar("grammar g; a : (b)* X ; b : Y ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert!(p.parse("X").is_ok());
        assert!(p.parse("Y Y X").is_ok());
    }

    #[test]
    fn tokbits_basics() {
        let mut b = TokBits::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1) && !b.contains(128));
        let ids: Vec<u32> = b.iter_ids().collect();
        assert_eq!(ids, [0, 64, 129]);
        let mut c = TokBits::new(130);
        c.insert(5);
        c.union_with(&b);
        assert!(c.contains(5) && c.contains(129));
        c.clear();
        assert_eq!(c.iter_ids().count(), 0);
    }

    #[test]
    fn engine_mode_hashes_distinctly() {
        // The bench parser cache keys on EngineMode directly; a collision
        // between modes would silently serve the wrong engine.
        use std::collections::HashSet;
        let set: HashSet<(&str, EngineMode)> = [
            ("pico", EngineMode::Backtracking),
            ("pico", EngineMode::Ll1Table),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn notes_skip_positions_behind_the_frontier() {
        let mut notes = Notes::new(130);
        let mut set = TokBits::new(130);
        set.insert(7);
        notes.note_id(3, 1);
        assert_eq!(notes.farthest, 3);
        // Behind the frontier: recorded nothing, frontier unchanged.
        notes.note_set(1, &set);
        notes.note_id(0, 9);
        notes.note_eof(2);
        assert_eq!(notes.farthest, 3);
        assert_eq!(notes.expected.iter_ids().collect::<Vec<_>>(), [1]);
        assert!(!notes.expected_eof);
        // Ties union; advances clear.
        notes.note_set(3, &set);
        assert_eq!(notes.expected.iter_ids().collect::<Vec<_>>(), [1, 7]);
        notes.note_id(5, 2);
        assert_eq!(notes.expected.iter_ids().collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn failure_memo_records_and_replays() {
        let mut memo = FailureMemo::default();
        memo.reset(4, 10);
        assert!(!memo.failed(2, 3));
        memo.record(2, 3);
        assert!(memo.failed(2, 3));
        assert!(!memo.failed(2, 4));
        assert!(!memo.failed(3, 3));
        assert_eq!(memo.hits(), 1);
        // reset clears the map but keeps the hit counter cumulative
        memo.reset(4, 10);
        assert!(!memo.failed(2, 3));
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn dispatch_resolves_common_prefix_without_backtracking() {
        // `a : X Y | X Z` conflicts on X at k=1 but is LL(2); the compiled
        // dispatch table must select the right alternative directly.
        let g = parse_grammar("grammar g; a : X Y #xy | X Z #xz ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; Z = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert_eq!(p.decision_tables(), 1);
        let mut s = p.session();
        assert_eq!(s.parse_tree("X Z").unwrap().to_cst().label(), Some("xz"));
        let stats = s.stats();
        assert!(stats.decision_table_hits >= 1, "stats: {stats:?}");
        assert_eq!(stats.backtracks, 0, "stats: {stats:?}");
        assert_eq!(s.parse_tree("X Y").unwrap().to_cst().label(), Some("xy"));
        assert_eq!(s.stats().backtracks, 0);
    }

    #[test]
    fn lookahead_limit_disables_dispatch() {
        let g = parse_grammar("grammar g; a : X Y #xy | X Z #xz ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; Z = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap().with_lookahead_k(1);
        assert_eq!(p.lookahead_k(), 1);
        let mut s = p.session();
        assert_eq!(s.parse_tree("X Z").unwrap().to_cst().label(), Some("xz"));
        let stats = s.stats();
        assert_eq!(stats.decision_table_hits, 0, "stats: {stats:?}");
        assert!(stats.backtracks >= 1, "stats: {stats:?}");
    }

    #[test]
    fn dispatch_skips_doomed_star_probe() {
        // `stmt (SEMI stmt)* SEMI?` — at the trailing SEMI the star's
        // continue-probe is doomed; the k=2 table proves the exit arm.
        let g = parse_grammar(
            "grammar g; start script; script : stmt (SEMI stmt)* SEMI? ; stmt : A ;",
        )
        .unwrap();
        let t = parse_tokens("tokens t; A = kw; SEMI = \";\"; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert!(p.decision_tables() >= 1);
        let mut s = p.session();
        assert!(s.parse_tree("A ; A ;").is_ok());
        let stats = s.stats();
        assert_eq!(stats.backtracks, 0, "stats: {stats:?}");
        assert!(stats.decision_table_hits >= 1, "stats: {stats:?}");
        // Seed behavior without tables: the same input costs a backtrack.
        let p1 = {
            let g = parse_grammar(
                "grammar g; start script; script : stmt (SEMI stmt)* SEMI? ; stmt : A ;",
            )
            .unwrap();
            let t = parse_tokens("tokens t; A = kw; SEMI = \";\"; WS = skip / +/;").unwrap();
            Parser::new(g, &t).unwrap().with_lookahead_k(1)
        };
        let mut s1 = p1.session();
        assert!(s1.parse_tree("A ; A ;").is_ok());
        assert!(s1.stats().backtracks >= 1, "stats: {:?}", s1.stats());
    }

    #[test]
    fn dispatch_errors_match_seed_errors() {
        let g = parse_grammar("grammar g; a : X Y #xy | X Z #xz ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; Z = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        for bad in ["X", "X X", "Y", "X Y Z", ""] {
            let with = p.parse(bad).unwrap_err();
            let without = p.parse_reference(bad).unwrap_err();
            assert_eq!(with, without, "diverged on {bad:?}");
        }
    }

    #[test]
    fn memoized_probes_hit_on_group_reentry() {
        // `a : b X | b Y ;` — the second alternative re-probes `b` at the
        // same position after the first fails on the trailing token.
        let g = parse_grammar("grammar g; a : b X | b Y ; b : Z Z ;").unwrap();
        let t = parse_tokens("tokens t; X = kw; Y = kw; Z = kw; WS = skip / +/;").unwrap();
        let p = Parser::new(g, &t).unwrap();
        assert!(p.parse("Z Z Y").is_ok());
        // and a failing probe is memoized: `b` fails at position 0 once,
        // the second alternative's probe must answer from the memo.
        let mut s = p.session();
        assert!(s.parse_tree("Z X").is_err());
        assert!(s.memo_hits() >= 1, "expected memo hits, got {}", s.memo_hits());
    }
}

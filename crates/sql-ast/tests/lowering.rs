//! Lowering + printing round-trip tests across dialects.
//!
//! Round-trip property: `parse → lower → print → parse → lower` is a fixed
//! point (the printed SQL re-parses to the identical AST).

use sqlweave_dialects::Dialect;
use sqlweave_parser_rt::engine::Parser;
use sqlweave_sql_ast::ast::*;
use sqlweave_sql_ast::{lower, print};

fn lower_one(parser: &Parser, sql: &str) -> Statement {
    let cst = parser
        .parse(sql)
        .unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
    let stmts = lower::lower_script(&cst).unwrap_or_else(|e| panic!("lower {sql:?}: {e}"));
    assert_eq!(stmts.len(), 1, "expected one statement in {sql:?}");
    stmts.into_iter().next().unwrap()
}

fn roundtrip(parser: &Parser, sql: &str) {
    let ast1 = lower_one(parser, sql);
    let printed = print::statement(&ast1);
    let ast2 = lower_one(parser, &printed);
    assert_eq!(ast1, ast2, "round-trip changed AST:\n  in:  {sql}\n  out: {printed}");
}

#[test]
fn select_shapes() {
    let p = Dialect::Core.parser().unwrap();
    let ast = lower_one(&p, "SELECT DISTINCT a, b AS bee FROM t WHERE a = 1");
    let Statement::Query(q) = &ast else { panic!("not a query") };
    let QueryBody::Select(s) = &q.body else { panic!("not a select") };
    assert_eq!(s.quantifier, Some(SetQuantifier::Distinct));
    assert_eq!(s.projection.len(), 2);
    assert!(matches!(
        &s.projection[1],
        SelectItem::Expr { alias: Some(a), .. } if a == "bee"
    ));
    assert!(matches!(
        s.selection,
        Some(Expr::Binary { op: BinaryOp::Eq, .. })
    ));
}

#[test]
fn expression_precedence_shape() {
    let p = Dialect::Core.parser().unwrap();
    let ast = lower_one(&p, "SELECT a + b * c FROM t");
    let Statement::Query(q) = &ast else { panic!() };
    let QueryBody::Select(s) = &q.body else { panic!() };
    let SelectItem::Expr { expr, .. } = &s.projection[0] else { panic!() };
    // a + (b * c): multiplication binds tighter
    let Expr::Binary { op: BinaryOp::Plus, right, .. } = expr else {
        panic!("top is {expr:?}")
    };
    assert!(matches!(**right, Expr::Binary { op: BinaryOp::Multiply, .. }));
}

#[test]
fn boolean_precedence_shape() {
    let p = Dialect::Core.parser().unwrap();
    let ast = lower_one(&p, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
    let Statement::Query(q) = &ast else { panic!() };
    let QueryBody::Select(s) = &q.body else { panic!() };
    // OR at top, AND beneath its right side.
    let Some(Expr::Binary { op: BinaryOp::Or, right, .. }) = &s.selection else {
        panic!("{:?}", s.selection)
    };
    assert!(matches!(**right, Expr::Binary { op: BinaryOp::And, .. }));
}

#[test]
fn join_tree() {
    let p = Dialect::Core.parser().unwrap();
    let ast = lower_one(&p, "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y");
    let Statement::Query(q) = &ast else { panic!() };
    let QueryBody::Select(s) = &q.body else { panic!() };
    let TableRef::Join { kind, condition, .. } = &s.from[0] else {
        panic!("{:?}", s.from)
    };
    assert_eq!(*kind, JoinKind::Left);
    assert!(matches!(condition, JoinCondition::On(_)));
}

#[test]
fn roundtrips_core() {
    let p = Dialect::Core.parser().unwrap();
    for sql in [
        "SELECT a FROM t",
        "SELECT * FROM t",
        "SELECT DISTINCT a, b AS x FROM t, u WHERE a = b",
        "SELECT a FROM t WHERE NOT (a < 1 OR b > 2) AND c = 3",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 10",
        "SELECT a FROM t WHERE a IN (1, 2, 3)",
        "SELECT a FROM t WHERE name LIKE 'x%' ESCAPE '!'",
        "SELECT a FROM t WHERE b IS NOT NULL",
        "SELECT a FROM (SELECT a FROM u) AS v",
        "SELECT SUM(a + b * c) FROM t",
        "SELECT -a, +b FROM t",
        "INSERT INTO t VALUES (1, 'two', TRUE, NULL)",
        "INSERT INTO t (a, b) VALUES (1, 2), (3, DEFAULT)",
        "UPDATE t SET a = 1, b = DEFAULT WHERE c = 2",
        "DELETE FROM t WHERE a = 1",
        "CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR(40) DEFAULT 'x', CONSTRAINT pk PRIMARY KEY (id), FOREIGN KEY (name) REFERENCES u (n) ON DELETE CASCADE)",
        "DROP TABLE t RESTRICT",
        "START TRANSACTION READ ONLY, ISOLATION LEVEL READ COMMITTED",
        "COMMIT",
        "ROLLBACK TO SAVEPOINT sp",
        "SAVEPOINT sp",
    ] {
        roundtrip(&p, sql);
    }
}

#[test]
fn roundtrips_warehouse() {
    let p = Dialect::Warehouse.parser().unwrap();
    for sql in [
        "SELECT a FROM t UNION ALL SELECT b FROM u",
        "SELECT a FROM t INTERSECT SELECT b FROM u ORDER BY a OFFSET 5 ROWS FETCH FIRST 10 ROWS ONLY",
        "WITH RECURSIVE r (n) AS (SELECT a FROM t) SELECT * FROM r",
        "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END FROM t",
        "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t",
        "SELECT NULLIF(a, b), COALESCE(a, b, 1) FROM t",
        "SELECT CAST(a AS DECIMAL(10, 2)) FROM t",
        "SELECT region, SUM(x) FROM f GROUP BY ROLLUP (region, yr)",
        "SELECT a FROM f GROUP BY GROUPING SETS (a, ROLLUP (b, c))",
        "SELECT a FROM t WHERE EXISTS (SELECT b FROM u)",
        "SELECT a FROM t WHERE a = ALL (SELECT b FROM u)",
        "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
        "SELECT t.* FROM t",
        "SELECT a FROM t ORDER BY a DESC NULLS LAST",
        "SELECT a FROM t CROSS JOIN u",
        "SELECT a FROM t NATURAL JOIN u",
        "SELECT a FROM t JOIN u USING (x, y)",
        "CREATE VIEW v (a, b) AS SELECT x, y FROM t WITH CHECK OPTION",
        "SELECT EXTRACT(YEAR FROM d) FROM t",
        "SELECT CURRENT_TIMESTAMP FROM t",
    ] {
        roundtrip(&p, sql);
    }
}

#[test]
fn roundtrips_full() {
    let p = Dialect::Full.parser().unwrap();
    for sql in [
        "MERGE INTO t USING u ON t.a = u.a WHEN MATCHED THEN UPDATE SET b = 1 WHEN NOT MATCHED THEN INSERT (a, b) VALUES (1, 2)",
        "CREATE SCHEMA s AUTHORIZATION owner_1",
        "CREATE DOMAIN d AS INTEGER DEFAULT 0 CHECK (x > 0)",
        "ALTER TABLE t ADD COLUMN c BOOLEAN",
        "ALTER TABLE t DROP COLUMN c CASCADE",
        "ALTER TABLE t ALTER COLUMN c SET DEFAULT 5",
        "ALTER TABLE t DROP CONSTRAINT ck RESTRICT",
        "GRANT SELECT, INSERT ON t TO alice, PUBLIC WITH GRANT OPTION",
        "REVOKE GRANT OPTION FOR UPDATE ON t FROM bob CASCADE",
        "SET SCHEMA accounting",
        "SET TIME ZONE LOCAL",
        "DECLARE c1 INSENSITIVE SCROLL CURSOR WITH HOLD FOR SELECT a FROM t",
        "OPEN c1",
        "FETCH ABSOLUTE 5 FROM c1",
        "CLOSE c1",
        "SELECT nodeid FROM sensors EPOCH DURATION 1024 SAMPLE PERIOD 10 LIFETIME 30",
        "SELECT SUBSTRING(s FROM 1 FOR 2), TRIM(LEADING FROM s), POSITION(a IN b) FROM t",
        "SELECT MOD(a, b), ABS(c), FLOOR(d), POWER(x, 2), SQRT(y) FROM t",
        "SELECT COUNT(DISTINCT a), SUM(ALL b) FROM t",
        "SELECT a || b || 'x' FROM t",
        "SELECT DATE '2026-01-01', TIME '12:00:00', TIMESTAMP '2026-01-01 12:00:00' FROM t",
        "SELECT INTERVAL '1' DAY, INTERVAL - '2' YEAR TO MONTH FROM t",
        "CREATE GLOBAL TEMPORARY TABLE tt (a INTEGER)",
        "CREATE TABLE arr (xs INTEGER ARRAY[10])",
        "SELECT a FROM t WHERE x IS DISTINCT FROM y",
        "SELECT a FROM t WHERE x OVERLAPS y",
    ] {
        roundtrip(&p, sql);
    }
}

#[test]
fn multi_statement_script() {
    let p = Dialect::Full.parser().unwrap();
    let cst = p.parse("SELECT a FROM t; DELETE FROM t; COMMIT;").unwrap();
    let stmts = lower::lower_script(&cst).unwrap();
    assert_eq!(stmts.len(), 3);
    assert!(matches!(stmts[0], Statement::Query(_)));
    assert!(matches!(stmts[1], Statement::Delete(_)));
    assert!(matches!(
        stmts[2],
        Statement::Transaction(TransactionStatement::Commit)
    ));
}

#[test]
fn string_literal_unescaping() {
    let p = Dialect::Core.parser().unwrap();
    let ast = lower_one(&p, "SELECT a FROM t WHERE s = 'it''s'");
    let printed = print::statement(&ast);
    assert!(printed.contains("'it''s'"), "{printed}");
    let Statement::Query(q) = &ast else { panic!() };
    let QueryBody::Select(s) = &q.body else { panic!() };
    let Some(Expr::Binary { right, .. }) = &s.selection else { panic!() };
    assert_eq!(**right, Expr::Literal(Literal::String("it's".into())));
}

#[test]
fn tiny_dialect_lowering_includes_sensor_clauses() {
    let p = Dialect::Tiny.parser().unwrap();
    let ast = lower_one(
        &p,
        "SELECT nodeid, AVG(temp) FROM sensors GROUP BY nodeid EPOCH DURATION 1024",
    );
    let Statement::Query(q) = &ast else { panic!() };
    let QueryBody::Select(s) = &q.body else { panic!() };
    assert_eq!(s.sensor.epoch_duration.as_deref(), Some("1024"));
    assert_eq!(s.group_by.len(), 1);
}

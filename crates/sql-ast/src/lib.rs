//! Typed SQL AST, CST → AST lowering (the semantic-actions layer), and an
//! AST → SQL pretty-printer for the `sqlweave` product line.
//!
//! Where the paper attaches semantics to generated parsers with the Jak
//! language and feature-oriented tools, this crate lowers the concrete
//! syntax trees produced by any composed parser into one shared typed AST —
//! dialects that exclude features simply never produce the corresponding
//! variants. The monolithic baseline parser (`sqlweave-baseline`) targets
//! the same AST, enabling differential testing between the composed and
//! conventional parsers.
//!
//! ```
//! use sqlweave_dialects::Dialect;
//! use sqlweave_sql_ast::{lower, print};
//!
//! let parser = Dialect::Core.parser().unwrap();
//! let cst = parser.parse("SELECT a, b AS bee FROM t WHERE a = 1").unwrap();
//! let stmts = lower::lower_script(&cst).unwrap();
//! let sql = print::statement(&stmts[0]);
//! assert_eq!(sql, "SELECT a, b AS bee FROM t WHERE a = 1");
//! ```

pub mod ast;
pub mod lower;
pub mod print;

pub use ast::{Expr, Literal, Query, Select, Statement};
pub use lower::{lower_script, lower_statement, LowerError};
pub use print::statement as print_statement;

//! AST → SQL text. The output re-parses in any dialect that includes the
//! statement's features (round-trip property tests rely on this).

use crate::ast::*;
use std::fmt::Write as _;

fn joined<T>(items: &[T], sep: &str, f: impl Fn(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(sep)
}

fn name(n: &QualifiedName) -> String {
    n.join(".")
}

fn name_ref(n: &QualifiedName) -> String {
    name(n)
}

/// Render a statement.
pub fn statement(s: &Statement) -> String {
    match s {
        Statement::Query(q) => query(q),
        Statement::Insert(i) => insert(i),
        Statement::Update(u) => update(u),
        Statement::Delete(d) => delete(d),
        Statement::Merge(m) => merge(m),
        Statement::CreateTable(c) => create_table(c),
        Statement::CreateView(v) => create_view(v),
        Statement::CreateSchema { name, authorization } => match authorization {
            Some(a) => format!("CREATE SCHEMA {name} AUTHORIZATION {a}"),
            None => format!("CREATE SCHEMA {name}"),
        },
        Statement::CreateDomain { name, data_type, default, check } => {
            let mut out = format!("CREATE DOMAIN {name} AS {}", print_type(data_type));
            if let Some(d) = default {
                let _ = write!(out, " DEFAULT {}", literal(d));
            }
            if let Some(c) = check {
                let _ = write!(out, " CHECK ({})", expr(c));
            }
            out
        }
        Statement::AlterTable { name: n, action } => {
            format!("ALTER TABLE {} {}", name(n), alter_action(action))
        }
        Statement::Drop { kind, name: n, behavior } => {
            let kind = match kind {
                ObjectKind::Table => "TABLE",
                ObjectKind::View => "VIEW",
                ObjectKind::Schema => "SCHEMA",
                ObjectKind::Domain => "DOMAIN",
            };
            let mut out = format!("DROP {kind} {}", name(n));
            push_behavior(&mut out, behavior);
            out
        }
        Statement::Grant(g) => grant(g, false),
        Statement::Revoke(g) => grant(g, true),
        Statement::Transaction(t) => transaction(t),
        Statement::Session(s) => session(s),
        Statement::Cursor(c) => cursor(c),
    }
}

fn push_behavior(out: &mut String, behavior: &Option<DropBehavior>) {
    match behavior {
        Some(DropBehavior::Cascade) => out.push_str(" CASCADE"),
        Some(DropBehavior::Restrict) => out.push_str(" RESTRICT"),
        None => {}
    }
}

/// Render a query.
pub fn query(q: &Query) -> String {
    let mut out = String::new();
    if !q.with.is_empty() {
        out.push_str("WITH ");
        if q.recursive {
            out.push_str("RECURSIVE ");
        }
        let ctes = joined(&q.with, ", ", |c| {
            let cols = if c.columns.is_empty() {
                String::new()
            } else {
                format!(" ({})", c.columns.join(", "))
            };
            format!("{}{cols} AS ({})", c.name, query(&c.query))
        });
        out.push_str(&ctes);
        out.push(' ');
    }
    out.push_str(&query_body(&q.body));
    if !q.order_by.is_empty() {
        let _ = write!(out, " ORDER BY {}", joined(&q.order_by, ", ", sort_spec));
    }
    if let Some(o) = &q.offset {
        let _ = write!(out, " OFFSET {o} ROWS");
    }
    if let Some(f) = &q.fetch {
        let _ = write!(out, " FETCH FIRST {f} ROWS ONLY");
    }
    out
}

fn query_body(b: &QueryBody) -> String {
    match b {
        QueryBody::Select(s) => select(s),
        QueryBody::Nested(q) => format!("({})", query(q)),
        QueryBody::SetOp { left, op, quantifier, right } => {
            let op = match op {
                SetOp::Union => "UNION",
                SetOp::Except => "EXCEPT",
                SetOp::Intersect => "INTERSECT",
            };
            let q = match quantifier {
                Some(SetQuantifier::All) => " ALL",
                Some(SetQuantifier::Distinct) => " DISTINCT",
                None => "",
            };
            format!("{} {op}{q} {}", query_body(left), query_body(right))
        }
    }
}

fn select(s: &Select) -> String {
    let mut out = String::from("SELECT ");
    match s.quantifier {
        Some(SetQuantifier::All) => out.push_str("ALL "),
        Some(SetQuantifier::Distinct) => out.push_str("DISTINCT "),
        None => {}
    }
    out.push_str(&joined(&s.projection, ", ", select_item));
    if !s.from.is_empty() {
        let _ = write!(out, " FROM {}", joined(&s.from, ", ", table_ref));
    }
    if let Some(w) = &s.selection {
        let _ = write!(out, " WHERE {}", expr(w));
    }
    if !s.group_by.is_empty() {
        let _ = write!(out, " GROUP BY {}", joined(&s.group_by, ", ", grouping));
    }
    if let Some(h) = &s.having {
        let _ = write!(out, " HAVING {}", expr(h));
    }
    if !s.windows.is_empty() {
        let _ = write!(out, " WINDOW {}", joined(&s.windows, ", ", window_def));
    }
    if let Some(e) = &s.sensor.epoch_duration {
        let _ = write!(out, " EPOCH DURATION {e}");
    }
    if let Some(e) = &s.sensor.sample_period {
        let _ = write!(out, " SAMPLE PERIOD {e}");
    }
    if let Some(e) = &s.sensor.lifetime {
        let _ = write!(out, " LIFETIME {e}");
    }
    out
}

fn select_item(i: &SelectItem) -> String {
    match i {
        SelectItem::Star => "*".into(),
        SelectItem::QualifiedStar(q) => format!("{}.*", name(q)),
        SelectItem::Expr { expr: e, alias } => match alias {
            Some(a) => format!("{} AS {a}", expr(e)),
            None => expr(e),
        },
    }
}

fn table_ref(t: &TableRef) -> String {
    match t {
        TableRef::Named { name: n, alias } => match alias {
            Some(a) => format!("{} AS {a}", name(n)),
            None => name(n),
        },
        TableRef::Derived { query: q, alias } => match alias {
            Some(a) => format!("({}) AS {a}", query(q)),
            None => format!("({})", query(q)),
        },
        TableRef::Join { left, kind, right, condition } => {
            let kw = match kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT OUTER JOIN",
                JoinKind::Right => "RIGHT OUTER JOIN",
                JoinKind::Full => "FULL OUTER JOIN",
                JoinKind::Cross => "CROSS JOIN",
                JoinKind::Natural => "NATURAL JOIN",
            };
            let cond = match condition {
                JoinCondition::None => String::new(),
                JoinCondition::On(e) => format!(" ON {}", expr(e)),
                JoinCondition::Using(cols) => format!(" USING ({})", cols.join(", ")),
            };
            format!("{} {kw} {}{cond}", table_ref(left), table_ref(right))
        }
    }
}

fn grouping(g: &GroupingElement) -> String {
    match g {
        GroupingElement::Column(c) => name(c),
        GroupingElement::Rollup(cols) => format!("ROLLUP ({})", joined(cols, ", ", name)),
        GroupingElement::Cube(cols) => format!("CUBE ({})", joined(cols, ", ", name)),
        GroupingElement::GroupingSets(elems) => {
            format!("GROUPING SETS ({})", joined(elems, ", ", grouping))
        }
    }
}

fn sort_spec(s: &SortSpec) -> String {
    let mut out = expr(&s.expr);
    if s.descending {
        out.push_str(" DESC");
    }
    match s.nulls_first {
        Some(true) => out.push_str(" NULLS FIRST"),
        Some(false) => out.push_str(" NULLS LAST"),
        None => {}
    }
    out
}

fn window_def(w: &WindowDef) -> String {
    let mut inner = Vec::new();
    if !w.partition_by.is_empty() {
        inner.push(format!("PARTITION BY {}", joined(&w.partition_by, ", ", name)));
    }
    if !w.order_by.is_empty() {
        inner.push(format!("ORDER BY {}", joined(&w.order_by, ", ", sort_spec)));
    }
    if let Some(f) = &w.frame {
        inner.push(f.clone());
    }
    format!("{} AS ({})", w.name, inner.join(" "))
}

/// Render an expression.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Column(c) => name(c),
        Expr::Literal(l) => literal(l),
        Expr::Unary { op, expr: inner } => match op {
            UnaryOp::Plus => format!("+{}", expr(inner)),
            UnaryOp::Minus => format!("-{}", expr(inner)),
            UnaryOp::Not => format!("NOT {}", expr(inner)),
        },
        Expr::Binary { left, op, right } => {
            format!("{} {} {}", expr(left), op.sql(), expr(right))
        }
        Expr::Nested(inner) => format!("({})", expr(inner)),
        Expr::Function { name, quantifier, args } => {
            let q = match quantifier {
                Some(SetQuantifier::Distinct) => "DISTINCT ",
                Some(SetQuantifier::All) => "ALL ",
                None => "",
            };
            if args.is_empty() && name.starts_with("CURRENT_") {
                name.clone()
            } else {
                format!("{name}({q}{})", joined(args, ", ", expr))
            }
        }
        Expr::Wildcard => "*".into(),
        Expr::Case { operand, when_then, else_expr } => {
            let mut out = String::from("CASE");
            if let Some(op) = operand {
                let _ = write!(out, " {}", expr(op));
            }
            for (w, t) in when_then {
                let _ = write!(out, " WHEN {} THEN {}", expr(w), expr(t));
            }
            if let Some(el) = else_expr {
                let _ = write!(out, " ELSE {}", expr(el));
            }
            out.push_str(" END");
            out
        }
        Expr::Cast { expr: inner, data_type } => {
            format!("CAST({} AS {})", expr(inner), print_type(data_type))
        }
        Expr::Extract { field, expr: inner } => {
            format!("EXTRACT({field} FROM {})", expr(inner))
        }
        Expr::Substring { expr: inner, from, len } => match len {
            Some(l) => format!("SUBSTRING({} FROM {} FOR {})", expr(inner), expr(from), expr(l)),
            None => format!("SUBSTRING({} FROM {})", expr(inner), expr(from)),
        },
        Expr::Trim { spec, expr: inner } => match spec {
            Some(s) => format!("TRIM({s} FROM {})", expr(inner)),
            None => format!("TRIM({})", expr(inner)),
        },
        Expr::Position { needle, haystack } => {
            format!("POSITION({} IN {})", expr(needle), expr(haystack))
        }
        Expr::Subquery(q) => format!("({})", query(q)),
        Expr::Exists(q) => format!("EXISTS ({})", query(q)),
        Expr::Between { expr: inner, negated, low, high } => format!(
            "{}{} BETWEEN {} AND {}",
            expr(inner),
            if *negated { " NOT" } else { "" },
            expr(low),
            expr(high)
        ),
        Expr::InList { expr: inner, negated, list } => format!(
            "{}{} IN ({})",
            expr(inner),
            if *negated { " NOT" } else { "" },
            joined(list, ", ", expr)
        ),
        Expr::InSubquery { expr: inner, negated, query: q } => format!(
            "{}{} IN ({})",
            expr(inner),
            if *negated { " NOT" } else { "" },
            query(q)
        ),
        Expr::Like { expr: inner, negated, pattern, escape } => {
            let mut out = format!(
                "{}{} LIKE {}",
                expr(inner),
                if *negated { " NOT" } else { "" },
                expr(pattern)
            );
            if let Some(e) = escape {
                let _ = write!(out, " ESCAPE {}", expr(e));
            }
            out
        }
        Expr::IsNull { expr: inner, negated } => format!(
            "{} IS{} NULL",
            expr(inner),
            if *negated { " NOT" } else { "" }
        ),
        Expr::IsTruthValue { expr: inner, negated, value } => format!(
            "{} IS{} {value}",
            expr(inner),
            if *negated { " NOT" } else { "" }
        ),
        Expr::WindowFunction { name, partition_by, order_by, frame } => {
            let mut inner = Vec::new();
            if !partition_by.is_empty() {
                inner.push(format!("PARTITION BY {}", joined(partition_by, ", ", name_ref)));
            }
            if !order_by.is_empty() {
                inner.push(format!("ORDER BY {}", joined(order_by, ", ", sort_spec)));
            }
            if let Some(f) = frame {
                inner.push(f.clone());
            }
            format!("{name}() OVER ({})", inner.join(" "))
        }
        Expr::IsDistinctFrom { expr: inner, negated, other } => format!(
            "{} IS{} DISTINCT FROM {}",
            expr(inner),
            if *negated { " NOT" } else { "" },
            expr(other)
        ),
        Expr::Quantified { expr: inner, op, quantifier, query: q } => {
            format!("{} {} {quantifier} ({})", expr(inner), op.sql(), query(q))
        }
        Expr::Default => "DEFAULT".into(),
    }
}

/// Quote a character-string body, doubling embedded quotes.
fn quoted(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Render a literal.
pub fn literal(l: &Literal) -> String {
    match l {
        Literal::Number(n) => n.clone(),
        Literal::String(s) => quoted(s),
        Literal::Boolean(true) => "TRUE".into(),
        Literal::Boolean(false) => "FALSE".into(),
        Literal::Null => "NULL".into(),
        Literal::Date(s) => format!("DATE {}", quoted(s)),
        Literal::Time(s) => format!("TIME {}", quoted(s)),
        Literal::Timestamp(s) => format!("TIMESTAMP {}", quoted(s)),
        Literal::Interval { negative, value, qualifier } => format!(
            "INTERVAL {}{} {qualifier}",
            if *negative { "- " } else { "" },
            quoted(value)
        ),
    }
}

/// Render a data type.
pub fn print_type(t: &DataType) -> String {
    let with_len = |kw: &str, len: &Option<String>| match len {
        Some(l) => format!("{kw}({l})"),
        None => kw.to_string(),
    };
    match t {
        DataType::Character { varying, length } => {
            let kw = if *varying { "CHAR VARYING" } else { "CHAR" };
            with_len(kw, length)
        }
        DataType::Varchar(l) => with_len("VARCHAR", l),
        DataType::Clob => "CLOB".into(),
        DataType::Decimal { precision, scale } => match (precision, scale) {
            (Some(p), Some(s)) => format!("DECIMAL({p}, {s})"),
            (Some(p), None) => format!("DECIMAL({p})"),
            _ => "DECIMAL".into(),
        },
        DataType::SmallInt => "SMALLINT".into(),
        DataType::Integer => "INTEGER".into(),
        DataType::BigInt => "BIGINT".into(),
        DataType::Float(l) => with_len("FLOAT", l),
        DataType::Real => "REAL".into(),
        DataType::Double => "DOUBLE PRECISION".into(),
        DataType::Boolean => "BOOLEAN".into(),
        DataType::Date => "DATE".into(),
        DataType::Time { precision, with_time_zone } => {
            let mut out = with_len("TIME", precision);
            match with_time_zone {
                Some(true) => out.push_str(" WITH TIME ZONE"),
                Some(false) => out.push_str(" WITHOUT TIME ZONE"),
                None => {}
            }
            out
        }
        DataType::Timestamp { precision, with_time_zone } => {
            let mut out = with_len("TIMESTAMP", precision);
            match with_time_zone {
                Some(true) => out.push_str(" WITH TIME ZONE"),
                Some(false) => out.push_str(" WITHOUT TIME ZONE"),
                None => {}
            }
            out
        }
        DataType::Interval(q) => format!("INTERVAL {q}"),
        DataType::Blob => "BLOB".into(),
        DataType::Binary { varying, length } => {
            let kw = if *varying { "BINARY VARYING" } else { "BINARY" };
            with_len(kw, length)
        }
        DataType::Array { element, bound } => match bound {
            Some(b) => format!("{} ARRAY[{b}]", print_type(element)),
            None => format!("{} ARRAY", print_type(element)),
        },
    }
}

fn insert(i: &Insert) -> String {
    let cols = if i.columns.is_empty() {
        String::new()
    } else {
        format!(" ({})", i.columns.join(", "))
    };
    let source = match &i.source {
        InsertSource::Values(rows) => format!(
            "VALUES {}",
            joined(rows, ", ", |row| format!("({})", joined(row, ", ", expr)))
        ),
        InsertSource::Query(q) => query(q),
        InsertSource::DefaultValues => "DEFAULT VALUES".into(),
    };
    format!("INSERT INTO {}{cols} {source}", name(&i.table))
}

fn assignments(a: &[(String, Expr)]) -> String {
    joined(a, ", ", |(c, e)| format!("{c} = {}", expr(e)))
}

fn update(u: &Update) -> String {
    let mut out = format!("UPDATE {} SET {}", name(&u.table), assignments(&u.assignments));
    push_selection(&mut out, &u.selection);
    out
}

fn push_selection(out: &mut String, sel: &Option<UpdateSelection>) {
    match sel {
        Some(UpdateSelection::Searched(e)) => {
            let _ = write!(out, " WHERE {}", expr(e));
        }
        Some(UpdateSelection::CurrentOf(c)) => {
            let _ = write!(out, " WHERE CURRENT OF {c}");
        }
        None => {}
    }
}

fn delete(d: &Delete) -> String {
    let mut out = format!("DELETE FROM {}", name(&d.table));
    push_selection(&mut out, &d.selection);
    out
}

fn merge(m: &Merge) -> String {
    let mut out = format!(
        "MERGE INTO {} USING {} ON {}",
        name(&m.target),
        name(&m.source),
        expr(&m.on)
    );
    for w in &m.when {
        match w {
            MergeWhen::MatchedUpdate(a) => {
                let _ = write!(out, " WHEN MATCHED THEN UPDATE SET {}", assignments(a));
            }
            MergeWhen::NotMatchedInsert { columns, values } => {
                let cols = if columns.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", columns.join(", "))
                };
                let _ = write!(
                    out,
                    " WHEN NOT MATCHED THEN INSERT{cols} VALUES ({})",
                    joined(values, ", ", expr)
                );
            }
        }
    }
    out
}

fn column_def(c: &ColumnDef) -> String {
    let mut out = format!("{} {}", c.name, print_type(&c.data_type));
    if let Some(d) = &c.default {
        let _ = write!(out, " DEFAULT {}", literal(d));
    }
    if c.identity {
        out.push_str(" GENERATED ALWAYS AS IDENTITY");
    }
    for cc in &c.constraints {
        out.push(' ');
        out.push_str(&match cc {
            ColumnConstraint::NotNull => "NOT NULL".to_string(),
            ColumnConstraint::Unique => "UNIQUE".to_string(),
            ColumnConstraint::PrimaryKey => "PRIMARY KEY".to_string(),
            ColumnConstraint::Check(e) => format!("CHECK ({})", expr(e)),
            ColumnConstraint::References { table, columns } => {
                if columns.is_empty() {
                    format!("REFERENCES {}", name(table))
                } else {
                    format!("REFERENCES {} ({})", name(table), columns.join(", "))
                }
            }
        });
    }
    out
}

fn table_constraint(tc: &TableConstraint) -> String {
    let mut out = String::new();
    if let Some(n) = &tc.name {
        let _ = write!(out, "CONSTRAINT {n} ");
    }
    out.push_str(&match &tc.body {
        TableConstraintBody::PrimaryKey(cols) => format!("PRIMARY KEY ({})", cols.join(", ")),
        TableConstraintBody::Unique(cols) => format!("UNIQUE ({})", cols.join(", ")),
        TableConstraintBody::ForeignKey { columns, table, ref_columns, on_delete, on_update } => {
            let mut s = format!("FOREIGN KEY ({}) REFERENCES {}", columns.join(", "), name(table));
            if !ref_columns.is_empty() {
                let _ = write!(s, " ({})", ref_columns.join(", "));
            }
            if let Some(a) = on_delete {
                let _ = write!(s, " ON DELETE {a}");
            }
            if let Some(a) = on_update {
                let _ = write!(s, " ON UPDATE {a}");
            }
            s
        }
        TableConstraintBody::Check(e) => format!("CHECK ({})", expr(e)),
    });
    out
}

fn create_table(c: &CreateTable) -> String {
    let scope = match c.temporary {
        Some(TableScope::Global) => "GLOBAL TEMPORARY ",
        Some(TableScope::Local) => "LOCAL TEMPORARY ",
        None => "",
    };
    let mut elements: Vec<String> = c.columns.iter().map(column_def).collect();
    elements.extend(c.constraints.iter().map(table_constraint));
    format!(
        "CREATE {scope}TABLE {} ({})",
        name(&c.name),
        elements.join(", ")
    )
}

fn create_view(v: &CreateView) -> String {
    let mut out = String::from("CREATE ");
    if v.recursive {
        out.push_str("RECURSIVE ");
    }
    let _ = write!(out, "VIEW {}", name(&v.name));
    if !v.columns.is_empty() {
        let _ = write!(out, " ({})", v.columns.join(", "));
    }
    let _ = write!(out, " AS {}", query(&v.query));
    if v.with_check_option {
        out.push_str(" WITH CHECK OPTION");
    }
    out
}

fn alter_action(a: &AlterAction) -> String {
    match a {
        AlterAction::AddColumn(c) => format!("ADD COLUMN {}", column_def(c)),
        AlterAction::DropColumn { name, behavior } => {
            let mut out = format!("DROP COLUMN {name}");
            push_behavior(&mut out, behavior);
            out
        }
        AlterAction::SetDefault { name, default } => {
            format!("ALTER COLUMN {name} SET DEFAULT {}", literal(default))
        }
        AlterAction::DropDefault { name } => format!("ALTER COLUMN {name} DROP DEFAULT"),
        AlterAction::AddConstraint(tc) => format!("ADD {}", table_constraint(tc)),
        AlterAction::DropConstraint { name, behavior } => {
            let mut out = format!("DROP CONSTRAINT {name}");
            push_behavior(&mut out, behavior);
            out
        }
    }
}

fn grant(g: &Grant, revoke: bool) -> String {
    let privs = match &g.privileges {
        Privileges::All => "ALL PRIVILEGES".to_string(),
        Privileges::Actions(a) => a.join(", "),
    };
    if revoke {
        let mut out = String::from("REVOKE ");
        if g.grant_option {
            out.push_str("GRANT OPTION FOR ");
        }
        let _ = write!(
            out,
            "{privs} ON {} FROM {}",
            name(&g.object),
            g.grantees.join(", ")
        );
        push_behavior(&mut out, &g.behavior);
        out
    } else {
        let mut out = format!(
            "GRANT {privs} ON {} TO {}",
            name(&g.object),
            g.grantees.join(", ")
        );
        if g.grant_option {
            out.push_str(" WITH GRANT OPTION");
        }
        out
    }
}

fn transaction(t: &TransactionStatement) -> String {
    match t {
        TransactionStatement::Start(modes) => {
            if modes.is_empty() {
                "START TRANSACTION".into()
            } else {
                format!("START TRANSACTION {}", modes.join(", "))
            }
        }
        TransactionStatement::Commit => "COMMIT".into(),
        TransactionStatement::Rollback => "ROLLBACK".into(),
        TransactionStatement::RollbackTo(s) => format!("ROLLBACK TO SAVEPOINT {s}"),
        TransactionStatement::Savepoint(s) => format!("SAVEPOINT {s}"),
        TransactionStatement::Release(s) => format!("RELEASE SAVEPOINT {s}"),
        TransactionStatement::SetTransaction { local, modes } => format!(
            "SET {}TRANSACTION {}",
            if *local { "LOCAL " } else { "" },
            modes.join(", ")
        ),
    }
}

fn session(s: &SessionStatement) -> String {
    match s {
        SessionStatement::SetSchema(v) => format!("SET SCHEMA {v}"),
        SessionStatement::SetRole(v) => format!("SET ROLE {v}"),
        SessionStatement::SetSessionAuthorization(v) => {
            format!("SET SESSION AUTHORIZATION {v}")
        }
        SessionStatement::SetTimeZone(v) => format!("SET TIME ZONE {v}"),
    }
}

fn cursor(c: &CursorStatement) -> String {
    match c {
        CursorStatement::Declare { name, sensitivity, scroll, hold, query: q } => {
            let mut out = format!("DECLARE {name} ");
            if let Some(s) = sensitivity {
                let _ = write!(out, "{s} ");
            }
            match scroll {
                Some(true) => out.push_str("SCROLL "),
                Some(false) => out.push_str("NO SCROLL "),
                None => {}
            }
            out.push_str("CURSOR ");
            match hold {
                Some(true) => out.push_str("WITH HOLD "),
                Some(false) => out.push_str("WITHOUT HOLD "),
                None => {}
            }
            let _ = write!(out, "FOR {}", query(q));
            out
        }
        CursorStatement::Open(n) => format!("OPEN {n}"),
        CursorStatement::Close(n) => format!("CLOSE {n}"),
        CursorStatement::Fetch { orientation, name } => match orientation {
            Some(o) => format!("FETCH {o} FROM {name}"),
            None => format!("FETCH FROM {name}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        assert_eq!(literal(&Literal::String("it's".into())), "'it''s'");
        assert_eq!(literal(&Literal::Date("'".into())), "DATE ''''");
        assert_eq!(
            literal(&Literal::Interval {
                negative: true,
                value: "1".into(),
                qualifier: "DAY".into()
            }),
            "INTERVAL - '1' DAY"
        );
    }

    #[test]
    fn expr_shapes() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column(vec!["a".into()])),
            op: BinaryOp::Plus,
            right: Box::new(Expr::Nested(Box::new(Expr::Literal(Literal::Number(
                "1".into(),
            ))))),
        };
        assert_eq!(expr(&e), "a + (1)");
        let agg = Expr::Function {
            name: "COUNT".into(),
            quantifier: Some(SetQuantifier::Distinct),
            args: vec![Expr::Column(vec!["x".into()])],
        };
        assert_eq!(expr(&agg), "COUNT(DISTINCT x)");
        let star = Expr::Function {
            name: "COUNT".into(),
            quantifier: None,
            args: vec![Expr::Wildcard],
        };
        assert_eq!(expr(&star), "COUNT(*)");
        let niladic = Expr::Function {
            name: "CURRENT_DATE".into(),
            quantifier: None,
            args: vec![],
        };
        assert_eq!(expr(&niladic), "CURRENT_DATE");
    }

    #[test]
    fn window_function_rendering() {
        let e = Expr::WindowFunction {
            name: "RANK".into(),
            partition_by: vec![vec!["region".into()]],
            order_by: vec![SortSpec {
                expr: Expr::Column(vec!["sales".into()]),
                descending: true,
                nulls_first: None,
            }],
            frame: None,
        };
        assert_eq!(
            expr(&e),
            "RANK() OVER (PARTITION BY region ORDER BY sales DESC)"
        );
    }

    #[test]
    fn data_type_rendering() {
        assert_eq!(print_type(&DataType::Varchar(Some("40".into()))), "VARCHAR(40)");
        assert_eq!(
            print_type(&DataType::Decimal {
                precision: Some("10".into()),
                scale: Some("2".into())
            }),
            "DECIMAL(10, 2)"
        );
        assert_eq!(
            print_type(&DataType::Array {
                element: Box::new(DataType::Integer),
                bound: Some("8".into())
            }),
            "INTEGER ARRAY[8]"
        );
        assert_eq!(
            print_type(&DataType::Time { precision: None, with_time_zone: Some(true) }),
            "TIME WITH TIME ZONE"
        );
    }

    #[test]
    fn column_def_with_identity_and_constraints() {
        let c = ColumnDef {
            name: "id".into(),
            data_type: DataType::Integer,
            default: Some(Literal::Number("0".into())),
            identity: true,
            constraints: vec![ColumnConstraint::NotNull, ColumnConstraint::PrimaryKey],
        };
        assert_eq!(
            column_def(&c),
            "id INTEGER DEFAULT 0 GENERATED ALWAYS AS IDENTITY NOT NULL PRIMARY KEY"
        );
    }

    #[test]
    fn truth_value_rendering() {
        let e = Expr::IsTruthValue {
            expr: Box::new(Expr::Column(vec!["b".into()])),
            negated: true,
            value: "UNKNOWN".into(),
        };
        assert_eq!(expr(&e), "b IS NOT UNKNOWN");
    }
}
